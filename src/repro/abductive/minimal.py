"""Minimal sufficient reasons via the greedy of Proposition 2.

Because supersets of sufficient reasons are sufficient, a minimal one
(inclusion-wise) is obtained by starting from the full component set and
repeatedly dropping any component whose removal keeps the set
sufficient.  This turns *any* polynomial Check-SR algorithm into a
polynomial Minimal-SR algorithm (Corollaries 1, 3 and 4 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .._validation import as_index_set, as_vector, check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from .check import check_sufficient_reason


def minimal_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    start: Iterable[int] | None = None,
    order: Sequence[int] | None = None,
    method: str = "auto",
    engine: QueryEngine | None = None,
) -> frozenset[int]:
    """Compute an inclusion-minimal sufficient reason for *x*.

    Parameters
    ----------
    start:
        a sufficient reason to shrink (default: all components, which is
        always sufficient).  A non-sufficient *start* raises.
    order:
        the order in which components are considered for removal; the
        greedy's output depends on it, and different orders can surface
        different minimal reasons (Example 2 of the paper).  Default:
        descending index.
    method:
        forwarded to :func:`~repro.abductive.check.check_sufficient_reason`.
    engine:
        optional shared :class:`~repro.knn.QueryEngine`; one is built
        here (and reused across all ``n`` sufficiency checks, caching
        the query's distance vector) when not given.
    """
    check_odd_k(k)
    xv = as_vector(x, name="x")
    n = dataset.dimension
    engine = as_engine(dataset, metric, engine)
    if start is None:
        current = set(range(n))
    else:
        current = set(as_index_set(start, dimension=n, name="start"))
        verdict = check_sufficient_reason(
            dataset, k, metric, xv, current, method=method, engine=engine
        )
        if not verdict:
            raise ValidationError(
                "start is not a sufficient reason; cannot shrink it into one"
            )
    if order is None:
        candidates = sorted(current, reverse=True)
    else:
        candidates = [i for i in order if i in current]
        if set(candidates) != current:
            raise ValidationError("order must enumerate every component of start")
    for i in candidates:
        current.discard(i)
        verdict = check_sufficient_reason(
            dataset, k, metric, xv, current, method=method, engine=engine
        )
        if not verdict:
            current.add(i)
    return frozenset(current)


def is_minimal_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    X,
    *,
    method: str = "auto",
    engine: QueryEngine | None = None,
) -> bool:
    """``k-Minimal Sufficient Reason``: is *X* sufficient and minimal?

    Implements the reduction of Proposition 2: check X itself, then
    check that no one-element deletion stays sufficient.
    """
    xv = as_vector(x, name="x")
    X = as_index_set(X, dimension=dataset.dimension, name="X")
    engine = as_engine(dataset, metric, engine)
    if not check_sufficient_reason(dataset, k, metric, xv, X, method=method, engine=engine):
        return False
    for i in X:
        if check_sufficient_reason(
            dataset, k, metric, xv, X - {i}, method=method, engine=engine
        ):
            return False
    return True
