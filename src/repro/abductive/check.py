"""``k-Check Sufficient Reason``: is ``X`` a sufficient reason for ``x``?

Implements every polynomial-time checker in the paper plus an
exhaustive fallback:

* ``l2``, any fixed k — Proposition 3: intersect the affine subspace
  ``U(X, x)`` with each Proposition-1 polyhedron of the opposite label;
  ``X`` is sufficient iff every intersection is empty (an LP each, with
  the strict-system reduction for label-0 pieces).
* ``l1``, k = 1 — Proposition 4: only the ``|S_opp|`` candidate points
  obtained by copying the free coordinates from an opposite-class point
  need to be tested, by the triangle-inequality maximization argument.
* ``hamming``, k = 1 — Proposition 6: same candidate-set idea with the
  projections ``y_X``.
* ``brute`` — exhaustive enumeration of the free coordinates (discrete
  setting only); exponential, used as the oracle for the coNP-hard
  cells (k >= 3 under l1/Hamming) and in tests.

Each checker returns a :class:`CheckResult` carrying a *counterexample*
(an input that agrees with x on X but is classified differently) when
the answer is negative, so callers can independently verify the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_index_set, as_vector, check_odd_k
from ..exceptions import UnsupportedSettingError, ValidationError
from ..geometry import AffineSubspace, decision_region_polyhedra
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..metrics import get_metric

#: how many hypercube candidates the brute checker classifies per batch
_BRUTE_BATCH = 8192


@dataclass(frozen=True)
class CheckResult:
    """Verdict of a sufficient-reason check.

    ``counterexample`` is None when ``is_sufficient`` is True; otherwise
    it is a vector that agrees with the query on ``X`` yet gets the
    opposite classification.
    """

    is_sufficient: bool
    counterexample: np.ndarray | None = None

    def __bool__(self) -> bool:
        return self.is_sufficient


def check_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    X,
    *,
    method: str = "auto",
    engine: QueryEngine | None = None,
) -> CheckResult:
    """Decide whether *X* is a sufficient reason for *x* w.r.t. ``f^k``.

    ``method`` selects the algorithm: ``"auto"`` picks the paper's
    polynomial algorithm for the (metric, k) cell and raises
    :class:`UnsupportedSettingError` on intractable cells; ``"l2"``,
    ``"l1-k1"``, ``"hamming-k1"`` and ``"brute"`` force a specific one.

    ``engine`` optionally shares a :class:`~repro.knn.QueryEngine` over
    the same (dataset, metric) pair — the greedy callers pass one so the
    query's distance vector is computed once across all their checks.
    """
    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    X = as_index_set(X, dimension=dataset.dimension, name="X")
    engine = as_engine(dataset, metric, engine)
    if method == "auto":
        if metric.name == "l2":
            method = "l2"
        elif metric.name == "l1" and k == 1:
            method = "l1-k1"
        elif metric.name == "hamming" and k == 1:
            method = "hamming-k1"
        elif metric.is_discrete:
            method = "brute"  # coNP-hard cell: exact exponential fallback
        else:
            raise UnsupportedSettingError(
                f"Check-SR({metric.name}, k={k}) has no polynomial algorithm "
                "(Theorem 5); no exact fallback exists for continuous metrics"
            )
    if method == "l2":
        if metric.name != "l2":
            raise ValidationError("method 'l2' requires the l2 metric")
        return _check_l2(dataset, k, xv, X, engine)
    if method == "l1-k1":
        if metric.name != "l1" or k != 1:
            raise ValidationError("method 'l1-k1' requires the l1 metric and k=1")
        return _check_projection_candidates(dataset, xv, X, engine)
    if method == "hamming-k1":
        if metric.name != "hamming" or k != 1:
            raise ValidationError("method 'hamming-k1' requires Hamming and k=1")
        return _check_projection_candidates(dataset, xv, X, engine)
    if method == "brute":
        if not metric.is_discrete:
            raise UnsupportedSettingError(
                "brute-force Check-SR only enumerates the Boolean hypercube"
            )
        return _check_brute_discrete(dataset, k, xv, X, engine)
    raise ValidationError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# Proposition 3: l2, any fixed k
# ---------------------------------------------------------------------------


def _check_l2(
    dataset: Dataset, k: int, x: np.ndarray, X: frozenset[int], engine: QueryEngine
) -> CheckResult:
    from ..geometry.polyhedron import Polyhedron
    from ..geometry.halfspace import Halfspace

    label = engine.classify(x, k)
    subspace = AffineSubspace(x, X)
    A_eq, b_eq = subspace.equality_system()
    eq = (A_eq, b_eq) if A_eq.shape[0] else (None, None)
    for piece in decision_region_polyhedra(dataset, k, 1 - label):
        # Prefer a counterexample strictly inside the piece: boundary
        # points are mathematically valid for closed (label-1) pieces
        # but sit on exact classification ties, where float arithmetic
        # can dispute them.  Fall back to the boundary point when the
        # piece has an empty interior within the subspace.
        if not piece.has_strict:
            interior = Polyhedron(
                piece.dimension,
                [Halfspace(w, b, strict=True) for w, b in zip(piece.A, piece.b)],
            ).find_point(*eq)
            if interior is not None:
                return CheckResult(False, counterexample=interior)
        point = piece.find_point(*eq)
        if point is not None:
            return CheckResult(False, counterexample=point)
    return CheckResult(True)


# ---------------------------------------------------------------------------
# Propositions 4 and 6: candidate projections, k = 1
# ---------------------------------------------------------------------------


def _check_projection_candidates(
    dataset: Dataset, x: np.ndarray, X: frozenset[int], engine: QueryEngine
) -> CheckResult:
    """Shared shape of the l1 and Hamming k=1 checkers.

    If ``f(x) = label``, a counterexample exists iff one of the
    projections ``y_X`` (x on X, an opposite-class point elsewhere)
    flips the classifier — the triangle-inequality argument of
    Proposition 4 (l1) and the flipping argument of Proposition 6
    (Hamming).  All candidates are classified in one batched call.
    """
    label = engine.classify(x, 1)
    expanded = dataset.expanded()
    opposite = expanded.negatives if label == 1 else expanded.positives
    if opposite.shape[0] == 0:
        return CheckResult(True)
    fixed = sorted(X)
    candidates = opposite.copy()
    candidates[:, fixed] = x[fixed]
    flipped = np.flatnonzero(engine.classify_batch(candidates, 1) != label)
    if flipped.size:
        return CheckResult(False, counterexample=candidates[flipped[0]])
    return CheckResult(True)


# ---------------------------------------------------------------------------
# Exhaustive fallback over {0,1}^n
# ---------------------------------------------------------------------------


def _check_brute_discrete(
    dataset: Dataset, k: int, x: np.ndarray, X: frozenset[int], engine: QueryEngine
) -> CheckResult:
    """Exhaustive check over the free coordinates, in batched blocks.

    Candidates are enumerated in the same lexicographic order as
    ``itertools.product((0, 1), ...)`` over the free coordinates (first
    free coordinate varies slowest), so the returned counterexample is
    the same one the sequential scan would find first.
    """
    label = engine.classify(x, k)
    free = np.array(
        [i for i in range(dataset.dimension) if i not in X], dtype=np.int64
    )
    if free.size > 22:
        raise ValidationError(
            f"brute-force Check-SR would enumerate 2^{free.size} points; "
            "restrict X or use a polynomial setting"
        )
    if free.size == 0:
        return CheckResult(True)
    total = 1 << free.size
    shifts = free.size - 1 - np.arange(free.size)
    for start in range(0, total, _BRUTE_BATCH):
        counters = np.arange(start, min(start + _BRUTE_BATCH, total), dtype=np.int64)
        candidates = np.broadcast_to(x, (counters.size, x.size)).copy()
        candidates[:, free] = ((counters[:, None] >> shifts) & 1).astype(np.float64)
        flipped = np.flatnonzero(engine.classify_batch(candidates, k) != label)
        if flipped.size:
            return CheckResult(False, counterexample=candidates[flipped[0]])
    return CheckResult(True)
