"""Abductive explanations (sufficient reasons) for k-NN classifiers.

A set ``X`` of components is a *sufficient reason* for ``x`` when every
input agreeing with ``x`` on ``X`` receives the same classification
(Section 3.1).  The complexity of working with sufficient reasons
depends sharply on the metric and on k (paper's Table 1):

=====================  ==========  ===================  =====================
problem                (R, D_2)    (R, D_1)             ({0,1}, D_H)
=====================  ==========  ===================  =====================
Check-SR               P, any k    P (k=1); coNP-c k>1  P (k=1); coNP-c k>1
Minimal-SR             P, any k    P (k=1); hard k>1    P (k=1); hard k>1
Minimum-SR             NP-c        NP-c (k=1)           NP-c (k=1); Sigma2p k>1
=====================  ==========  ===================  =====================

This package implements the polynomial algorithms for every tractable
cell (Propositions 3, 4 and 6 + the greedy of Proposition 2), exact
exponential baselines for the hard cells, and practical MILP/SAT
pipelines for Minimum-SR in the discrete setting.
"""

from __future__ import annotations

from .approximate import ApproximateMSRResult, approximate_minimum_sufficient_reason
from .check import CheckResult, check_sufficient_reason
from .minimal import is_minimal_sufficient_reason, minimal_sufficient_reason
from .minimum import MinimumSRResult, minimum_sufficient_reason

__all__ = [
    "CheckResult",
    "check_sufficient_reason",
    "minimal_sufficient_reason",
    "is_minimal_sufficient_reason",
    "MinimumSRResult",
    "minimum_sufficient_reason",
    "ApproximateMSRResult",
    "approximate_minimum_sufficient_reason",
]
