"""Approximation heuristics for Minimum Sufficient Reason.

The paper's future-work list asks whether the NP-hard minimum-SR
problems admit polynomial approximation algorithms producing reasons
"reasonably close to the minimum".  This module contributes the
empirical side of that question: polynomial-time upper-bound heuristics
whose quality can be measured against the exact pipelines.

The core device is the Proposition-2 greedy, whose *output depends on
the removal order* (Example 2 of the paper).  We therefore search over
orders:

* an **impact heuristic** removes first the components where the query
  already looks like the opposite class (they are least likely to be
  load-bearing);
* **random restarts** re-run the greedy under shuffled orders and keep
  the smallest sufficient reason found.

Every candidate the search returns is a genuine (minimal) sufficient
reason; only its minimality *in cardinality* is approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_vector, check_odd_k
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..metrics import get_metric
from .minimal import minimal_sufficient_reason


@dataclass(frozen=True)
class ApproximateMSRResult:
    """Best sufficient reason found and the search effort spent."""

    X: frozenset[int]
    size: int
    restarts_used: int


def impact_order(
    dataset: Dataset, k: int, metric, x, *, engine: QueryEngine | None = None
) -> list[int]:
    """Removal order for the greedy: least label-critical features first.

    Features where x agrees with the average opposite-class value are
    unlikely to be needed to separate x from that class, so they are
    tried for removal first; features where x disagrees most are kept
    for last (and hence tend to remain in the reason).
    """
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    engine = as_engine(dataset, metric, engine)
    label = engine.classify(xv, k)
    expanded = dataset.expanded()
    opposite = expanded.negatives if label == 1 else expanded.positives
    if opposite.shape[0] == 0:
        return list(range(dataset.dimension))
    disagreement = np.abs(opposite - xv).mean(axis=0)
    # Stable sort: ascending disagreement, index as tiebreak.
    return [int(i) for i in np.argsort(disagreement, kind="stable")]


def approximate_minimum_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    restarts: int = 8,
    seed: int | None = 0,
    method: str = "auto",
    engine: QueryEngine | None = None,
) -> ApproximateMSRResult:
    """Polynomial-time upper bound on the minimum sufficient reason.

    Runs the greedy under the impact order, then under ``restarts``
    shuffled orders, keeping the smallest result.  Each greedy run costs
    ``n + |X|`` sufficiency checks, so the whole search stays polynomial
    whenever checking is (Table 1's P cells).  One
    :class:`~repro.knn.QueryEngine` is shared across every restart.
    """
    check_odd_k(k)
    xv = as_vector(x, name="x")
    rng = np.random.default_rng(seed)
    engine = as_engine(dataset, get_metric(metric), engine)
    best = minimal_sufficient_reason(
        dataset, k, metric, xv,
        order=impact_order(dataset, k, metric, xv, engine=engine),
        method=method, engine=engine,
    )
    used = 0
    n = dataset.dimension
    for used in range(1, restarts + 1):
        if len(best) <= 1:
            break  # cannot do better than a singleton (or empty) reason
        order = list(rng.permutation(n))
        candidate = minimal_sufficient_reason(
            dataset, k, metric, xv, order=order, method=method, engine=engine
        )
        if len(candidate) < len(best):
            best = candidate
    return ApproximateMSRResult(X=best, size=len(best), restarts_used=used)
