"""``k-Minimum Sufficient Reason``: smallest sufficient reasons.

The problem is NP-complete in every tractable-check setting (Corollary
6) and Sigma2p-complete for the discrete setting with k >= 3 (Theorem
8), so no polynomial algorithm exists.  Three exact solvers are
provided:

* ``brute`` — enumerate component subsets by increasing size, deciding
  each with the cell's Check-SR algorithm.  Works in every setting where
  a checker exists; exponential in n.
* ``milp`` — discrete setting, k = 1: a MILP over indicator variables
  ``s_i`` ("i is kept"), linearizing the Proposition-6 characterization.
  For every opposite-class projection source ``o``, a witness point of
  x's class must beat every opposite point, with Hamming distances that
  are linear in the ``s_i``.
* ``sat`` — same characterization, encoded with guarded cardinality
  constraints and minimized by bound search (a new pipeline in the
  spirit of the paper's Section 9.2 encoding).  By default the sweep is
  *incremental*: the characterization is encoded once, each cardinality
  bound becomes a guarded constraint, and the bound search passes guard
  literals as assumptions to one shared CDCL solver
  (``sat_incremental=False`` restores the rebuild-per-bound behaviour —
  kept as the baseline of the ``msr_incremental`` benchmark headline).

A fourth ``method="portfolio"`` routes the call through
:mod:`repro.portfolio`: every applicable exact pipeline runs under a
per-method time budget and the Proposition-2 greedy supplies an anytime
answer if all of them run out.

The MILP/SAT encodings exploit that for k = 1 and a projection
candidate ``o_X`` the distances satisfy

    d_H(o_X, z) = sum_i [ s_i * [x_i != z_i] + (1 - s_i) * [o_i != z_i] ]

which is affine in the indicators.  All distances are integers, so the
strict comparisons of the optimistic semantics become ``<= -1`` offsets
and the encodings are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .._budget import remaining_budget, start_deadline
from .._validation import as_vector, check_odd_k
from ..exceptions import UnsupportedSettingError, ValidationError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..metrics import get_metric
from ..solvers.milp import MILPModel
from ..solvers.sat import (
    CNFBuilder,
    SATSolver,
    minimize_bound,
    minimize_bound_assumptions,
)
from ..solvers.sat.pool import SATSolverPool, lease_or_build
from .check import check_sufficient_reason


@dataclass(frozen=True)
class MinimumSRResult:
    """A minimum-cardinality sufficient reason and solver metadata."""

    X: frozenset[int]
    size: int
    method: str


def minimum_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    method: str = "auto",
    max_brute_dimension: int = 18,
    engine: QueryEngine | None = None,
    time_limit: float | None = None,
    sat_incremental: bool = True,
) -> MinimumSRResult:
    """Compute a sufficient reason of minimum cardinality.

    ``method``: ``"auto"`` (MILP for the discrete k=1 cell, brute force
    elsewhere), ``"milp"``, ``"sat"``, ``"brute"``, or ``"portfolio"``
    (every applicable pipeline raced under per-method budgets via
    :mod:`repro.portfolio`; returns the winner's answer — call the
    portfolio module directly for the provenance record).  ``engine``
    optionally shares a :class:`~repro.knn.QueryEngine` across calls.
    ``time_limit`` (seconds, best-effort) aborts a single-method run
    with :class:`~repro.exceptions.ResourceLimitError`; for
    ``"portfolio"`` it is the per-method budget.  ``sat_incremental``
    selects the assumption-based incremental sweep (default) or the
    legacy rebuild-per-bound SAT search.
    """
    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    engine = as_engine(dataset, metric, engine)
    if method == "portfolio":
        from ..portfolio import portfolio_minimum_sufficient_reason

        return portfolio_minimum_sufficient_reason(
            dataset, k, metric, xv,
            budget=time_limit, engine=engine,
            max_brute_dimension=max_brute_dimension,
        ).answer
    if method == "auto":
        method = "milp" if (metric.name == "hamming" and k == 1) else "brute"
    if method == "brute":
        return _minimum_brute(
            dataset, k, metric, xv, max_brute_dimension, engine,
            time_limit=time_limit,
        )
    if method in ("milp", "sat"):
        if metric.name != "hamming" or k != 1:
            raise UnsupportedSettingError(
                f"the {method} Minimum-SR pipeline covers the discrete setting "
                f"with k=1; got metric={metric.name}, k={k}"
            )
        if method == "milp":
            return _minimum_milp_hamming_k1(dataset, xv, engine, time_limit=time_limit)
        return _minimum_sat_hamming_k1(
            dataset, xv, engine, incremental=sat_incremental, time_limit=time_limit
        )
    raise ValidationError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# Brute force over subsets, any setting with a checker
# ---------------------------------------------------------------------------


def _minimum_brute(
    dataset: Dataset, k: int, metric, x: np.ndarray, max_dimension: int,
    engine: QueryEngine, *, time_limit: float | None = None,
) -> MinimumSRResult:
    n = dataset.dimension
    if n > max_dimension:
        raise ValidationError(
            f"brute-force Minimum-SR over {n} components would enumerate "
            f"2^{n} subsets; use the milp/sat pipeline or reduce n"
        )
    deadline = start_deadline(time_limit)
    for size in range(n + 1):
        for X in combinations(range(n), size):
            remaining_budget(deadline, "brute-force Minimum-SR")
            if check_sufficient_reason(dataset, k, metric, x, X, engine=engine):
                return MinimumSRResult(frozenset(X), size, "brute")
    raise AssertionError("the full component set is always sufficient")  # pragma: no cover


# ---------------------------------------------------------------------------
# Shared characterization for the discrete k = 1 encodings
# ---------------------------------------------------------------------------


def _projection_facts(dataset: Dataset, x: np.ndarray, engine: QueryEngine):
    """Group the data the encodings need.

    Returns ``(label, sources, winners, rivals)`` where *sources* are the
    opposite-class points generating projection candidates (Prop. 6),
    *winners* the class a candidate's nearest neighbor must come from to
    keep x's label, and *rivals* the class that must not win.  For
    ``label == 1`` a winner must be weakly closer than every rival; for
    ``label == 0`` strictly closer (optimistic ties favor 1).
    """
    label = engine.classify(x, 1)
    expanded = dataset.expanded()
    if label == 1:
        sources = expanded.negatives
        winners = expanded.positives
        rivals = expanded.negatives
        margin = 0  # winner needs d_win <= d_rival
    else:
        sources = expanded.positives
        winners = expanded.negatives
        rivals = expanded.positives
        margin = 1  # winner needs d_win <= d_rival - 1 (strict)
    return label, sources, winners, rivals, margin


def _distance_coefficients(x, o, z):
    """Decompose ``d_H(o_X, z)`` as ``constant + sum_i coeff_i * s_i``.

    With ``s_i = 1`` coordinate i of the candidate equals ``x_i``, else
    ``o_i``; so coordinate i contributes ``[o_i != z_i]`` plus
    ``([x_i != z_i] - [o_i != z_i]) * s_i``.
    """
    from_o = (o != z).astype(int)
    from_x = (x != z).astype(int)
    return int(from_o.sum()), from_x - from_o


def _minimum_milp_hamming_k1(
    dataset: Dataset, x: np.ndarray, engine: QueryEngine,
    *, time_limit: float | None = None,
) -> MinimumSRResult:
    label, sources, winners, rivals, margin = _projection_facts(dataset, x, engine)
    n = dataset.dimension
    if winners.shape[0] == 0:
        # One-class data: f is constant, the empty set explains everything.
        return MinimumSRResult(frozenset(), 0, "milp")
    big_m = 2 * n + 2
    model = MILPModel("minimum-sufficient-reason")
    keep = [model.add_binary(f"s[{i}]") for i in range(n)]
    for src_idx, o in enumerate(sources):
        pick = [model.add_binary(f"w[{src_idx},{j}]") for j in range(winners.shape[0])]
        model.add_constraint({p: 1 for p in pick}, ">=", 1)
        for j, w in enumerate(winners):
            const_w, coef_w = _distance_coefficients(x, o, w)
            for r in rivals:
                const_r, coef_r = _distance_coefficients(x, o, r)
                # d_win - d_rival <= -margin  when pick[j] = 1:
                # (const_w - const_r) + sum (coef_w - coef_r) s
                #     <= -margin + M (1 - pick_j)
                coeffs = {keep[i]: float(coef_w[i] - coef_r[i]) for i in range(n)}
                coeffs[pick[j]] = float(big_m)
                model.add_constraint(
                    coeffs, "<=", big_m - margin - (const_w - const_r)
                )
    model.set_objective({s: 1 for s in keep})
    result = model.solve(engine="scipy", time_limit=time_limit)
    if not result.optimal:  # pragma: no cover - full set is always feasible
        raise UnsupportedSettingError("minimum-SR MILP unexpectedly infeasible")
    X = frozenset(i for i in range(n) if round(result.value(keep[i])) == 1)
    _assert_sufficient(dataset, x, X, engine)
    return MinimumSRResult(X, len(X), "milp")


class _BuilderSink:
    """Encoding sink over a :class:`CNFBuilder` (the cold, one-shot path)."""

    def __init__(self, builder: CNFBuilder) -> None:
        self.builder = builder

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        return self.builder.new_vars(count, prefix=prefix)

    def add_clause(self, lits: list[int]) -> None:
        self.builder.add_clause(lits)

    def add_at_least(self, lits: list[int], bound: int, guard: int) -> None:
        self.builder.add_at_least(lits, bound, guard=guard)


class _SolverSink:
    """Encoding sink over a live pooled solver, behind an activation guard.

    Every plain clause gets the query's activation literal woven in
    (``g_q -> clause``), so encodings for many queries coexist on one
    warm solver and each query asserts only its own guard.  Cardinality
    constraints are already guarded by per-query pick variables, so they
    need no extra weaving: an old query's picks stay freely assignable
    and only ever *restrict* when set, never enable anything.
    """

    def __init__(self, solver, activation: int) -> None:
        self.solver = solver
        self.activation = activation

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        return [self.solver.new_var() for _ in range(count)]

    def add_clause(self, lits: list[int]) -> None:
        self.solver.add_clause([-self.activation, *lits])

    def add_at_least(self, lits: list[int], bound: int, guard: int) -> None:
        self.solver.add_cardinality(lits, bound, guard=guard)


def _encode_msr_query(
    x: np.ndarray, sources, winners, rivals, margin: int, sink, keep, twin
) -> None:
    """Encode one query's Proposition-6 characterization onto *sink*.

    ``keep`` are the (possibly shared) indicator variables and ``twin``
    maps a component index to a variable clamped equal to its keep
    indicator — the caller owns both, so the cold path and the warm
    pool share this exact constraint generator.
    """
    n = x.shape[0]
    for src_idx, o in enumerate(sources):
        picks = sink.new_vars(winners.shape[0], prefix=f"w{src_idx}")
        sink.add_clause(list(picks))
        for j, w in enumerate(winners):
            const_w, coef_w = _distance_coefficients(x, o, w)
            for r in rivals:
                const_r, coef_r = _distance_coefficients(x, o, r)
                delta = coef_w - coef_r  # entries in {-2, -1, 0, 1, 2}
                # Need, when pick_j holds:
                #     (const_w - const_r) + sum_i delta_i s_i <= -margin.
                # Move negative-coefficient terms to "at least" form:
                # every delta_i = -1 contributes the literal s_i, every
                # delta_i = +1 the literal (not s_i) with the bound
                # shifted by 1; |delta_i| = 2 uses the twin once more.
                lits: list[int] = []
                bound = (const_w - const_r) + margin
                for i in range(n):
                    d = int(delta[i])
                    if d == 0:
                        continue
                    first = keep[i] if d < 0 else -keep[i]
                    lits.append(first)
                    if d > 0:
                        bound += 1
                    if abs(d) == 2:
                        lits.append(twin(i) if d < 0 else -twin(i))
                        if d > 0:
                            bound += 1
                if bound <= 0:
                    continue  # comparison holds for every X
                if bound > len(lits):
                    sink.add_clause([-picks[j]])  # never satisfiable
                    break
                sink.add_at_least(lits, bound, picks[j])


def _encode_msr_base(
    x: np.ndarray, sources, winners, rivals, margin: int
) -> tuple[CNFBuilder, list[int]]:
    """Encode the Proposition-6 characterization (without any size bound).

    Returns the builder and the ``keep`` indicator variables; the bound
    searches append their cardinality constraint afterwards — unguarded
    for the rebuild-per-bound path, guard-per-bound for the incremental
    assumption sweep.
    """
    n = x.shape[0]
    builder = CNFBuilder()
    keep = builder.new_vars(n, prefix="s")
    # Coefficients of the distance differences live in {-2..2}; a
    # cardinality constraint takes each variable once, so coefficient
    # 2 is expressed by a twin variable clamped equal to the original.
    twins: dict[int, int] = {}

    def twin(i: int) -> int:
        if i not in twins:
            t = builder.new_var()
            builder.add_clause([-keep[i], t])
            builder.add_clause([keep[i], -t])
            twins[i] = t
        return twins[i]

    _encode_msr_query(x, sources, winners, rivals, margin, _BuilderSink(builder), keep, twin)
    return builder, keep


def _minimum_sat_hamming_k1(
    dataset: Dataset, x: np.ndarray, engine: QueryEngine,
    *,
    incremental: bool = True,
    strategy: str = "binary",
    time_limit: float | None = None,
) -> MinimumSRResult:
    label, sources, winners, rivals, margin = _projection_facts(dataset, x, engine)
    n = dataset.dimension
    if winners.shape[0] == 0:
        return MinimumSRResult(frozenset(), 0, "sat")
    deadline = start_deadline(time_limit)
    remaining_budget(deadline, "minimum-SR SAT search")

    if incremental:
        # Encode once; every size bound becomes a guarded cardinality
        # constraint switched on by its assumption literal, so the whole
        # sweep runs on one solver with learnt clauses carried across
        # bounds.
        builder, keep = _encode_msr_base(x, sources, winners, rivals, margin)
        solver = builder.build_solver()

        def encode_bound(t: int) -> int:
            guard = solver.new_var()
            solver.add_at_most(keep, t, guard=guard)
            return guard

        def decode(model) -> frozenset[int]:
            return frozenset(i for i in range(n) if model[keep[i]])

        found = minimize_bound_assumptions(
            solver, encode_bound, decode, 0, n,
            strategy=strategy,
            time_limit=remaining_budget(deadline, "minimum-SR SAT search"),
        )
    else:
        # Legacy rebuild-per-bound search: re-encode the characterization
        # and grow a fresh solver for every probed bound (the baseline
        # contestant of the msr_incremental benchmark headline).
        def feasible(t: int):
            remaining = remaining_budget(deadline, "minimum-SR SAT search")
            builder, keep = _encode_msr_base(x, sources, winners, rivals, margin)
            builder.add_at_most(keep, t)
            model = builder.build_solver().solve(time_limit=remaining)
            if model is None:
                return None
            return frozenset(i for i in range(n) if model[keep[i]])

        found = minimize_bound(feasible, 0, n, strategy=strategy)

    assert found is not None, "the full component set is always sufficient"
    size, X = found
    _assert_sufficient(dataset, x, X, engine)
    return MinimumSRResult(X, len(X), "sat")


# ---------------------------------------------------------------------------
# Warm-pool variants and the canonical (lex-min) witness
# ---------------------------------------------------------------------------


def _build_msr_entry(n: int):
    """Build the shared half of a pooled MSR entry: solver + keep vars."""
    solver = SATSolver(0)
    keep = [solver.new_var() for _ in range(n)]
    state: dict = {"keep": keep, "twins": {}, "bounds": {}, "queries": {}}
    return solver, state


def _ensure_msr_query(entry, x, sources, winners, rivals, margin: int) -> int:
    """Encode this query onto the pooled solver once; return its guard."""
    solver, state = entry.solver, entry.state
    xb = x.tobytes()
    guard = state["queries"].get(xb)
    if guard is not None:
        return guard
    guard = solver.new_var()
    keep = state["keep"]
    twins = state["twins"]

    def twin(i: int) -> int:
        # Twin definitions are pure equivalences shared by every query,
        # so they are added unguarded, directly on the solver.
        if i not in twins:
            t = solver.new_var()
            solver.add_clause([-keep[i], t])
            solver.add_clause([keep[i], -t])
            twins[i] = t
        return twins[i]

    _encode_msr_query(
        x, sources, winners, rivals, margin, _SolverSink(solver, guard), keep, twin
    )
    state["queries"][xb] = guard
    return guard


def _ensure_msr_bound(entry, t: int) -> int:
    """Guarded ``|X| <= t`` constraint, shared across pooled queries."""
    guard = entry.state["bounds"].get(t)
    if guard is None:
        solver = entry.solver
        guard = solver.new_var()
        solver.add_at_most(entry.state["keep"], t, guard=guard)
        entry.state["bounds"][t] = guard
    return guard


def minimum_sat_hamming_k1_pooled(
    dataset: Dataset,
    x: np.ndarray,
    engine: QueryEngine,
    *,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    strategy: str = "binary",
    time_limit: float | None = None,
) -> MinimumSRResult:
    """Incremental Minimum-SR sweep over a warm pooled solver.

    Semantically identical to the incremental path of
    :func:`_minimum_sat_hamming_k1` — the optimal *size* is a pure
    feasibility question, so warm learnt clauses change speed, never
    the answer — but the encoding shared across queries on the same
    dataset version is reused instead of rebuilt.  With
    ``solver_pool=None`` the entry is ephemeral (cold but single-path).
    """
    label, sources, winners, rivals, margin = _projection_facts(dataset, x, engine)
    n = dataset.dimension
    if winners.shape[0] == 0:
        return MinimumSRResult(frozenset(), 0, "sat")
    deadline = start_deadline(time_limit)
    key = (fingerprint or "", "msr", 1, label, n)
    with lease_or_build(solver_pool, key, lambda: _build_msr_entry(n)) as entry:
        remaining_budget(deadline, "minimum-SR SAT search")
        guard = _ensure_msr_query(entry, x, sources, winners, rivals, margin)
        keep = entry.state["keep"]
        found = minimize_bound_assumptions(
            entry.solver,
            lambda t: _ensure_msr_bound(entry, t),
            lambda model: frozenset(i for i in range(n) if model[keep[i]]),
            0,
            n,
            strategy=strategy,
            time_limit=remaining_budget(deadline, "minimum-SR SAT search"),
            assumptions=(guard,),
        )
    assert found is not None, "the full component set is always sufficient"
    _size, X = found
    _assert_sufficient(dataset, x, X, engine)
    return MinimumSRResult(X, len(X), "sat")


def minimum_sr_canonical_witness(
    dataset: Dataset,
    x: np.ndarray,
    engine: QueryEngine,
    size: int,
    *,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    time_limit: float | None = None,
) -> frozenset[int]:
    """The lexicographically smallest sufficient reason of optimal *size*.

    Every exact pipeline agrees on the optimal cardinality but may
    return different witnesses; the portfolio replaces the winner's
    witness with this canonical one so its answers are bit-identical
    regardless of which method (or race schedule) won.  The extraction
    is the classic lex-leader walk: ascending component index, prefer
    *include*, each preference settled by a feasibility probe under the
    ``|X| <= size`` guard — with the current model reused to skip
    probes whose answer it already witnesses.  By construction this
    equals the first subset ``combinations(range(n), size)`` order
    would hit, i.e. exactly what the brute pipeline returns.
    """
    label, sources, winners, rivals, margin = _projection_facts(dataset, x, engine)
    n = dataset.dimension
    if winners.shape[0] == 0 or size <= 0:
        return frozenset()
    deadline = start_deadline(time_limit)
    key = (fingerprint or "", "msr", 1, label, n)
    with lease_or_build(solver_pool, key, lambda: _build_msr_entry(n)) as entry:
        solver, keep = entry.solver, entry.state["keep"]
        query = _ensure_msr_query(entry, x, sources, winners, rivals, margin)
        bound = _ensure_msr_bound(entry, size)
        fixed = [query, bound]
        decided: list[int] = []
        chosen: set[int] = set()
        model = None
        for i in range(n):
            if model is not None and model[keep[i]]:
                decided.append(keep[i])
                chosen.add(i)
            else:
                remaining = remaining_budget(deadline, "canonical-witness extraction")
                probe = solver.solve([*fixed, *decided, keep[i]], time_limit=remaining)
                if probe is not None:
                    model = probe
                    decided.append(keep[i])
                    chosen.add(i)
                else:
                    # Excluding i keeps the prefix feasible (it was
                    # feasible before the probe), so walk on.
                    decided.append(-keep[i])
            if len(chosen) == size:
                break  # every model at this bound has exactly `size` kept
    X = frozenset(chosen)
    _assert_sufficient(dataset, x, X, engine)
    return X


def _assert_sufficient(
    dataset: Dataset, x: np.ndarray, X: frozenset[int], engine: QueryEngine
) -> None:
    verdict = check_sufficient_reason(dataset, 1, "hamming", x, X, engine=engine)
    if not verdict:  # pragma: no cover - encoding bug guard
        raise AssertionError(
            f"solver returned X={sorted(X)} which is not a sufficient reason"
        )
