"""Experiment harness shared by the benchmark suite and the examples.

:mod:`runner` provides timing sweeps with repetition control, optional
process-pool sharding of grid points, and JSON serialization;
:mod:`figures` defines the workload series of the paper's Figures 5 and
6 (scaled to laptop-friendly sizes); :mod:`tables` renders Table 1 and
the per-cell empirical scaling summaries; :mod:`bench` measures the
headline speedups the CI benchmark-baseline gate tracks.
"""

from __future__ import annotations

from .runner import SweepResult, run_sweep, time_callable
from .figures import (
    FIGURE5_IQP,
    FIGURE5_SAT,
    FIGURE6_CF_L2,
    FIGURE6_MSR_L1,
    FigureSpec,
    FigureSweepTask,
    figure5_workload,
    figure6_workload,
)
from .tables import render_results_table, render_table1

__all__ = [
    "time_callable",
    "run_sweep",
    "SweepResult",
    "FigureSpec",
    "FigureSweepTask",
    "FIGURE5_IQP",
    "FIGURE5_SAT",
    "FIGURE6_MSR_L1",
    "FIGURE6_CF_L2",
    "figure5_workload",
    "figure6_workload",
    "render_table1",
    "render_results_table",
]
