"""Headline benchmark harness behind ``python -m repro bench`` and CI.

Measures a small set of *headline* workloads — the numbers the ROADMAP
tracks over time — and serializes them as ``BENCH_*.json``:

* ``engine_batch`` — :meth:`QueryEngine.classify_batch` against the
  seed's per-point classification loop (l2, 5000 x 64); the *headline*
  whose speedup the CI ``bench-baseline`` job gates against the
  committed ``benchmarks/BENCH_baseline.json``;
* ``hamming_bitpack`` — the bit-packed popcount backend against the
  dense Gram kernel on binary Hamming data (5000 x 128), asserted
  bit-identical;
* ``kdtree_lowdim`` — per-query KD-tree search against per-query brute
  force at dimension 3, where the tree's pruning wins.

Speedup *ratios* (not wall-clock seconds) are what the gate compares:
ratios are stable across runner hardware, absolute times are not.  Each
workload re-times both of its contestants in the same process, so a
slow runner slows both sides.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..knn import Dataset, QueryEngine
from ..knn.engine import _kth_smallest_with_multiplicity
from ..neighbors import BruteForceIndex, KDTreeIndex

#: JSON schema version of the BENCH_*.json payload.
BENCH_SCHEMA = 1

#: the workload whose speedup the regression gate compares.
HEADLINE = "engine_batch"

#: default tolerated relative drop of a gated speedup (25%).
DEFAULT_MAX_REGRESSION = 0.25


def best_of(fn, *, repeats: int = 3) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over *repeats* runs."""
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def classify_batch_loop(data: Dataset, metric, queries: np.ndarray, k: int) -> np.ndarray:
    """The seed's per-point classification path: one Python iteration (and
    two distance vectors) per query — kept verbatim as the baseline the
    engine-batch headline is measured against."""
    need = (k + 1) // 2
    out = np.empty(queries.shape[0], dtype=np.int64)
    for i, x in enumerate(queries):
        pos_d = metric.powers_to(data.positives, x)
        neg_d = metric.powers_to(data.negatives, x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, data.positive_multiplicities, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, data.negative_multiplicities, need)
        out[i] = 1 if r_pos <= r_neg else 0
    return out


def _labeled_workload(rng, n_train: int, n_dim: int, n_queries: int, *, binary: bool):
    if binary:
        points = rng.integers(0, 2, size=(n_train, n_dim)).astype(float)
        queries = rng.integers(0, 2, size=(n_queries, n_dim)).astype(float)
    else:
        points = rng.normal(size=(n_train, n_dim))
        queries = rng.normal(size=(n_queries, n_dim))
    labels = rng.integers(0, 2, size=n_train).astype(bool)
    return Dataset(points[labels], points[~labels]), queries


def measure_engine_batch(seed: int = 20250601, repeats: int = 3) -> dict:
    """Headline: batched engine classification vs the per-point loop."""
    rng = np.random.default_rng(seed)
    data, queries = _labeled_workload(rng, 5_000, 64, 200, binary=False)
    engine = QueryEngine(data, "l2", backend="dense")
    looped = best_of(
        lambda: classify_batch_loop(data, engine.metric, queries, 3), repeats=repeats
    )
    batched = best_of(lambda: engine.classify_batch(queries, 3), repeats=repeats)
    np.testing.assert_array_equal(
        engine.classify_batch(queries, 3),
        classify_batch_loop(data, engine.metric, queries, 3),
    )
    return {
        "looped_s": looped,
        "batched_s": batched,
        "speedup": looped / batched,
        "queries": 200,
        "train": 5_000,
        "dim": 64,
        "metric": "l2",
        "k": 3,
    }


def measure_hamming_bitpack(seed: int = 20250601, repeats: int = 3) -> dict:
    """Bit-packed popcount backend vs the dense Gram kernel (binary data).

    Classifications are asserted bit-identical before timing — the
    backend contract the parity suite enforces more broadly.
    """
    rng = np.random.default_rng(seed)
    data, queries = _labeled_workload(rng, 5_000, 128, 200, binary=True)
    dense = QueryEngine(data, "hamming", backend="dense")
    bitpack = QueryEngine(data, "hamming", backend="bitpack")
    np.testing.assert_array_equal(
        dense.classify_batch(queries, 3), bitpack.classify_batch(queries, 3)
    )
    dense_s = best_of(lambda: dense.classify_batch(queries, 3), repeats=repeats)
    bitpack_s = best_of(lambda: bitpack.classify_batch(queries, 3), repeats=repeats)
    return {
        "dense_s": dense_s,
        "bitpack_s": bitpack_s,
        "speedup": dense_s / bitpack_s,
        "queries": 200,
        "train": 5_000,
        "dim": 128,
        "metric": "hamming",
        "k": 3,
    }


def measure_kdtree_lowdim(seed: int = 20250601, repeats: int = 3) -> dict:
    """Per-query KD-tree search vs per-query brute force at dimension 3."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(4_000, 3))
    queries = rng.normal(size=(50, 3))
    brute = BruteForceIndex(points, "l2")
    tree = KDTreeIndex(points, "l2")

    def sweep(index):
        return [index.query(x, 5)[1][0] for x in queries]

    assert sweep(brute) == sweep(tree)
    brute_s = best_of(lambda: sweep(brute), repeats=repeats)
    kdtree_s = best_of(lambda: sweep(tree), repeats=repeats)
    return {
        "brute_s": brute_s,
        "kdtree_s": kdtree_s,
        "speedup": brute_s / kdtree_s,
        "queries": 50,
        "train": 4_000,
        "dim": 3,
        "metric": "l2",
        "k": 5,
    }


WORKLOADS = {
    "engine_batch": measure_engine_batch,
    "hamming_bitpack": measure_hamming_bitpack,
    "kdtree_lowdim": measure_kdtree_lowdim,
}


def _run_workload(name: str, seed: int, repeats: int) -> dict:
    return WORKLOADS[name](seed=seed, repeats=repeats)


def collect(
    *,
    seed: int = 20250601,
    repeats: int = 3,
    workers: int = 1,
    workloads=None,
) -> dict:
    """Run the selected workloads and return the ``BENCH_*.json`` payload.

    ``workers > 1`` shards the workloads over a process pool; expect
    extra noise when workers contend for cores — the gate compares
    same-process speedup ratios, which contention distorts far less
    than wall-clock times.
    """
    names = list(WORKLOADS) if workloads is None else list(workloads)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(f"unknown workloads {unknown}; choose from {sorted(WORKLOADS)}")
    results: dict[str, dict] = {}
    workers = max(1, int(workers))
    if workers > 1 and len(names) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            futures = {
                name: pool.submit(_run_workload, name, seed, repeats) for name in names
            }
            results = {name: future.result() for name, future in futures.items()}
    else:
        results = {name: _run_workload(name, seed, repeats) for name in names}
    return {
        "schema": BENCH_SCHEMA,
        "config": {"seed": seed, "repeats": repeats},
        "workloads": results,
    }


def gated_best(
    measure_fn,
    *,
    threshold: float,
    attempts: int = 3,
    seed: int = 20250601,
    repeats: int = 3,
) -> dict:
    """Best measurement over up to *attempts* runs (early exit on pass).

    The shared retry loop behind every CI speedup gate: one noisy
    neighbor on a shared runner must not fail a job that a clean rerun
    would clear.  Returns the best-run stats plus the attempt count
    under ``"attempts"``.
    """
    best: dict = {}
    attempt = 0
    for attempt in range(1, max(1, attempts) + 1):
        stats = measure_fn(seed=seed, repeats=repeats)
        if not best or stats["speedup"] > best["speedup"]:
            best = stats
        if best["speedup"] >= threshold:
            break
    best["attempts"] = attempt
    return best


def compare_with_retry(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    attempts: int = 3,
) -> list[str]:
    """Regression-gate with best-of-*attempts* re-measurement.

    When the first comparison fails, the headline workload is re-measured
    (up to *attempts* total measurements, keeping the best speedup and
    updating *current* in place — so a saved artifact reflects the gated
    numbers) before the failure is final.  Same rationale as
    :func:`gated_best`: committed baselines come from other machines, so
    the gate must absorb one-off scheduler noise, not amplify it.
    """
    failures = compare(current, baseline, max_regression=max_regression)
    attempt = 1
    config = current.get("config", {})
    while failures and attempt < max(1, attempts):
        attempt += 1
        retry = WORKLOADS[HEADLINE](
            seed=config.get("seed", 20250601), repeats=config.get("repeats", 3)
        )
        workloads = current.setdefault("workloads", {})
        best = workloads.get(HEADLINE)
        if best is None or retry["speedup"] > best.get("speedup", -np.inf):
            workloads[HEADLINE] = retry
        failures = compare(current, baseline, max_regression=max_regression)
    config["gate_attempts"] = attempt
    current["config"] = config
    return failures


def compare(
    current: dict, baseline: dict, *, max_regression: float = DEFAULT_MAX_REGRESSION
) -> list[str]:
    """Regression-gate *current* against *baseline*; return failure messages.

    Only the headline workload is gated: its speedup ratio must not drop
    more than ``max_regression`` (relative) below the baseline's.  Other
    workloads are informational — they appear in the artifact and the
    report but cannot fail the job, keeping the gate robust on noisy
    shared runners.
    """
    failures: list[str] = []
    base = baseline.get("workloads", {}).get(HEADLINE)
    cur = current.get("workloads", {}).get(HEADLINE)
    if base is None or "speedup" not in base:
        failures.append(f"baseline has no {HEADLINE!r} workload to gate against")
        return failures
    if cur is None or "speedup" not in cur:
        failures.append(f"current run has no {HEADLINE!r} workload")
        return failures
    floor = base["speedup"] * (1.0 - max_regression)
    if cur["speedup"] < floor:
        failures.append(
            f"{HEADLINE} headline regressed: speedup {cur['speedup']:.1f}x is below "
            f"{floor:.1f}x (baseline {base['speedup']:.1f}x minus "
            f"{max_regression:.0%} tolerance)"
        )
    return failures


def render_report(payload: dict, *, baseline: dict | None = None) -> str:
    """Human/markdown-readable table of a ``BENCH_*.json`` payload."""
    lines = ["| workload | speedup | details |", "| --- | --- | --- |"]
    for name, row in sorted(payload.get("workloads", {}).items()):
        details = ", ".join(
            f"{key}={row[key]}" for key in ("train", "dim", "queries", "metric", "k")
            if key in row
        )
        note = " (headline)" if name == HEADLINE else ""
        base_note = ""
        if baseline is not None:
            base_row = baseline.get("workloads", {}).get(name)
            if base_row and "speedup" in base_row:
                base_note = f" vs baseline {base_row['speedup']:.1f}x"
        lines.append(
            f"| {name}{note} | {row['speedup']:.1f}x{base_note} | {details} |"
        )
    return "\n".join(lines)


def load_json(path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def save_json(payload: dict, path) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
