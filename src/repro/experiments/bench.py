"""Headline benchmark harness behind ``python -m repro bench`` and CI.

Measures a small set of *headline* workloads — the numbers the ROADMAP
tracks over time — and serializes them as ``BENCH_*.json``:

* ``engine_batch`` — :meth:`QueryEngine.classify_batch` against the
  seed's per-point classification loop (l2, 5000 x 64); the *headline*
  whose speedup the CI ``bench-baseline`` job gates against the
  committed ``benchmarks/BENCH_baseline.json``;
* ``hamming_bitpack`` — the bit-packed popcount backend against the
  dense Gram kernel on binary Hamming data (5000 x 128), asserted
  bit-identical;
* ``kdtree_lowdim`` — per-query KD-tree search against per-query brute
  force at dimension 3, where the tree's pruning wins;
* ``msr_incremental`` — the incremental (assumption-based, encode-once)
  Minimum-SR SAT sweep against the seed's rebuild-per-bound search —
  the second gated headline, introduced with the incremental solver;
* ``serve_throughput`` — the :mod:`repro.serve` micro-batched service
  path against a sequential per-request loop on the same service
  (caching disabled on both sides, answers asserted identical) — the
  third gated headline, introduced with the serving layer;
* ``streaming_updates`` — an interleaved insert/query stream absorbed
  by one engine's incremental :meth:`~repro.knn.QueryEngine.add_points`
  path against rebuilding the engine after every mutation (labels
  asserted identical) — the fourth gated headline, introduced with
  mutable streaming datasets;
* ``million_point`` — the certified inverted-file backend against the
  dense kernels on clustered integer data (labels, margins and radii
  asserted bit-identical first) — the fifth gated headline, introduced
  with the IVF backend.  CI runs it at a scaled-down ``train`` (the
  default below); the nightly job passes ``--train 1000000`` for the
  full million-point measurement;
* ``serve_scaleout`` — the sharded multi-process
  :class:`~repro.serve.ClusterService` against the single-process
  service under the same deterministic open-loop mixed workload
  (classify + SAT solves), payloads asserted bit-identical request for
  request before timing — the sixth gated headline, introduced with
  the cluster front.  The gated number is the **classify-class p99
  latency ratio** (head-of-line blocking is what sharding removes;
  see :func:`measure_serve_scaleout` for why it is clamped).

Speedup *ratios* (not wall-clock seconds) are what the gate compares:
ratios are stable across runner hardware, absolute times are not.  Each
workload re-times both of its contestants in the same process, so a
slow runner slows both sides.
"""

from __future__ import annotations

import inspect
import json
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..knn import Dataset, QueryEngine
from ..knn.engine import _kth_smallest_with_multiplicity
from ..neighbors import BruteForceIndex, KDTreeIndex

#: JSON schema version of the BENCH_*.json payload.
BENCH_SCHEMA = 1

#: workloads the regression gate compares, primary first.  The primary
#: headline must exist in the baseline; secondary headlines are gated
#: only when the committed baseline already records them (so an old
#: baseline keeps gating what it knows about).
GATED_HEADLINES = (
    "engine_batch",
    "msr_incremental",
    "serve_throughput",
    "streaming_updates",
    "million_point",
    "serve_scaleout",
    "portfolio_parallel",
    "scenario_multiclass",
)

#: the primary gated workload (legacy alias).
HEADLINE = GATED_HEADLINES[0]

#: default tolerated relative drop of a gated speedup (25%).
DEFAULT_MAX_REGRESSION = 0.25


def best_of(fn, *, repeats: int = 3) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over *repeats* runs."""
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def classify_batch_loop(data: Dataset, metric, queries: np.ndarray, k: int) -> np.ndarray:
    """The seed's per-point classification path: one Python iteration (and
    two distance vectors) per query — kept verbatim as the baseline the
    engine-batch headline is measured against."""
    need = (k + 1) // 2
    out = np.empty(queries.shape[0], dtype=np.int64)
    for i, x in enumerate(queries):
        pos_d = metric.powers_to(data.positives, x)
        neg_d = metric.powers_to(data.negatives, x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, data.positive_multiplicities, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, data.negative_multiplicities, need)
        out[i] = 1 if r_pos <= r_neg else 0
    return out


def _labeled_workload(rng, n_train: int, n_dim: int, n_queries: int, *, binary: bool):
    if binary:
        points = rng.integers(0, 2, size=(n_train, n_dim)).astype(float)
        queries = rng.integers(0, 2, size=(n_queries, n_dim)).astype(float)
    else:
        points = rng.normal(size=(n_train, n_dim))
        queries = rng.normal(size=(n_queries, n_dim))
    labels = rng.integers(0, 2, size=n_train).astype(bool)
    return Dataset(points[labels], points[~labels]), queries


def measure_engine_batch(seed: int = 20250601, repeats: int = 3) -> dict:
    """Headline: batched engine classification vs the per-point loop."""
    rng = np.random.default_rng(seed)
    data, queries = _labeled_workload(rng, 5_000, 64, 200, binary=False)
    engine = QueryEngine(data, "l2", backend="dense")
    looped = best_of(
        lambda: classify_batch_loop(data, engine.metric, queries, 3), repeats=repeats
    )
    batched = best_of(lambda: engine.classify_batch(queries, 3), repeats=repeats)
    np.testing.assert_array_equal(
        engine.classify_batch(queries, 3),
        classify_batch_loop(data, engine.metric, queries, 3),
    )
    return {
        "looped_s": looped,
        "batched_s": batched,
        "speedup": looped / batched,
        "queries": 200,
        "train": 5_000,
        "dim": 64,
        "metric": "l2",
        "k": 3,
    }


def measure_hamming_bitpack(seed: int = 20250601, repeats: int = 3) -> dict:
    """Bit-packed popcount backend vs the dense Gram kernel (binary data).

    Classifications are asserted bit-identical before timing — the
    backend contract the parity suite enforces more broadly.
    """
    rng = np.random.default_rng(seed)
    data, queries = _labeled_workload(rng, 5_000, 128, 200, binary=True)
    dense = QueryEngine(data, "hamming", backend="dense")
    bitpack = QueryEngine(data, "hamming", backend="bitpack")
    np.testing.assert_array_equal(
        dense.classify_batch(queries, 3), bitpack.classify_batch(queries, 3)
    )
    dense_s = best_of(lambda: dense.classify_batch(queries, 3), repeats=repeats)
    bitpack_s = best_of(lambda: bitpack.classify_batch(queries, 3), repeats=repeats)
    return {
        "dense_s": dense_s,
        "bitpack_s": bitpack_s,
        "speedup": dense_s / bitpack_s,
        "queries": 200,
        "train": 5_000,
        "dim": 128,
        "metric": "hamming",
        "k": 3,
    }


def measure_kdtree_lowdim(seed: int = 20250601, repeats: int = 3) -> dict:
    """Per-query KD-tree search vs per-query brute force at dimension 3."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(4_000, 3))
    queries = rng.normal(size=(50, 3))
    brute = BruteForceIndex(points, "l2")
    tree = KDTreeIndex(points, "l2")

    def sweep(index):
        return [index.query(x, 5)[1][0] for x in queries]

    assert sweep(brute) == sweep(tree)
    brute_s = best_of(lambda: sweep(brute), repeats=repeats)
    kdtree_s = best_of(lambda: sweep(tree), repeats=repeats)
    return {
        "brute_s": brute_s,
        "kdtree_s": kdtree_s,
        "speedup": brute_s / kdtree_s,
        "queries": 50,
        "train": 4_000,
        "dim": 3,
        "metric": "l2",
        "k": 5,
    }


def measure_msr_incremental(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: incremental Minimum-SR SAT sweep vs per-bound rebuild.

    Both contestants run the same linear bound search (the paper's
    strategy when the optimum is small) over the same instances and
    shared query engine; the only difference is that the incremental
    side encodes the Proposition-6 characterization once and sweeps the
    size bound through guarded cardinality constraints activated by
    assumption literals, while the rebuild side re-encodes and grows a
    cold solver per probed bound.  Optimum sizes are asserted identical
    before timing.
    """
    from ..abductive.minimum import _minimum_sat_hamming_k1
    from ..datasets import random_boolean_dataset

    rng = np.random.default_rng(seed)
    n, size, n_queries = 13, 24, 3
    data = random_boolean_dataset(rng, n, size)
    queries = [rng.integers(0, 2, size=n).astype(float) for _ in range(n_queries)]
    engine = QueryEngine(data, "hamming")

    def sweep(incremental: bool) -> list[int]:
        return [
            _minimum_sat_hamming_k1(
                data, x, engine, incremental=incremental, strategy="linear"
            ).size
            for x in queries
        ]

    incremental_sizes, rebuild_sizes = sweep(True), sweep(False)
    if incremental_sizes != rebuild_sizes:  # explicit: must survive python -O
        raise AssertionError(
            "incremental and rebuild optima diverged: "
            f"{incremental_sizes} vs {rebuild_sizes}"
        )
    rebuild = best_of(lambda: sweep(False), repeats=repeats)
    incremental = best_of(lambda: sweep(True), repeats=repeats)
    return {
        "rebuild_s": rebuild,
        "incremental_s": incremental,
        "speedup": rebuild / incremental,
        "queries": n_queries,
        "train": size,
        "dim": n,
        "metric": "hamming",
        "k": 1,
    }


def measure_serve_throughput(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: micro-batched serving vs a sequential request loop.

    Both contestants are the *same* :class:`~repro.serve.ExplanationService`
    configuration (result cache disabled, so batching — not memoization —
    is what's measured) over a 5000-point binary Hamming dataset, whose
    integer distances make batched and per-request answers bit-identical
    by the backend parity contract.  The sequential side answers one
    ``classify`` request per :meth:`~repro.serve.ExplanationService.submit`
    call — the one-shot library/CLI pattern the serving layer replaces —
    while the batched side hands the identical request list to
    :meth:`~repro.serve.ExplanationService.submit_many`, which groups
    them into vectorized ``classify_batch`` calls.  Payloads are
    asserted identical before any timing happens.
    """
    from ..serve import ExplanationService

    rng = np.random.default_rng(seed)
    data, queries = _labeled_workload(rng, 5_000, 64, 400, binary=True)

    def fresh_service() -> tuple:
        # The dense Gram kernel (the default workhorse backend) keeps the
        # contest about batching: under bitpack both sides' kernels are so
        # cheap that fixed per-call overhead compresses the ratio.  Dense
        # Hamming is still exact on the binary data (integer counts).
        service = ExplanationService(cache_size=0, backend="dense")
        return service, service.add_dataset(data)

    def sequential(service, fingerprint) -> list:
        return [
            service.submit(fingerprint, "classify", x, k=3, metric="hamming")
            for x in queries
        ]

    def batched(service, fingerprint) -> list:
        requests = [
            service.make_request(fingerprint, "classify", x, k=3, metric="hamming")
            for x in queries
        ]
        return service.submit_requests(requests)

    service, fingerprint = fresh_service()
    sequential_payloads = [r.payload for r in sequential(service, fingerprint)]
    batched_payloads = [r.payload for r in batched(service, fingerprint)]
    if sequential_payloads != batched_payloads:  # explicit: survives python -O
        raise AssertionError("batched and sequential serving answers diverged")
    sequential_s = best_of(
        lambda: sequential(service, fingerprint), repeats=repeats
    )
    batched_s = best_of(lambda: batched(service, fingerprint), repeats=repeats)
    return {
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
        "requests_per_s_sequential": len(queries) / sequential_s,
        "requests_per_s_batched": len(queries) / batched_s,
        "queries": 400,
        "train": 5_000,
        "dim": 64,
        "metric": "hamming",
        "k": 3,
    }


def measure_streaming_updates(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: incremental index updates vs rebuild-per-mutation.

    Both contestants replay the same interleaved stream — 30 rounds of
    "insert 4 labeled points, then answer 25 classify queries" over a
    4000-point binary Hamming dataset (bitpack backend, the streaming
    regime's workhorse).  The incremental side owns **one** engine and
    absorbs each batch through
    :meth:`~repro.knn.QueryEngine.add_points` (packed-word appends, no
    flush of anything the batch did not touch); the rebuild side does
    what the pre-mutation repo had to: fold the batch into a fresh
    :class:`~repro.knn.Dataset` and construct a new engine per mutation.
    Every label of the two streams is asserted identical before timing —
    the differential invariant the fuzz parity suite enforces broadly.
    """
    rng = np.random.default_rng(seed)
    n_train, n_dim, rounds, inserts, queries_per_round = 4_000, 64, 30, 4, 25
    data, _ = _labeled_workload(rng, n_train, n_dim, 1, binary=True)
    stream = [
        (
            rng.integers(0, 2, size=(inserts, n_dim)).astype(float),
            rng.integers(0, 2, size=inserts),
            rng.integers(0, 2, size=(queries_per_round, n_dim)).astype(float),
        )
        for _ in range(rounds)
    ]

    def incremental() -> np.ndarray:
        engine = QueryEngine(data, "hamming", backend="bitpack", cache_size=0)
        labels = []
        for points, point_labels, queries in stream:
            engine.add_points(points, point_labels)
            labels.append(engine.classify_batch(queries, 3))
        return np.concatenate(labels)

    def rebuild() -> np.ndarray:
        current = data
        labels = []
        for points, point_labels, queries in stream:
            current = current.with_added(points, point_labels)
            engine = QueryEngine(current, "hamming", backend="bitpack", cache_size=0)
            labels.append(engine.classify_batch(queries, 3))
        return np.concatenate(labels)

    if not np.array_equal(incremental(), rebuild()):  # explicit: survives python -O
        raise AssertionError("incremental and rebuilt streaming answers diverged")
    rebuild_s = best_of(rebuild, repeats=repeats)
    incremental_s = best_of(incremental, repeats=repeats)
    return {
        "rebuild_s": rebuild_s,
        "incremental_s": incremental_s,
        "speedup": rebuild_s / incremental_s,
        "rounds": rounds,
        "inserts_per_round": inserts,
        "queries": rounds * queries_per_round,
        "train": n_train,
        "dim": n_dim,
        "metric": "hamming",
        "k": 3,
    }


def measure_scenario_multiclass(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: shared multiclass engine vs naive per-class rebuild.

    The multiclass tentpole's claim is that one shared
    :class:`~repro.knn.MultiClassEngine` serves every one-vs-rest
    question without materializing a merged dataset (or index) per
    class.  The naive contestant is what a user had before: for each of
    the C classes, build the merged binary :class:`~repro.knn.Dataset`,
    construct a fresh :class:`~repro.knn.QueryEngine` over it, and ask
    for its radii — C full index builds and C distance passes per batch.
    The shared side answers the same queries from one engine via
    :meth:`~repro.knn.MultiClassEngine.class_radii_batch` (one distance
    pass, per-class order statistics).  Per-class radii and the derived
    nearest-class labels are asserted bit-identical before timing —
    the invariant ``tests/test_multiclass_parity.py`` pins broadly.
    """
    from ..knn import MultiClassDataset, MultiClassEngine

    rng = np.random.default_rng(seed)
    n_train, n_dim, n_classes, n_queries, k = 3_000, 48, 5, 300, 3
    points = rng.integers(0, 2, size=(n_train, n_dim)).astype(float)
    labels = rng.integers(0, n_classes, size=n_train)
    labels[:n_classes] = np.arange(n_classes)
    data = MultiClassDataset(points, labels, discrete=True)
    queries = rng.integers(0, 2, size=(n_queries, n_dim)).astype(float)

    def merged() -> tuple:
        engine = MultiClassEngine(data, "hamming", backend="bitpack", cache_size=0)
        radii, rest = engine.class_radii_batch(queries, k)
        return radii, rest, engine.classify_batch(queries, 1)

    def naive() -> tuple:
        radii = np.empty((n_queries, n_classes))
        rest = np.empty((n_queries, n_classes))
        nearest = np.empty((n_queries, n_classes))
        for j, label in enumerate(data.classes):
            engine = QueryEngine(
                data.merged(label), "hamming", backend="bitpack", cache_size=0
            )
            radii[:, j], rest[:, j] = engine.radii_batch(queries, k)
            nearest[:, j] = engine.radii_batch(queries, 1)[0]
        # Nearest-class (k = 1) labels; argmin ties break toward the
        # smallest label, matching the engine's documented tie rule.
        return radii, rest, np.asarray(data.classes)[np.argmin(nearest, axis=1)]

    ours, theirs = merged(), naive()
    for mine, other in zip(ours, theirs):  # explicit: survives python -O
        if not np.array_equal(mine, other):
            raise AssertionError("shared-engine and per-class answers diverged")
    naive_s = best_of(naive, repeats=repeats)
    merged_s = best_of(merged, repeats=repeats)
    return {
        "naive_s": naive_s,
        "merged_s": merged_s,
        "speedup": naive_s / merged_s,
        "train": n_train,
        "dim": n_dim,
        "classes": n_classes,
        "queries": n_queries,
        "metric": "hamming",
        "k": k,
    }


def _clustered_integer_points(
    rng, n: int, dim: int, *, n_clusters: int, spread: int = 2, chunk: int = 262_144
) -> tuple[np.ndarray, np.ndarray]:
    """Integer points clustered around integer centers, generated in chunks.

    Streams ``chunk`` rows at a time into one preallocated output array,
    so peak temporary memory is O(chunk x dim) no matter how large ``n``
    grows — at the full million-point size a one-shot
    ``centers[assign] + offsets`` expression would materialize several
    extra copies of the half-gigabyte dataset.  Returns
    ``(centers, points)``; the integer grid keeps every distance exactly
    representable, which is what makes cross-backend parity assertable
    bit for bit.
    """
    centers = rng.integers(0, 41, size=(n_clusters, dim)).astype(float)
    points = np.empty((n, dim), dtype=float)
    for start in range(0, n, max(1, int(chunk))):
        stop = min(n, start + chunk)
        assign = rng.integers(0, n_clusters, size=stop - start)
        points[start:stop] = centers[assign]
        points[start:stop] += rng.integers(-spread, spread + 1, size=(stop - start, dim))
    return centers, points


def measure_million_point(
    seed: int = 20250601,
    repeats: int = 3,
    *,
    train: int = 120_000,
    dim: int = 64,
) -> dict:
    """Gated headline: the certified IVF backend vs the dense Gram kernel.

    Clustered integer data is the regime the inverted file is built for:
    the coarse quantizer recovers the clusters, the triangle-inequality
    certificate proves most buckets cannot hold a k-th nearest neighbor,
    and integer coordinates make every surrogate-distance gap >= 1 — so
    certification succeeds and each query scans a few percent of the
    points while staying bit-identical to the dense scan.  Labels,
    margins and radii are asserted identical before any timing happens.

    ``train``/``dim`` default to a CI-sized workload; the nightly job
    passes ``--train 1000000`` for the paper-scale measurement (the
    chunked generator keeps peak temporary memory flat).
    """
    rng = np.random.default_rng(seed)
    train, dim = int(train), int(dim)
    n_clusters = max(32, int(np.sqrt(train)) // 2)
    n_queries, k = 64, 3
    centers, points = _clustered_integer_points(rng, train, dim, n_clusters=n_clusters)
    labels = rng.integers(0, 2, size=train).astype(bool)
    queries = centers[rng.integers(0, n_clusters, size=n_queries)] + rng.integers(
        -2, 3, size=(n_queries, dim)
    )
    data = Dataset(points[labels], points[~labels])
    del points
    dense = QueryEngine(data, "l2", backend="dense", cache_size=0)
    ivf = QueryEngine(data, "l2", backend="ivf", cache_size=0)
    if not np.array_equal(
        dense.classify_batch(queries, k), ivf.classify_batch(queries, k)
    ):  # explicit: survives python -O
        raise AssertionError("ivf and dense labels diverged")
    np.testing.assert_array_equal(
        dense.margins_batch(queries, k), ivf.margins_batch(queries, k)
    )
    np.testing.assert_array_equal(
        np.column_stack(dense.radii_batch(queries, k)),
        np.column_stack(ivf.radii_batch(queries, k)),
    )
    dense_s = best_of(lambda: dense.classify_batch(queries, k), repeats=repeats)
    ivf_s = best_of(lambda: ivf.classify_batch(queries, k), repeats=repeats)
    stats = ivf.ivf_stats()
    return {
        "dense_s": dense_s,
        "ivf_s": ivf_s,
        "speedup": dense_s / ivf_s,
        "certified": stats["certified"],
        "fallback": stats["fallback"],
        "clusters": n_clusters,
        "queries": n_queries,
        "train": train,
        "dim": dim,
        "metric": "l2",
        "k": k,
    }


#: clamp applied to the recorded ``serve_scaleout`` speedup.  The raw
#: tail-latency ratio is heavy-tailed by nature — the numerator is "how
#: long a classify waited behind a SAT solve" (a solver duration, often
#: 100+ ms) and the denominator is scheduler noise (single-digit ms) —
#: so raw ratios of 10-60x are routine and machine-dependent.  Clamping
#: what the cross-machine regression gate compares keeps a 25% tolerance
#: meaningful; the unclamped ratio is recorded alongside as
#: ``p99_ratio``.
SCALEOUT_SPEEDUP_CLAMP = 8.0

#: cluster topology of the ``serve_scaleout`` contest.
SCALEOUT_WORKERS = 3
SCALEOUT_REPLICAS = 3


def measure_serve_scaleout(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: the sharded cluster vs single-process tail latency.

    Both contestants serve the *same* deterministic open-loop workload
    (:func:`~repro.serve.build_workload`): ~96% single-instance
    ``classify`` traffic mixed with ``minimum_sr`` (SAT) and
    ``counterfactual`` (hamming-SAT) solves over four discrete dataset
    lineages, result caches disabled on both sides.  Before any timing,
    every request of the schedule is answered sequentially by both
    targets and the payloads are asserted bit-identical — the cluster
    must be a pure topology change, never an answer change.

    The gated ``"speedup"`` is the classify-class **p99 latency ratio**
    (clamped to :data:`SCALEOUT_SPEEDUP_CLAMP`): in one process a cheap
    classify stalls behind a multi-hundred-millisecond pure-Python SAT
    solve holding its lineage's engine lock (and the GIL), while the
    cluster's read replicas let it run in a different worker process.
    Aggregate throughput is measured separately as a saturating bulk of
    concurrent SAT solves (``throughput_ratio``); it tracks available
    cores, so the in-repo gate pins tail latency and the CI-scale
    acceptance script (``benchmarks/bench_serve_scaleout.py``)
    additionally gates throughput where enough cores exist.

    A run with any overloaded, errored, or malformed answer on either
    side fails outright — the contest is only valid when both targets
    answered everything.
    """
    import os
    from concurrent.futures import ThreadPoolExecutor

    from ..serve import (
        ClusterService,
        ExplanationService,
        LoadSpec,
        build_workload,
        run_load,
    )

    rng = np.random.default_rng(seed)
    n_lineages, dim, points_per_label = 4, 10, 20
    lineages = []
    for _ in range(n_lineages):
        pos = rng.integers(0, 2, size=(points_per_label, dim)).astype(float)
        neg = rng.integers(0, 2, size=(points_per_label, dim)).astype(float)
        lineages.append(Dataset(pos, neg, discrete=True))
    spec = LoadSpec(
        rate=60.0,
        requests=400,
        classify_weight=0.96,
        minimum_sr_weight=0.025,
        counterfactual_weight=0.015,
        seed=seed,
    )

    single = ExplanationService(cache_size=0)
    cluster = ClusterService(
        workers=SCALEOUT_WORKERS,
        replicas=SCALEOUT_REPLICAS,
        queue_depth=256,
        cache_size=0,
        max_batch=8,
    )
    try:
        fingerprints = [single.add_dataset(data) for data in lineages]
        for data in lineages:
            cluster.add_dataset(data)
        # Warm every engine on both sides (and every cluster replica —
        # the 24-instance batch scatters across workers) so the timed
        # phase never measures index construction.
        warm = [rng.integers(0, 2, size=dim).astype(float) for _ in range(24)]
        for fingerprint in fingerprints:
            single.explain(fingerprint, "classify", warm, {"k": 3})
            cluster.explain(fingerprint, "classify", warm, {"k": 3})

        # Phase 1 — parity: the full schedule, request by request, must
        # produce bit-identical payloads (explicit raise: survives -O).
        for item in build_workload(fingerprints, dim, spec):
            args = (item.fingerprint, item.method, [item.instance], item.params)
            single_payload = single.explain(*args)[0]["result"]
            cluster_payload = cluster.explain(*args)[0]["result"]
            if single_payload != cluster_payload:
                raise AssertionError(
                    f"cluster and single-process answers diverged for "
                    f"{item.method}: {cluster_payload} vs {single_payload}"
                )

        # Phase 2 — open-loop latency, best ratio over `repeats` paired
        # runs (same schedule; both sides warm).
        best: dict | None = None
        for _ in range(max(1, repeats)):
            report_single = run_load(single, fingerprints, dim, spec)
            report_cluster = run_load(cluster, fingerprints, dim, spec)
            for side, report in (("single", report_single), ("cluster", report_cluster)):
                bad = report.overloaded + report.errors + report.malformed
                if bad:  # explicit: survives python -O
                    raise AssertionError(
                        f"{side} run produced {bad} non-ok answers "
                        f"(overloaded={report.overloaded}, errors={report.errors}, "
                        f"malformed={report.malformed})"
                    )
            ratio = (
                report_single.latency_ms["batch"]["p99"]
                / report_cluster.latency_ms["batch"]["p99"]
            )
            if best is None or ratio > best["p99_ratio"]:
                best = {
                    "p99_ratio": ratio,
                    "single_p99_ms": report_single.latency_ms["batch"]["p99"],
                    "cluster_p99_ms": report_cluster.latency_ms["batch"]["p99"],
                    "single_p50_ms": report_single.latency_ms["batch"]["p50"],
                    "cluster_p50_ms": report_cluster.latency_ms["batch"]["p50"],
                    "single_rps": report_single.throughput_rps,
                    "cluster_rps": report_cluster.throughput_rps,
                }

        # Phase 3 — saturating aggregate throughput: a bulk of concurrent
        # SAT solves.  Tracks available cores (ratio ~1 on one core),
        # recorded for the CI-scale gate, not gated here.
        bulk = [
            (fingerprints[i % n_lineages],
             rng.integers(0, 2, size=dim).astype(float))
            for i in range(12)
        ]

        def drain(target) -> float:
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(
                        target.explain, fingerprint, "minimum_sr", [x],
                        {"k": 1, "solver": "sat"},
                    )
                    for fingerprint, x in bulk
                ]
                for future in futures:
                    future.result()
            return time.perf_counter() - start

        single_bulk_s = drain(single)
        cluster_bulk_s = drain(cluster)
    finally:
        cluster.close()

    return {
        "speedup": min(best["p99_ratio"], SCALEOUT_SPEEDUP_CLAMP),
        **best,
        "throughput_ratio": single_bulk_s / cluster_bulk_s,
        "single_bulk_s": single_bulk_s,
        "cluster_bulk_s": cluster_bulk_s,
        "workers": SCALEOUT_WORKERS,
        "replicas": SCALEOUT_REPLICAS,
        "cpus": os.cpu_count(),
        "queries": spec.requests,
        "train": 2 * points_per_label,
        "dim": dim,
        "metric": "hamming",
        "k": 3,
    }


def measure_portfolio_parallel(seed: int = 20250601, repeats: int = 3) -> dict:
    """Gated headline: parallel-race + warm-pool portfolio vs sequential-cold.

    Both contestants serve the *same* mixed schedule of ``minimum_sr``
    and ``counterfactual`` portfolio solves (hamming, k = 1, the
    NP-complete Table-1 cells) over three discrete dataset lineages
    through the serving layer, result caches disabled.  The contest
    side races exact methods in the process pool and reuses warm
    pooled SAT solvers across queries of a lineage; the baseline side
    is the sequential racer with pooling disabled — every query pays a
    fresh encode.

    Phase 0 — before any timing — answers the whole schedule on both
    sides sequentially and asserts the payloads (minus provenance)
    bit-identical, and the contest side's answers canonical: the race
    and the pool may only change *when* answers arrive, never *what*
    they are.  The gated ``"speedup"`` is the wall-clock ratio of
    draining the schedule through four client threads (best of
    *repeats* paired runs).  The parallel half of the gain tracks
    available cores — the CI-scale acceptance script
    (``benchmarks/bench_portfolio_parallel.py``) gates >= 2x only on
    machines with >= 4 cpus; the warm-pool half shows on any core
    count.
    """
    import os
    from concurrent.futures import ThreadPoolExecutor

    from ..serve import ExplanationService
    from ..serve.service import PROVENANCE_KEY

    rng = np.random.default_rng(seed)
    n_lineages, dim, points_per_label = 3, 10, 16
    lineages = []
    for _ in range(n_lineages):
        pos = rng.integers(0, 2, size=(points_per_label, dim)).astype(float)
        neg = rng.integers(0, 2, size=(points_per_label, dim)).astype(float)
        lineages.append(Dataset(pos, neg, discrete=True))
    schedule = [
        (i % n_lineages,
         "minimum_sr" if i % 2 == 0 else "counterfactual",
         rng.integers(0, 2, size=dim).astype(float))
        for i in range(36)
    ]

    race_workers = max(1, min(4, os.cpu_count() or 1))
    contest = ExplanationService(
        cache_size=0, parallel_portfolio=True, race_workers=race_workers
    )
    baseline = ExplanationService(cache_size=0, solver_pool=0)
    try:
        contest_fps = [contest.add_dataset(data) for data in lineages]
        baseline_fps = [baseline.add_dataset(data) for data in lineages]
        warm = [rng.integers(0, 2, size=dim).astype(float) for _ in range(4)]
        for c_fp, b_fp in zip(contest_fps, baseline_fps):
            contest.explain(c_fp, "classify", warm, {"k": 1})
            baseline.explain(b_fp, "classify", warm, {"k": 1})

        # Phase 0 — parity: racing and pooling must never change an
        # answer, only its latency (explicit raise: survives -O).
        for lineage, method, x in schedule:
            got = contest.submit(
                contest_fps[lineage], method, x,
                k=1, metric="hamming", solver="portfolio",
            ).payload
            want = baseline.submit(
                baseline_fps[lineage], method, x,
                k=1, metric="hamming", solver="portfolio",
            ).payload
            provenance = got.get(PROVENANCE_KEY, {})
            if not provenance.get("canonical"):
                raise AssertionError(
                    f"contest answer for {method} is not canonical: {provenance}"
                )
            got = {k: v for k, v in got.items() if k != PROVENANCE_KEY}
            want = {k: v for k, v in want.items() if k != PROVENANCE_KEY}
            if got != want:
                raise AssertionError(
                    f"parallel+pooled and sequential-cold answers diverged "
                    f"for {method}: {got} vs {want}"
                )

        def drain(service, fingerprints) -> float:
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(
                        service.submit, fingerprints[lineage], method, x,
                        k=1, metric="hamming", solver="portfolio",
                    )
                    for lineage, method, x in schedule
                ]
                for future in futures:
                    future.result()
            return time.perf_counter() - start

        contest_s = min(drain(contest, contest_fps) for _ in range(max(1, repeats)))
        baseline_s = min(drain(baseline, baseline_fps) for _ in range(max(1, repeats)))
        pool_stats = contest.solver_pool.stats()
        race_stats = contest.racer.stats()
    finally:
        contest.close()
        baseline.close()

    return {
        "speedup": baseline_s / contest_s,
        "contest_s": contest_s,
        "baseline_s": baseline_s,
        "requests": len(schedule),
        "parity_checked": len(schedule),
        "pool_hits": pool_stats["hits"],
        "pool_misses": pool_stats["misses"],
        "races": race_stats["races"],
        "race_cancelled": race_stats["cancelled"],
        "race_hard_kills": race_stats["hard_kills"],
        "race_workers": race_workers,
        "cpus": os.cpu_count(),
        "lineages": n_lineages,
        "train": 2 * points_per_label,
        "dim": dim,
        "metric": "hamming",
        "k": 1,
    }


WORKLOADS = {
    "engine_batch": measure_engine_batch,
    "hamming_bitpack": measure_hamming_bitpack,
    "kdtree_lowdim": measure_kdtree_lowdim,
    "msr_incremental": measure_msr_incremental,
    "serve_throughput": measure_serve_throughput,
    "serve_scaleout": measure_serve_scaleout,
    "portfolio_parallel": measure_portfolio_parallel,
    "streaming_updates": measure_streaming_updates,
    "million_point": measure_million_point,
    "scenario_multiclass": measure_scenario_multiclass,
}


def _run_workload(name: str, seed: int, repeats: int, sizes: dict | None = None) -> dict:
    """Run one workload, forwarding any size overrides it understands.

    ``sizes`` maps override names (``train``, ``dim``) to values; each is
    passed only to measure functions whose signature accepts it, so a
    global ``--train 1000000`` scales the workloads built for scaling
    without disturbing the fixed-size ones.
    """
    fn = WORKLOADS[name]
    kwargs: dict = {"seed": seed, "repeats": repeats}
    if sizes:
        accepted = inspect.signature(fn).parameters
        kwargs.update({key: val for key, val in sizes.items() if key in accepted})
    return fn(**kwargs)


def collect(
    *,
    seed: int = 20250601,
    repeats: int = 3,
    workers: int = 1,
    workloads=None,
    train: int | None = None,
    dim: int | None = None,
) -> dict:
    """Run the selected workloads and return the ``BENCH_*.json`` payload.

    ``workers > 1`` shards the workloads over a process pool; expect
    extra noise when workers contend for cores — the gate compares
    same-process speedup ratios, which contention distorts far less
    than wall-clock times.  ``train``/``dim`` override the problem size
    of workloads that accept them (currently ``million_point``); the
    overrides are recorded in the payload's ``config`` so gate retries
    re-measure at the same size.
    """
    names = list(WORKLOADS) if workloads is None else list(workloads)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(f"unknown workloads {unknown}; choose from {sorted(WORKLOADS)}")
    sizes = {
        key: int(val)
        for key, val in (("train", train), ("dim", dim))
        if val is not None
    }
    results: dict[str, dict] = {}
    workers = max(1, int(workers))
    if workers > 1 and len(names) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            futures = {
                name: pool.submit(_run_workload, name, seed, repeats, sizes)
                for name in names
            }
            results = {name: future.result() for name, future in futures.items()}
    else:
        results = {name: _run_workload(name, seed, repeats, sizes) for name in names}
    config: dict = {"seed": seed, "repeats": repeats}
    config.update(sizes)
    return {
        "schema": BENCH_SCHEMA,
        "config": config,
        "workloads": results,
    }


def gated_best(
    measure_fn,
    *,
    threshold: float,
    attempts: int = 3,
    seed: int = 20250601,
    repeats: int = 3,
) -> dict:
    """Best measurement over up to *attempts* runs (early exit on pass).

    The shared retry loop behind every CI speedup gate: one noisy
    neighbor on a shared runner must not fail a job that a clean rerun
    would clear.  Returns the best-run stats plus the attempt count
    under ``"attempts"``.
    """
    best: dict = {}
    attempt = 0
    for attempt in range(1, max(1, attempts) + 1):
        stats = measure_fn(seed=seed, repeats=repeats)
        if not best or stats["speedup"] > best["speedup"]:
            best = stats
        if best["speedup"] >= threshold:
            break
    best["attempts"] = attempt
    return best


def compare_with_retry(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    attempts: int = 3,
) -> list[str]:
    """Regression-gate with best-of-*attempts* re-measurement.

    When the first comparison fails, every failing gated workload is
    re-measured (up to *attempts* total measurements, keeping the best
    speedup and updating *current* in place — so a saved artifact
    reflects the gated numbers) before the failure is final.  Same
    rationale as :func:`gated_best`: committed baselines come from
    other machines, so the gate must absorb one-off scheduler noise,
    not amplify it.
    """
    named = _gated_failures(current, baseline, max_regression=max_regression)
    attempt = 1
    config = current.get("config", {})
    while named and attempt < max(1, attempts):
        attempt += 1
        retryable = {name for name, _ in named if name in WORKLOADS}
        if not retryable:
            break  # baseline-side failures cannot be measured away
        sizes = {key: config[key] for key in ("train", "dim") if key in config}
        for name in retryable:
            retry = _run_workload(
                name, config.get("seed", 20250601), config.get("repeats", 3), sizes
            )
            workloads = current.setdefault("workloads", {})
            best = workloads.get(name)
            if best is None or retry["speedup"] > best.get("speedup", -np.inf):
                workloads[name] = retry
        named = _gated_failures(current, baseline, max_regression=max_regression)
    config["gate_attempts"] = attempt
    current["config"] = config
    return [message for _, message in named]


def compare(
    current: dict, baseline: dict, *, max_regression: float = DEFAULT_MAX_REGRESSION
) -> list[str]:
    """Regression-gate *current* against *baseline*; return failure messages.

    Only the :data:`GATED_HEADLINES` workloads are gated: each speedup
    ratio must not drop more than ``max_regression`` (relative) below
    the baseline's.  The primary headline must exist in the baseline;
    secondary headlines are skipped when an older baseline predates
    them.  Other workloads are informational — they appear in the
    artifact and the report but cannot fail the job, keeping the gate
    robust on noisy shared runners.
    """
    return [message for _, message in _gated_failures(
        current, baseline, max_regression=max_regression
    )]


def _gated_failures(
    current: dict, baseline: dict, *, max_regression: float
) -> list[tuple[str | None, str]]:
    """Gate failures as ``(retryable workload name or None, message)`` pairs."""
    failures: list[tuple[str | None, str]] = []
    base_workloads = baseline.get("workloads", {})
    current_workloads = current.get("workloads", {})
    for name in GATED_HEADLINES:
        base = base_workloads.get(name)
        if base is None or "speedup" not in base:
            if name == HEADLINE:
                failures.append(
                    (None, f"baseline has no {name!r} workload to gate against")
                )
            continue
        cur = current_workloads.get(name)
        if cur is None or "speedup" not in cur:
            failures.append((name, f"current run has no {name!r} workload"))
            continue
        floor = base["speedup"] * (1.0 - max_regression)
        if cur["speedup"] < floor:
            failures.append((name, (
                f"{name} headline regressed: speedup {cur['speedup']:.1f}x is below "
                f"{floor:.1f}x (baseline {base['speedup']:.1f}x minus "
                f"{max_regression:.0%} tolerance)"
            )))
    return failures


def render_report(payload: dict, *, baseline: dict | None = None) -> str:
    """Human/markdown-readable table of a ``BENCH_*.json`` payload."""
    lines = ["| workload | speedup | details |", "| --- | --- | --- |"]
    for name, row in sorted(payload.get("workloads", {}).items()):
        details = ", ".join(
            f"{key}={row[key]}" for key in ("train", "dim", "queries", "metric", "k")
            if key in row
        )
        note = " (headline)" if name in GATED_HEADLINES else ""
        base_note = ""
        if baseline is not None:
            base_row = baseline.get("workloads", {}).get(name)
            if base_row and "speedup" in base_row:
                base_note = f" vs baseline {base_row['speedup']:.1f}x"
        lines.append(
            f"| {name}{note} | {row['speedup']:.1f}x{base_note} | {details} |"
        )
    return "\n".join(lines)


def load_json(path) -> dict:
    """Read a ``BENCH_*.json`` payload from *path*."""
    with open(path) as handle:
        return json.load(handle)


def save_json(payload: dict, path) -> None:
    """Write *payload* to *path* as indented, key-sorted JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
