"""Workload definitions for the paper's Figures 5 and 6.

Each :class:`FigureSpec` mirrors one panel: the workload generator, the
swept axis (feature count), the grouping axis (training-set size), and
the solver under test.  The default grids are scaled down from the
paper's (n up to 350, N up to 2000 on a laptop with Gurobi) to sizes
that our pure-Python engines sweep in minutes while preserving the
growth shape; pass a custom grid to run closer to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..counterfactual import closest_counterfactual
from ..abductive import minimal_sufficient_reason
from ..datasets import DigitImages, random_boolean_dataset
from ..knn import QueryEngine


@dataclass(frozen=True)
class FigureSpec:
    """One benchmark panel: id, axes, and the task builder."""

    figure_id: str
    description: str
    dimensions: tuple[int, ...]
    sizes: tuple[int, ...]
    make_task: Callable[[np.random.Generator, int, int], Callable[[], object]]

    def grid(self):
        """The (n, N) parameter grid this figure sweeps."""
        for size in self.sizes:
            for n in self.dimensions:
                yield {"n": n, "N": size}


# ---------------------------------------------------------------------------
# Figure 5: counterfactuals over {0,1}^n on uniform random data
# ---------------------------------------------------------------------------


def figure5_workload(
    rng: np.random.Generator, n: int, size: int, *, method: str, **kwargs
) -> Callable[[], object]:
    """One Figure 5 measurement: closest Hamming counterfactual for a
    fresh random query over a fresh random dataset.

    All repeats share one :class:`~repro.knn.QueryEngine`, so the sweep
    measures the solver, not redundant distance recomputation.
    """
    data = random_boolean_dataset(rng, n, size)
    x = rng.integers(0, 2, size=n).astype(float)
    engine = QueryEngine(data, "hamming")

    def task():
        return closest_counterfactual(
            data, 1, "hamming", x, method=method, query_engine=engine, **kwargs
        )

    return task


FIGURE5_IQP = FigureSpec(
    figure_id="fig5a",
    description="IQP (linearized MILP) runtimes for counterfactuals over {0,1}^n",
    dimensions=(20, 40, 60, 80),
    sizes=(40, 80, 120),
    make_task=lambda rng, n, size: figure5_workload(rng, n, size, method="hamming-milp"),
)

FIGURE5_SAT = FigureSpec(
    figure_id="fig5b",
    description="SAT (guarded cardinality) runtimes for counterfactuals over {0,1}^n",
    dimensions=(20, 40, 60, 80),
    sizes=(20, 40, 60),
    make_task=lambda rng, n, size: figure5_workload(rng, n, size, method="hamming-sat"),
)


# ---------------------------------------------------------------------------
# Figure 6: explanations on digit images (the MNIST substitute)
# ---------------------------------------------------------------------------


def figure6_workload(
    rng: np.random.Generator, side: int, size: int, *, task_kind: str
) -> Callable[[], object]:
    """One Figure 6 measurement on side x side digit images.

    ``task_kind`` is ``"msr-l1"`` (minimal sufficient reason under l1,
    Prop. 4 + greedy) or ``"cf-l2"`` (closest counterfactual, Thm. 2).
    """
    count = max(2, size // 2)
    images = DigitImages.generate(rng, digits=(4, 9), count_per_digit=count, side=side)
    data = images.to_dataset(positive_digit=4)
    query = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=side)
    x = query.flattened()[0]
    if task_kind == "msr-l1":
        engine = QueryEngine(data, "l1")

        def task():
            return minimal_sufficient_reason(data, 1, "l1", x, engine=engine)
    elif task_kind == "cf-l2":
        engine = QueryEngine(data, "l2")

        def task():
            return closest_counterfactual(data, 1, "l2", x, query_engine=engine)
    else:
        raise ValueError(f"unknown task_kind {task_kind!r}")
    return task


FIGURE6_MSR_L1 = FigureSpec(
    figure_id="fig6a",
    description="Minimal sufficient reason (l1) runtimes on digit images",
    dimensions=(6, 8, 10),      # image side length (features = side^2)
    sizes=(16, 24, 32),         # |S+| + |S-|
    make_task=lambda rng, side, size: figure6_workload(rng, side, size, task_kind="msr-l1"),
)

FIGURE6_CF_L2 = FigureSpec(
    figure_id="fig6b",
    description="Counterfactual (l2) runtimes on digit images",
    dimensions=(8, 12, 16, 20),
    sizes=(50, 100, 150),
    make_task=lambda rng, side, size: figure6_workload(rng, side, size, task_kind="cf-l2"),
)

ALL_FIGURES = {
    spec.figure_id: spec
    for spec in (FIGURE5_IQP, FIGURE5_SAT, FIGURE6_MSR_L1, FIGURE6_CF_L2)
}


class FigureSweepTask:
    """Picklable grid→task adapter for :func:`~repro.experiments.run_sweep`.

    Stores only ``(figure_id, seed)`` and resolves the spec from
    :data:`ALL_FIGURES` at call time, so it crosses process boundaries
    regardless of how the spec's ``make_task`` is defined — this is what
    lets ``run_sweep(workers=N)`` shard a figure grid over cores.  Each
    grid point derives its own RNG from ``(seed, n, N)``, so serial and
    parallel sweeps time identical workloads.
    """

    def __init__(self, figure_id: str, seed: int = 0):
        if figure_id not in ALL_FIGURES:
            raise ValueError(
                f"unknown figure {figure_id!r}; choose from {sorted(ALL_FIGURES)}"
            )
        self.figure_id = figure_id
        self.seed = int(seed)

    def __call__(self, params: dict) -> Callable[[], object]:
        spec = ALL_FIGURES[self.figure_id]
        rng = np.random.default_rng((self.seed, params["n"], params["N"]))
        return spec.make_task(rng, params["n"], params["N"])
