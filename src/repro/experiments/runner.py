"""Timing sweeps: the minimal measurement core behind the benchmarks.

pytest-benchmark handles the statistics in ``benchmarks/``; this module
serves the examples and the standalone harness (``python -m repro``),
where a figure is regenerated as a table of medians over a parameter
grid.  Grids can be swept serially or sharded over a process pool
(``workers=N``), and results serialize to the ``BENCH_*.json`` format
consumed by the CI benchmark-baseline gate.
"""

from __future__ import annotations

import json
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np


def time_callable(
    fn: Callable[[], object], *, repeats: int = 3, budget: float | None = None
) -> dict:
    """Median/min/max wall-clock seconds of ``fn()`` over *repeats* runs.

    ``budget`` (seconds) makes the measurement *anytime*: once the runs
    completed so far have spent the budget, remaining repeats are
    skipped and the row is marked ``"truncated": True`` — a sweep over
    a big grid then degrades to fewer repeats instead of overshooting
    its time box.  At least one run always happens.
    """
    samples = []
    spent = 0.0
    target = max(1, repeats)
    for _ in range(target):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
        spent += samples[-1]
        if budget is not None and spent >= budget:
            break
    timing = {
        "median": float(np.median(samples)),
        "min": float(min(samples)),
        "max": float(max(samples)),
        "repeats": len(samples),
    }
    if budget is not None:
        timing["truncated"] = len(samples) < target
    return timing


@dataclass
class SweepResult:
    """Rows of (parameters, timing) pairs collected by :func:`run_sweep`."""

    name: str
    rows: list[dict] = field(default_factory=list)

    def add(self, params: dict, timing: dict) -> None:
        """Record one grid point's parameters and timing stats."""
        self.rows.append({**params, **timing})

    def series(self, x: str, group: str) -> dict:
        """Group rows into ``{group_value: (xs, medians)}`` — a figure's lines."""
        out: dict = {}
        for row in self.rows:
            key = row[group]
            out.setdefault(key, ([], []))
            out[key][0].append(row[x])
            out[key][1].append(row["median"])
        return out

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``BENCH_*.json`` sweep payload)."""
        return {"name": self.name, "rows": self.rows}

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to *path* as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _sweep_point(
    make_task: Callable[[dict], Callable[[], object]],
    params: dict,
    repeats: int,
    budget: float | None = None,
) -> dict:
    """One grid point: build the task and time it (picklable pool worker)."""
    return time_callable(make_task(params), repeats=repeats, budget=budget)


def run_sweep(
    name: str,
    grid: Iterable[dict],
    make_task: Callable[[dict], Callable[[], object]],
    *,
    repeats: int = 3,
    verbose: bool = False,
    workers: int = 1,
    budget: float | None = None,
) -> SweepResult:
    """Time ``make_task(params)()`` for every parameter point of *grid*.

    ``budget`` is a per-grid-point repeat budget in seconds (see
    :func:`time_callable`): grid points whose task is slower than the
    budget run fewer repeats and are flagged ``truncated`` in their row.

    With ``workers > 1`` the grid points are evaluated concurrently in a
    process pool — each point's task is still built and timed inside a
    single worker process, so per-point medians remain sequential
    measurements.  *make_task* must then be picklable (a module-level
    function, ``functools.partial`` of one, or an instance like
    :class:`~repro.experiments.figures.FigureSweepTask`); unpicklable
    callables fall back to a serial sweep with a warning.  Expect extra
    timing noise when workers contend for cores — the parallel path is
    for coarse benchmark grids, not precision measurements.
    """
    result = SweepResult(name)
    grid_list = [dict(params) for params in grid]
    workers = max(1, int(workers))
    if workers > 1:
        try:
            pickle.dumps(make_task)
        except Exception:
            warnings.warn(
                "run_sweep(workers=N) requires a picklable make_task; "
                "falling back to a serial sweep",
                UserWarning,
                stacklevel=2,
            )
            workers = 1

    def record(params: dict, timing: dict) -> None:
        result.add(params, timing)
        if verbose:
            rendered = ", ".join(f"{k}={v}" for k, v in params.items())
            print(f"[{name}] {rendered}: {timing['median'] * 1000:.1f} ms")

    if workers > 1 and len(grid_list) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(grid_list))) as pool:
            futures = [
                pool.submit(_sweep_point, make_task, params, repeats, budget)
                for params in grid_list
            ]
            for params, future in zip(grid_list, futures):
                record(params, future.result())
    else:
        for params in grid_list:
            record(params, _sweep_point(make_task, params, repeats, budget))
    return result
