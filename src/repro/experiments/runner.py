"""Timing sweeps: the minimal measurement core behind the benchmarks.

pytest-benchmark handles the statistics in ``benchmarks/``; this module
serves the examples and the standalone harness (``python -m repro``),
where a figure is regenerated as a table of medians over a parameter
grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np


def time_callable(fn: Callable[[], object], *, repeats: int = 3) -> dict:
    """Median/min/max wall-clock seconds of ``fn()`` over *repeats* runs."""
    samples = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "median": float(np.median(samples)),
        "min": float(min(samples)),
        "max": float(max(samples)),
        "repeats": len(samples),
    }


@dataclass
class SweepResult:
    """Rows of (parameters, timing) pairs collected by :func:`run_sweep`."""

    name: str
    rows: list[dict] = field(default_factory=list)

    def add(self, params: dict, timing: dict) -> None:
        self.rows.append({**params, **timing})

    def series(self, x: str, group: str) -> dict:
        """Group rows into ``{group_value: (xs, medians)}`` — a figure's lines."""
        out: dict = {}
        for row in self.rows:
            key = row[group]
            out.setdefault(key, ([], []))
            out[key][0].append(row[x])
            out[key][1].append(row["median"])
        return out


def run_sweep(
    name: str,
    grid: Iterable[dict],
    make_task: Callable[[dict], Callable[[], object]],
    *,
    repeats: int = 3,
    verbose: bool = False,
) -> SweepResult:
    """Time ``make_task(params)()`` for every parameter point of *grid*."""
    result = SweepResult(name)
    for params in grid:
        task = make_task(params)
        timing = time_callable(task, repeats=repeats)
        result.add(params, timing)
        if verbose:
            rendered = ", ".join(f"{k}={v}" for k, v in params.items())
            print(f"[{name}] {rendered}: {timing['median'] * 1000:.1f} ms")
    return result
