"""Table rendering: the paper's Table 1 and sweep-result tables."""

from __future__ import annotations

from ..complexity import render_table
from .runner import SweepResult


def render_table1() -> str:
    """The complexity-results summary (paper Table 1)."""
    return render_table()


def render_results_table(result: SweepResult, *, x: str = "n", group: str = "N") -> str:
    """A figure's data as fixed-width text: one line per series.

    Mirrors how the paper's figures read: the swept dimension across the
    columns, one row per training-set size, medians in milliseconds.
    """
    series = result.series(x, group)
    xs = sorted({row[x] for row in result.rows})
    header = [f"{group}\\{x}"] + [str(v) for v in xs]
    lines = [result.name, "  ".join(f"{h:>10}" for h in header)]
    for key in sorted(series):
        xs_k, medians = series[key]
        lookup = dict(zip(xs_k, medians))
        cells = [f"{key:>10}"]
        for v in xs:
            if v in lookup:
                cells.append(f"{lookup[v] * 1000:>8.1f}ms")
            else:
                cells.append(" " * 10)
        lines.append("  ".join(cells))
    return "\n".join(lines)
