"""Shared input-validation helpers.

These helpers normalize user-facing inputs into canonical numpy forms and
raise :class:`~repro.exceptions.ValidationError` subclasses with precise
messages.  Every public entry point of the library funnels its inputs
through this module so the rest of the code can assume clean data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import DimensionMismatchError, ValidationError


def as_vector(x, *, name: str = "x") -> np.ndarray:
    """Coerce *x* into a 1-D float64 array, rejecting NaN/inf entries."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D vector, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def as_matrix(points, *, name: str = "points", dimension: int | None = None) -> np.ndarray:
    """Coerce *points* into a 2-D float64 array of shape (m, n).

    An empty collection yields a ``(0, dimension)`` array when *dimension*
    is given, else a ``(0, 0)`` array.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.size == 0:
        n = dimension if dimension is not None else 0
        return np.empty((0, n), dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a 2-D array of row vectors, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    if dimension is not None and arr.shape[1] != dimension:
        raise DimensionMismatchError(
            f"{name} has dimension {arr.shape[1]}, expected {dimension}"
        )
    return arr


def as_boolean_matrix(points, *, name: str = "points", dimension: int | None = None) -> np.ndarray:
    """Coerce *points* into a 2-D 0/1 float matrix, rejecting other values."""
    arr = as_matrix(points, name=name, dimension=dimension)
    if arr.size and not np.all((arr == 0.0) | (arr == 1.0)):
        raise ValidationError(f"{name} must contain only 0/1 entries for the discrete setting")
    return arr


def as_boolean_vector(x, *, name: str = "x") -> np.ndarray:
    """Coerce *x* into a 1-D 0/1 float vector."""
    arr = as_vector(x, name=name)
    if arr.size and not np.all((arr == 0.0) | (arr == 1.0)):
        raise ValidationError(f"{name} must contain only 0/1 entries for the discrete setting")
    return arr


def as_index_set(X: Iterable[int], *, dimension: int, name: str = "X") -> frozenset[int]:
    """Validate a set of 0-based component indices against *dimension*."""
    try:
        indices = frozenset(int(i) for i in X)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be an iterable of integers") from exc
    for i in indices:
        if not 0 <= i < dimension:
            raise ValidationError(
                f"{name} contains index {i}, outside the valid range [0, {dimension})"
            )
    return indices


def check_odd_k(k: int, *, name: str = "k") -> int:
    """Validate that *k* is a positive odd integer (the paper's assumption)."""
    if not isinstance(k, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(k).__name__}")
    k = int(k)
    if k < 1 or k % 2 == 0:
        raise ValidationError(
            f"{name} must be a positive odd integer (ties are only benign for odd k); got {k}"
        )
    return k


def check_positive(value: float, *, name: str) -> float:
    """Validate a strictly positive finite scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


def check_multiplicities(mult: Sequence[int] | None, m: int, *, name: str) -> np.ndarray:
    """Validate a multiplicity vector for *m* points (default: all ones)."""
    if mult is None:
        return np.ones(m, dtype=np.int64)
    arr = np.asarray(mult, dtype=np.int64)
    if arr.shape != (m,):
        raise ValidationError(f"{name} must have shape ({m},), got {arr.shape}")
    if np.any(arr < 1):
        raise ValidationError(f"{name} entries must be >= 1")
    return arr
