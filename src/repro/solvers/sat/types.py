"""Core SAT types: DIMACS-style literals and cardinality constraints.

A literal is a non-zero integer: ``v`` for the positive literal of
variable ``v >= 1`` and ``-v`` for its negation — the convention of the
DIMACS CNF format and of every mainstream solver API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...exceptions import ValidationError


def neg(lit: int) -> int:
    """The negation of a literal."""
    return -lit


def var_of(lit: int) -> int:
    """The variable index of a literal."""
    return lit if lit > 0 else -lit


def check_literal(lit: int, num_vars: int) -> int:
    """Validate a DIMACS-style literal against *num_vars*; returns it."""
    lit = int(lit)
    if lit == 0 or var_of(lit) > num_vars:
        raise ValidationError(
            f"literal {lit} out of range for a formula with {num_vars} variables"
        )
    return lit


@dataclass
class CardinalityConstraint:
    """``guard -> (sum of true literals in lits) >= bound``.

    With ``guard is None`` the constraint is unconditional.  "At most"
    constraints are expressed by negating the literals:
    ``sum(lits) <= k  ==  sum(neg lits) >= len(lits) - k``.

    The counter fields are runtime state owned by the solver.
    """

    lits: tuple[int, ...]
    bound: int
    guard: int | None = None
    # -- solver state (counter-based propagation) --
    n_false: int = field(default=0, compare=False)

    def __post_init__(self):
        self.lits = tuple(int(l) for l in self.lits)
        if len(set(var_of(l) for l in self.lits)) != len(self.lits):
            raise ValidationError(
                "cardinality constraint literals must be over distinct variables"
            )
        if self.bound < 0:
            raise ValidationError(f"cardinality bound must be >= 0, got {self.bound}")
        if self.bound > len(self.lits):
            raise ValidationError(
                f"cardinality bound {self.bound} exceeds {len(self.lits)} literals "
                "(trivially unsatisfiable; encode that as a unit clause on the guard)"
            )

    @property
    def slack_capacity(self) -> int:
        """How many of the literals may go false before the bound is tight."""
        return len(self.lits) - self.bound

    def is_trivial(self) -> bool:
        """Whether the constraint binds nothing (bound 0)."""
        return self.bound == 0
