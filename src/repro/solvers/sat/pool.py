"""A warm pool of incremental SAT solvers shared across related queries.

PR 3 measured ~5x from *within-sweep* incrementality: encode once,
sweep the cardinality bound through guard assumptions.  This module
extends the same idea *across queries*: the parts of an encoding that
depend only on the dataset (and the queried label) are built once into
a live :class:`~repro.solvers.sat.SATSolver`, and every subsequent
query against the same dataset version reuses that solver — learnt
clauses, VSIDS activities and phase saving intact — adding only its
small query-specific slice of clauses under a fresh activation guard.

Entries are keyed by a tuple whose first element is a dataset
fingerprint — the serve layer passes the PR-5 versioned form
(``<fp>@vN``), so a mutation invalidates pooled solvers exactly like
result-cache entries: :meth:`SATSolverPool.invalidate` accepts either
the exact versioned fingerprint or a bare base fingerprint (which
matches every ``@vN`` of that lineage).

Correctness never depends on pooling: pooled solvers answer
*feasibility* questions (optimal bounds, lex-min witness probes), and
SAT/UNSAT verdicts are independent of learnt-clause or heuristic
state.  The portfolio therefore returns bit-identical answers warm or
cold — the pool only changes how fast they arrive.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PoolEntry", "SATSolverPool", "lease_or_build"]

PoolKey = tuple
"""Pool key: ``(fingerprint, kind, k, label)`` by convention; the first
element must be the dataset fingerprint string used for invalidation."""


@dataclass
class PoolEntry:
    """One pooled solver plus its encoding-specific shared state.

    ``state`` is owned by the encoding that built the entry (e.g. keep
    variables and twin caches for Minimum-SR, flip variables and bound
    guards for counterfactuals); the pool itself only tracks the lease
    lock and the per-entry query count used for recycling.
    """

    key: PoolKey
    solver: Any
    state: dict[str, Any]
    queries: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class SATSolverPool:
    """LRU pool of warm incremental SAT solvers keyed by dataset version.

    Thread-safe: each entry carries its own lock, held for the duration
    of a :meth:`lease`; concurrent leases of *different* keys proceed in
    parallel.  ``max_entries`` bounds how many live solvers exist at
    once (least-recently-leased evicted first); ``max_queries`` recycles
    an entry after that many leases so accumulated learnt clauses and
    query guards cannot grow without bound.
    """

    def __init__(self, *, max_entries: int = 32, max_queries: int = 512) -> None:
        self.max_entries = int(max_entries)
        self.max_queries = int(max_queries)
        self._entries: OrderedDict[PoolKey, PoolEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "recycled": 0,
            "evictions": 0,
            "invalidated": 0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @contextmanager
    def lease(
        self, key: PoolKey, build: Callable[[], tuple[Any, dict[str, Any]]]
    ) -> Iterator[PoolEntry]:
        """Borrow the warm solver for *key*, building it on a miss.

        ``build()`` must return ``(solver, state)``; it runs under the
        entry lock, so concurrent leases of the same key build exactly
        once.  The entry stays locked until the ``with`` block exits —
        callers may freely add query clauses and run solves inside.
        """
        if self.max_entries <= 0:
            solver, state = build()
            self._count("misses")
            yield PoolEntry(key=key, solver=solver, state=state, queries=1)
            return
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.queries >= self.max_queries:
                # Recycled: the accumulated guards/learnts are dropped
                # and the next lease rebuilds from the dataset encoding.
                del self._entries[key]
                self._counters["recycled"] += 1
                entry = None
            if entry is None:
                self._counters["misses"] += 1
                entry = PoolEntry(key=key, solver=None, state={})
                self._entries[key] = entry
                self._evict_over_capacity()
            else:
                self._counters["hits"] += 1
            self._entries.move_to_end(key)
        with entry.lock:
            if entry.solver is None:
                entry.solver, entry.state = build()
            entry.queries += 1
            yield entry

    def _evict_over_capacity(self) -> None:
        # Caller holds self._lock.  Entries whose lease lock is held are
        # skipped: evicting them would pull a live solver out from under
        # a solve in progress.
        while len(self._entries) > self.max_entries:
            for key, entry in self._entries.items():
                if not entry.lock.locked():
                    del self._entries[key]
                    self._counters["evictions"] += 1
                    break
            else:  # every entry is mid-lease; let the pool run hot
                break

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry for *fingerprint*; returns how many.

        Accepts the exact (possibly versioned ``<fp>@vN``) fingerprint
        or a bare base fingerprint, which matches all of its versions —
        the same two shapes the serve result cache invalidates by.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key[0] == fingerprint or str(key[0]).startswith(fingerprint + "@")
            ]
            for key in doomed:
                del self._entries[key]
            self._counters["invalidated"] += len(doomed)
        return len(doomed)

    def keys(self) -> list[PoolKey]:
        """Current entry keys, least recently leased first."""
        with self._lock:
            return list(self._entries)

    def fingerprints(self) -> list[str]:
        """Dataset fingerprints with at least one pooled solver."""
        with self._lock:
            return sorted({str(key[0]) for key in self._entries})

    def clear(self) -> None:
        """Drop every entry without touching the counters."""
        with self._lock:
            self._entries.clear()

    def _count(self, name: str) -> None:
        with self._lock:
            self._counters[name] += 1

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus the current entry count."""
        with self._lock:
            out = dict(self._counters)
            out["entries"] = len(self._entries)
            out["leases"] = out["hits"] + out["misses"]
            return out


@contextmanager
def lease_or_build(
    pool: SATSolverPool | None,
    key: PoolKey,
    build: Callable[[], tuple[Any, dict[str, Any]]],
) -> Iterator[PoolEntry]:
    """Lease *key* from *pool*, or build a throwaway entry when pool is None.

    The encodings call this so the warm-pool and the cold path share
    one code path: with no pool the entry lives for a single ``with``
    block and is discarded afterwards.
    """
    if pool is None:
        solver, state = build()
        yield PoolEntry(key=key, solver=solver, state=state, queries=1)
        return
    with pool.lease(key, build) as entry:
        yield entry
