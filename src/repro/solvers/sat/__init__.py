"""SAT solving with native cardinality constraints.

Section 9.2 of the paper encodes closest-counterfactual search as a CNF
formula with *(guarded) cardinality constraints* and solves it with a
solver supporting them natively (cardinality-cadical, "klauses").  This
package is an offline, from-scratch equivalent:

* :mod:`types` / :mod:`cnf` — literals, clauses, cardinality constraints,
  and a formula builder with a KNF-style text dump;
* :mod:`solver` — a CDCL solver (two-watched-literal propagation, 1-UIP
  clause learning, VSIDS decision heuristic with phase saving, Luby
  restarts) extended with counter-based propagation of cardinality
  constraints (:mod:`cardinality`);
* :mod:`search` — linear/binary-search drivers that minimize a bound by
  repeated SAT calls, as the paper does for the Hamming distance;
* :mod:`pool` — a warm pool of incremental solvers whose learnt clauses
  and heuristic state persist across related queries, keyed by dataset
  version so mutations invalidate them like result caches.
"""

from __future__ import annotations

from .cnf import CNFBuilder
from .pool import PoolEntry, SATSolverPool
from .solver import SATSolver, Model
from .types import CardinalityConstraint, neg
from .search import minimize_bound, minimize_bound_assumptions

__all__ = [
    "CNFBuilder",
    "SATSolver",
    "Model",
    "CardinalityConstraint",
    "neg",
    "minimize_bound",
    "minimize_bound_assumptions",
    "PoolEntry",
    "SATSolverPool",
]
