"""Formula builder: named variables, clauses, cardinality constraints.

:class:`CNFBuilder` collects a formula once and can instantiate fresh
:class:`~repro.solvers.sat.solver.SATSolver` instances from it (the
bound-minimization searches solve a sequence of closely related
formulas).  It can also serialize to a KNF-style text format — the
"klauses" extension of DIMACS CNF used by cardinality-cadical, where a
cardinality constraint line reads ``k <bound> <lits...> 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...exceptions import ValidationError
from .solver import SATSolver
from .types import CardinalityConstraint


@dataclass
class CNFBuilder:
    """Accumulates variables, clauses and cardinality constraints."""

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)
    cards: list[CardinalityConstraint] = field(default_factory=list)
    _names: dict[str, int] = field(default_factory=dict)

    # -- variables --------------------------------------------------------

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable (optionally named); returns its index."""
        self.num_vars += 1
        if name is not None:
            if name in self._names:
                raise ValidationError(f"variable name {name!r} already used")
            self._names[name] = self.num_vars
        return self.num_vars

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate *count* fresh variables, named ``prefix[i]`` when given."""
        return [
            self.new_var(None if prefix is None else f"{prefix}[{i}]")
            for i in range(count)
        ]

    def var(self, name: str) -> int:
        """The variable index previously registered under *name*."""
        return self._names[name]

    # -- constraints --------------------------------------------------------

    def add_clause(self, lits) -> None:
        """Add a disjunction of literals (validated against declared vars)."""
        lits = tuple(int(l) for l in lits)
        if any(l == 0 or abs(l) > self.num_vars for l in lits):
            raise ValidationError(f"clause {lits} uses undeclared variables")
        self.clauses.append(lits)

    def add_at_least(self, lits, bound: int, guard: int | None = None) -> None:
        """``guard -> sum(lits) >= bound``."""
        lits = list(lits)
        bound = int(bound)
        if bound <= 0:
            return
        if bound == 1 and guard is None:
            self.add_clause(lits)
            return
        if bound == 1:
            self.add_clause([-guard] + lits)
            return
        self.cards.append(CardinalityConstraint(tuple(lits), bound, guard))

    def add_at_most(self, lits, bound: int, guard: int | None = None) -> None:
        """``guard -> sum(lits) <= bound``."""
        lits = list(lits)
        self.add_at_least([-l for l in lits], len(lits) - int(bound), guard)

    def add_exactly(self, lits, bound: int) -> None:
        """Constrain exactly *bound* of *lits* to be true."""
        self.add_at_least(lits, bound)
        self.add_at_most(lits, bound)

    # -- instantiation ----------------------------------------------------

    def build_solver(self, *, conflict_limit: int | None = None) -> SATSolver:
        """Materialize a :class:`SATSolver` loaded with the formula so far."""
        solver = SATSolver(self.num_vars, conflict_limit=conflict_limit)
        for clause in self.clauses:
            solver.add_clause(clause)
        for card in self.cards:
            # Over-long bounds were rejected at construction; re-add raw.
            solver.add_cardinality(card.lits, card.bound, card.guard)
        return solver

    def solve(self, *, conflict_limit: int | None = None):
        """Convenience: build a solver and run it once."""
        return self.build_solver(conflict_limit=conflict_limit).solve()

    # -- serialization -------------------------------------------------------

    def to_knf(self) -> str:
        """KNF text: header + clause lines + ``k <bound> <lits> 0`` lines.

        Guarded constraints are written with the guard negation prefixed,
        matching the guarded-klause convention.
        """
        lines = [f"p knf {self.num_vars} {len(self.clauses) + len(self.cards)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        for card in self.cards:
            body = " ".join(str(l) for l in card.lits)
            if card.guard is None:
                lines.append(f"k {card.bound} {body} 0")
            else:
                lines.append(f"k {card.bound} g {-card.guard} {body} 0")
        return "\n".join(lines) + "\n"

    @property
    def n_constraints(self) -> int:
        """Number of clauses plus cardinality constraints added."""
        return len(self.clauses) + len(self.cards)
