"""KNF text-format parsing and model enumeration utilities.

``CNFBuilder.to_knf`` serializes a formula in the klauses extension of
DIMACS CNF; :func:`from_knf` parses it back, giving a round-trippable
interchange format (useful for exporting instances to an external
cardinality-aware solver, the paper's cardinality-cadical being the
reference tool).

:func:`enumerate_models` lists satisfying assignments by iterative
blocking — the standard ALL-SAT loop — over a restricted projection set
of variables.  The test suite uses it to compare whole solution *sets*
against brute-force enumeration, a stronger check than single-model
agreement.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ...exceptions import ValidationError
from .cnf import CNFBuilder


def from_knf(text: str) -> CNFBuilder:
    """Parse the output of :meth:`CNFBuilder.to_knf`.

    Accepted lines: a ``p knf <vars> <constraints>`` header, clause
    lines (literals terminated by 0), cardinality lines
    ``k <bound> [g <neg-guard>] <lits...> 0``, and ``c ...`` comments.
    """
    builder: CNFBuilder | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "knf":
                raise ValidationError(f"line {lineno}: bad header {line!r}")
            builder = CNFBuilder()
            builder.new_vars(int(parts[2]))
            continue
        if builder is None:
            raise ValidationError(f"line {lineno}: constraint before header")
        tokens = line.split()
        if tokens[-1] != "0":
            raise ValidationError(f"line {lineno}: missing terminating 0")
        tokens = tokens[:-1]
        if tokens and tokens[0] == "k":
            bound = int(tokens[1])
            guard = None
            rest = tokens[2:]
            if rest and rest[0] == "g":
                guard = -int(rest[1])  # serialized as the negated guard
                rest = rest[2:]
            builder.add_at_least([int(t) for t in rest], bound, guard=guard)
        else:
            builder.add_clause([int(t) for t in tokens])
    if builder is None:
        raise ValidationError("no 'p knf' header found")
    return builder


def enumerate_models(
    builder: CNFBuilder,
    *,
    over: Sequence[int] | None = None,
    limit: int = 10_000,
) -> Iterator[dict[int, bool]]:
    """Yield satisfying assignments, distinct on the *over* variables.

    Each found model is blocked by a clause negating its projection onto
    *over* (default: all variables), and the formula is re-solved until
    UNSAT.  ``limit`` bounds the number of models (a safety valve — the
    count can be exponential).
    """
    over = list(over) if over is not None else list(range(1, builder.num_vars + 1))
    blocked: list[list[int]] = []
    produced = 0
    while produced < limit:
        probe = builder.build_solver()
        for clause in blocked:
            probe.add_clause(clause)
        model = probe.solve()
        if model is None:
            return
        yield model
        produced += 1
        blocked.append([(-v if model[v] else v) for v in over])
    raise ValidationError(f"model enumeration exceeded the limit of {limit}")
