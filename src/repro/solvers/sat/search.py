"""Bound-minimization drivers over repeated SAT calls.

The paper's closest-counterfactual pipeline adds a cardinality
constraint ``d_H(x, y) <= t`` and searches the smallest feasible ``t``
"by doing a binary search over the parameter (or a linear search if the
answer is expected to be small)" (Section 9.2).  Both strategies are
implemented here over an abstract feasibility oracle so they can be
ablation-benchmarked against each other.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ...exceptions import ValidationError

T = TypeVar("T")


def minimize_bound(
    feasible: Callable[[int], T | None],
    lo: int,
    hi: int,
    *,
    strategy: str = "binary",
) -> tuple[int, T] | None:
    """Smallest ``t`` in ``[lo, hi]`` with ``feasible(t)`` not None.

    *feasible* must be monotone (feasible at t implies feasible at every
    t' >= t), which holds for distance-bounded explanation queries.
    Returns ``(t, witness)`` or None when even ``hi`` is infeasible.

    ``strategy`` is ``"binary"`` (O(log range) oracle calls) or
    ``"linear"`` (ascending scan from *lo* — fewer calls when the
    optimum is tiny, the common case for counterfactuals).
    """
    lo, hi = int(lo), int(hi)
    if lo > hi:
        raise ValidationError(f"empty search range [{lo}, {hi}]")
    if strategy == "linear":
        for t in range(lo, hi + 1):
            witness = feasible(t)
            if witness is not None:
                return t, witness
        return None
    if strategy != "binary":
        raise ValidationError(f"strategy must be 'binary' or 'linear', got {strategy!r}")
    best: tuple[int, T] | None = None
    witness = feasible(hi)
    if witness is None:
        return None
    best = (hi, witness)
    low, high = lo, hi - 1
    while low <= high:
        mid = (low + high) // 2
        witness = feasible(mid)
        if witness is not None:
            best = (mid, witness)
            high = mid - 1
        else:
            low = mid + 1
    return best
