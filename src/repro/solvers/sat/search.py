"""Bound-minimization drivers over repeated SAT calls.

The paper's closest-counterfactual pipeline adds a cardinality
constraint ``d_H(x, y) <= t`` and searches the smallest feasible ``t``
"by doing a binary search over the parameter (or a linear search if the
answer is expected to be small)" (Section 9.2).  Both strategies are
implemented here over an abstract feasibility oracle so they can be
ablation-benchmarked against each other.

:func:`minimize_bound_assumptions` is the incremental variant: instead
of rebuilding encoding and solver per bound, one
:class:`~repro.solvers.sat.solver.SATSolver` carries the whole sweep —
each bound is materialized once as a *guarded* cardinality constraint
and switched on by passing its guard literal as an assumption, so
learnt clauses and heuristic state flow between bounds.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..._budget import remaining_budget, start_deadline
from ...exceptions import ValidationError

T = TypeVar("T")


def minimize_bound(
    feasible: Callable[[int], T | None],
    lo: int,
    hi: int,
    *,
    strategy: str = "binary",
) -> tuple[int, T] | None:
    """Smallest ``t`` in ``[lo, hi]`` with ``feasible(t)`` not None.

    *feasible* must be monotone (feasible at t implies feasible at every
    t' >= t), which holds for distance-bounded explanation queries.
    Returns ``(t, witness)`` or None when even ``hi`` is infeasible.

    ``strategy`` is ``"binary"`` (O(log range) oracle calls) or
    ``"linear"`` (ascending scan from *lo* — fewer calls when the
    optimum is tiny, the common case for counterfactuals).
    """
    lo, hi = int(lo), int(hi)
    if lo > hi:
        raise ValidationError(f"empty search range [{lo}, {hi}]")
    if strategy == "linear":
        for t in range(lo, hi + 1):
            witness = feasible(t)
            if witness is not None:
                return t, witness
        return None
    if strategy != "binary":
        raise ValidationError(f"strategy must be 'binary' or 'linear', got {strategy!r}")
    best: tuple[int, T] | None = None
    witness = feasible(hi)
    if witness is None:
        return None
    best = (hi, witness)
    low, high = lo, hi - 1
    while low <= high:
        mid = (low + high) // 2
        witness = feasible(mid)
        if witness is not None:
            best = (mid, witness)
            high = mid - 1
        else:
            low = mid + 1
    return best


def minimize_bound_assumptions(
    solver,
    encode_bound: Callable[[int], int],
    decode: Callable[[dict], T],
    lo: int,
    hi: int,
    *,
    strategy: str = "binary",
    time_limit: float | None = None,
    assumptions: tuple[int, ...] = (),
) -> tuple[int, T] | None:
    """Incremental :func:`minimize_bound` over one shared SAT solver.

    ``encode_bound(t)`` must add the constraint enforcing bound *t* to
    *solver* — guarded by a fresh literal — and return that guard;
    each feasibility probe then solves under the single assumption
    ``[guard]``, so the formula is encoded once and every bound reuses
    the clauses learnt at the others.  ``decode(model)`` maps a
    satisfying assignment to the returned witness.  ``time_limit``
    (seconds) caps the *whole* sweep, raising
    :class:`~repro.exceptions.ResourceLimitError` on expiry.

    ``assumptions`` are extra literals asserted on every probe — the
    warm solver pool passes the per-query activation guard here, so one
    pooled solver hosts many queries' encodings side by side.
    """
    guards: dict[int, int] = {}
    deadline = start_deadline(time_limit)
    base = list(assumptions)

    def feasible(t: int):
        guard = guards.get(t)
        if guard is None:
            guards[t] = guard = encode_bound(t)
        remaining = remaining_budget(deadline, "incremental bound search")
        model = solver.solve([*base, guard], time_limit=remaining)
        return None if model is None else decode(model)

    return minimize_bound(feasible, lo, hi, strategy=strategy)
