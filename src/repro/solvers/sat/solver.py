"""A CDCL SAT solver with native cardinality-constraint propagation.

The clause engine is a classic MiniSat-style CDCL loop:

* two-watched-literal unit propagation;
* first-UIP conflict analysis producing an asserting learnt clause;
* VSIDS variable activities (heap with lazy rescoring) + phase saving;
* Luby-sequence restarts.

On top of it, cardinality constraints ``guard -> sum(lits) >= bound``
propagate with the *counter* method (the same device cardinality-cadical
uses for its "klauses"): the solver tracks how many literals of each
constraint are false; once that count reaches ``len(lits) - bound`` all
remaining literals are implied, and one more falsification is a
conflict.  Guards let a constraint be switched off by a single literal,
which is exactly the shape of the paper's Section 9.2 encoding.

Every propagation carries an explicit reason clause, so learnt clauses
derived across cardinality constraints are sound by construction.

The solver is *incremental* in the MiniSat sense: :meth:`solve` takes
an optional list of assumption literals that are decided first (at
decision levels ``1..len(assumptions)``) and undone afterwards, so
learnt clauses and VSIDS/phase state carry over between calls; new
variables (:meth:`new_var`), clauses and cardinality constraints may be
added between calls.  The bound-minimization searches in :mod:`.search`
exploit this by encoding a formula once and sweeping a cardinality
bound through guard literals passed as assumptions, instead of
rebuilding solver and encoding per bound.
"""

from __future__ import annotations

import heapq
import time

from ..._budget import check_cancelled
from ...exceptions import ResourceLimitError, ValidationError
from .types import CardinalityConstraint, check_literal, var_of

_TRUE = 1
_FALSE = -1
_UNASSIGNED = 0

Model = dict[int, bool]


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    # MiniSat's closed-form walk: find the subsequence containing i, then
    # recurse into it.
    size, seq = 1, 0
    while size < i:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i - 1:
        size = (size - 1) // 2
        seq -= 1
        i = ((i - 1) % size) + 1
    return 1 << seq


class SATSolver:
    """Incremental CDCL solver over an extensible set of variables.

    Clauses and cardinality constraints may be added at any point
    outside a :meth:`solve` call (the solver backtracks to the root
    level first); :meth:`solve` accepts assumption literals, so a
    sequence of closely related queries reuses learnt clauses and
    heuristic state instead of starting cold.
    """

    def __init__(self, num_vars: int, *, conflict_limit: int | None = None):
        if num_vars < 0:
            raise ValidationError("num_vars must be non-negative")
        self.num_vars = int(num_vars)
        self.conflict_limit = conflict_limit
        n = self.num_vars + 1
        self._assign = [_UNASSIGNED] * n
        self._level = [0] * n
        self._reason: list[list[int] | None] = [None] * n
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._watches: dict[int, list[list[int]]] = {}
        self._card_occ: dict[int, list[CardinalityConstraint]] = {}
        self._guard_occ: dict[int, list[CardinalityConstraint]] = {}
        self._cards: list[CardinalityConstraint] = []
        self._activity = [0.0] * n
        self._act_inc = 1.0
        self._phase = [False] * n
        self._order: list[tuple[float, int]] = []  # lazy max-heap (-activity, var)
        self._unsat = False
        self._n_clauses = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        for v in range(1, n):
            heapq.heappush(self._order, (0.0, v))

    # -- values -----------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign[var_of(lit)]
        return v if lit > 0 else -v

    # -- construction ------------------------------------------------------

    def new_var(self) -> int:
        """Declare one fresh variable and return its index.

        Usable between :meth:`solve` calls — the incremental searches
        allocate a guard variable per cardinality bound this way.
        """
        self._cancel_until(0)
        self.num_vars += 1
        v = self.num_vars
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._order, (0.0, v))
        return v

    def new_vars(self, count: int) -> list[int]:
        """Declare *count* fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits) -> None:
        """Add a disjunction of literals (undoes any previous search first)."""
        self._cancel_until(0)
        seen: dict[int, int] = {}
        clause: list[int] = []
        for lit in lits:
            lit = check_literal(lit, self.num_vars)
            v = var_of(lit)
            if v in seen:
                if seen[v] != lit:
                    return  # tautology: v and -v both present
                continue
            if self._value(lit) == _TRUE:
                return  # already satisfied at level 0
            if self._value(lit) == _FALSE:
                continue  # falsified at level 0: drop the literal
            seen[v] = lit
            clause.append(lit)
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._n_clauses += 1
        self._watch(clause)

    def add_cardinality(self, lits, bound: int, guard: int | None = None) -> None:
        """Add ``guard -> sum(true literals) >= bound`` (guard optional)."""
        self._cancel_until(0)
        lits = [check_literal(l, self.num_vars) for l in lits]
        if guard is not None:
            guard = check_literal(guard, self.num_vars)
        if bound > len(lits):
            # Unsatisfiable unless escaped by the guard.
            if guard is None:
                self._unsat = True
            else:
                self.add_clause([-guard])
            return
        constraint = CardinalityConstraint(tuple(lits), int(bound), guard)
        if constraint.is_trivial():
            return
        self._cards.append(constraint)
        for lit in constraint.lits:
            self._card_occ.setdefault(-lit, []).append(constraint)
            if self._value(lit) == _FALSE:
                constraint.n_false += 1
        if guard is not None:
            self._guard_occ.setdefault(guard, []).append(constraint)
        if self._card_check(constraint) is not None or (
            self._propagate() is not None
        ):
            self._unsat = True

    def add_at_most(self, lits, bound: int, guard: int | None = None) -> None:
        """``guard -> sum(true literals) <= bound`` via literal negation."""
        lits = list(lits)
        self.add_cardinality([-l for l in lits], len(lits) - int(bound), guard)

    # -- trail ----------------------------------------------------------

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._value(lit)
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        v = var_of(lit)
        self._assign[v] = _TRUE if lit > 0 else _FALSE
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        # Literal -lit just became false; constraints containing -lit are
        # registered under the key lit (= -(-lit)).
        for c in self._card_occ.get(lit, ()):
            c.n_false += 1
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            v = var_of(lit)
            self._phase[v] = lit > 0
            self._assign[v] = _UNASSIGNED
            self._reason[v] = None
            for c in self._card_occ.get(lit, ()):
                c.n_false -= 1
            heapq.heappush(self._order, (-self._activity[v], v))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation ---------------------------------------------------------

    def _watch(self, clause: list[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; return a conflict clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            conflict = self._propagate_clauses(-lit)
            if conflict is not None:
                return conflict
            for c in self._card_occ.get(lit, ()):
                conflict = self._card_check(c)
                if conflict is not None:
                    return conflict
            for c in self._guard_occ.get(lit, ()):
                conflict = self._card_check(c)
                if conflict is not None:
                    return conflict
        return None

    def _propagate_clauses(self, false_lit: int) -> list[int] | None:
        watchlist = self._watches.get(false_lit)
        if not watchlist:
            return None
        i = 0
        while i < len(watchlist):
            clause = watchlist[i]
            # Normalize: the false literal sits at position 1.
            if clause[0] == false_lit:
                clause[0], clause[1] = clause[1], clause[0]
            first = clause[0]
            if self._value(first) == _TRUE:
                i += 1
                continue
            # Look for a replacement watch.
            found = False
            for j in range(2, len(clause)):
                if self._value(clause[j]) != _FALSE:
                    clause[1], clause[j] = clause[j], clause[1]
                    self._watches.setdefault(clause[1], []).append(clause)
                    watchlist[i] = watchlist[-1]
                    watchlist.pop()
                    found = True
                    break
            if found:
                continue
            # Unit or conflicting.
            if not self._enqueue(first, clause):
                return clause
            i += 1
        return None

    def _card_check(self, c: CardinalityConstraint) -> list[int] | None:
        """Counter-based propagation; return a conflict clause or None."""
        guard_value = _TRUE if c.guard is None else self._value(c.guard)
        if guard_value == _FALSE:
            return None
        slack = c.slack_capacity - c.n_false
        if slack < 0:
            falsified = [l for l in c.lits if self._value(l) == _FALSE]
            if guard_value == _TRUE:
                clause = falsified if c.guard is None else falsified + [-c.guard]
                return clause
            # Guard unassigned: the constraint forces the guard off.
            reason = [-c.guard] + falsified
            if not self._enqueue(-c.guard, reason):  # pragma: no cover
                # (unreachable: the guard was checked unassigned)
                return reason
            return None
        if slack == 0 and guard_value == _TRUE:
            falsified = None
            for lit in c.lits:
                if self._value(lit) == _UNASSIGNED:
                    if falsified is None:
                        falsified = [l for l in c.lits if self._value(l) == _FALSE]
                    reason = [lit] + falsified
                    if c.guard is not None:
                        reason.append(-c.guard)
                    if not self._enqueue(lit, reason):  # pragma: no cover
                        return reason
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, v: int) -> None:
        self._activity[v] += self._act_inc
        if self._activity[v] > 1e100:
            for u in range(1, self.num_vars + 1):
                self._activity[u] *= 1e-100
            self._act_inc *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learnt clause, backtrack level)."""
        current = len(self._trail_lim)
        learnt: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: int | None = None
        reason = conflict
        idx = len(self._trail) - 1
        while True:
            start = 0 if p is None else 1  # skip the implied literal itself
            for q in reason[start:]:
                v = var_of(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self._level[v] == current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[var_of(self._trail[idx])]:
                idx -= 1
            p = self._trail[idx]
            idx -= 1
            seen[var_of(p)] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var_of(p)]
            assert reason is not None and reason[0] == p
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        back = max(self._level[var_of(q)] for q in learnt[1:])
        # Put a literal of the backtrack level in watch position 1.
        for j in range(1, len(learnt)):
            if self._level[var_of(learnt[j])] == back:
                learnt[1], learnt[j] = learnt[j], learnt[1]
                break
        return learnt, back

    # -- decisions ------------------------------------------------------------

    def _decide(self) -> int | None:
        while self._order:
            act, v = heapq.heappop(self._order)
            if self._assign[v] == _UNASSIGNED and -act == self._activity[v]:
                return v if self._phase[v] else -v
            if self._assign[v] == _UNASSIGNED:
                heapq.heappush(self._order, (-self._activity[v], v))
        for v in range(1, self.num_vars + 1):  # heap exhausted by staleness
            if self._assign[v] == _UNASSIGNED:
                return v if self._phase[v] else -v
        return None

    # -- main loop -------------------------------------------------------------

    def solve(
        self, assumptions=(), *, time_limit: float | None = None
    ) -> Model | None:
        """Return a model ``{var: bool}`` or None (UNSAT under *assumptions*).

        *assumptions* are literals decided first, one per decision
        level, and undone when the call returns — so an UNSAT answer
        means "unsatisfiable together with these assumptions", while
        the formula, learnt clauses and heuristic state stay intact for
        the next call.  ``time_limit`` (wall-clock seconds) aborts the
        search with :class:`ResourceLimitError`; the solver remains
        usable afterwards.  Both it and the constructor's
        ``conflict_limit`` are *per-call* budgets — every call gets the
        headroom a freshly built solver would have had.
        """
        self._cancel_until(0)
        if self._unsat:
            return None
        assumptions = [check_literal(l, self.num_vars) for l in assumptions]
        deadline = None if time_limit is None else time.perf_counter() + time_limit
        # conflict_limit is a per-call budget: an incremental sweep gives
        # every solve() the same headroom a fresh solver would have had.
        conflicts_at_entry = self.conflicts
        restart_base = 64
        restart_count = 1
        conflicts_until_restart = restart_base * luby(restart_count)
        local_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                local_conflicts += 1
                if (
                    self.conflict_limit is not None
                    and self.conflicts - conflicts_at_entry > self.conflict_limit
                ):
                    raise ResourceLimitError(
                        f"SAT solver exceeded {self.conflict_limit} conflicts"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise ResourceLimitError(
                        f"SAT solver exceeded its {time_limit:.3g}s time budget"
                    )
                check_cancelled("SAT solver")
                if not self._trail_lim:
                    self._unsat = True  # conflict at level 0: UNSAT forever
                    return None
                learnt, back = self._analyze(conflict)
                self._cancel_until(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):  # pragma: no cover
                        self._unsat = True
                        return None
                else:
                    self._watch(learnt)
                    self._n_clauses += 1
                    enqueued = self._enqueue(learnt[0], learnt)
                    assert enqueued
                self._act_inc /= 0.95
                continue
            if local_conflicts >= conflicts_until_restart:
                self.restarts += 1
                restart_count += 1
                conflicts_until_restart = restart_base * luby(restart_count)
                local_conflicts = 0
                self._cancel_until(0)
                continue
            if len(self._trail_lim) < len(assumptions):
                # Assumption levels come first; a falsified assumption
                # (directly or via propagation of learnt clauses) means
                # UNSAT under this assumption set only.
                lit = assumptions[len(self._trail_lim)]
                value = self._value(lit)
                if value == _TRUE:
                    self._trail_lim.append(len(self._trail))  # dummy level
                    continue
                if value == _FALSE:
                    self._cancel_until(0)
                    return None
                decision = lit
            else:
                if deadline is not None and time.perf_counter() > deadline:
                    raise ResourceLimitError(
                        f"SAT solver exceeded its {time_limit:.3g}s time budget"
                    )
                check_cancelled("SAT solver")
                decision = self._decide()
                if decision is None:
                    model = {
                        v: self._assign[v] == _TRUE
                        for v in range(1, self.num_vars + 1)
                    }
                    self._cancel_until(0)
                    return model
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)
