"""Process-level racing for the exact solver portfolio.

The sequential portfolio tries exact methods one after another; this
module runs them *concurrently* in a small pool of persistent worker
processes and returns as soon as the first exact answer lands.  Losers
are cancelled cooperatively: every worker carries a shared
``multiprocessing.Event`` that the parent sets once a winner is known,
and the workers install it into :mod:`repro._budget`, so every budget
checkpoint inside the SAT/brute pipelines doubles as a cancellation
point (the attempt unwinds through the usual
:class:`~repro.exceptions.ResourceLimitError` path).  Methods that
cannot observe the event mid-solve — scipy's MILP runs to completion —
are covered by a hard-kill backstop after a grace window, and the
killed worker is respawned lazily before the next race.

Budget accounting is per attempt *in the worker*: each method converts
its budget to a deadline when it actually starts, so a cancelled or
timed-out attempt never burns the next attempt's budget; the parent
separately enforces an overall race wall derived from the worst-case
per-worker schedule plus the grace window.

Workers are allocated per race and methods are dealt round-robin, so
the racer degrades gracefully: with at least as many free workers as
methods every method runs concurrently; with one worker the race is
sequential-in-child; with zero free workers :meth:`ProcessRacer.race`
returns ``None`` and the caller falls back to the in-process
sequential racer.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection, get_context
from typing import Any

from ..exceptions import ResourceLimitError, UnsupportedSettingError, ValidationError

__all__ = ["ProcessRacer", "RaceAttempt", "RaceOutcome", "default_racer"]

# Slack added to the parent's overall race wall on top of the summed
# per-attempt budgets: covers task pickling and scheduling latency.
_SCHEDULING_SLACK_S = 0.25


def _pick_start_method(explicit: str | None) -> str:
    """Resolve the multiprocessing start method for race workers.

    Priority: explicit argument, then the ``REPRO_RACE_START_METHOD``
    environment variable, then ``fork`` where the platform offers it
    (workers inherit the imported solver stack for free) with ``spawn``
    as the portable fallback.
    """
    if explicit:
        return explicit
    env = os.environ.get("REPRO_RACE_START_METHOD", "").strip()
    if env:
        return env
    import multiprocessing

    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _run_attempt(task: dict[str, Any], method: str, budget: float | None) -> Any:
    """Run one exact method inside a worker; returns the answer object.

    Imports are local: this executes in the worker process, and keeping
    them out of module scope avoids an import cycle between
    :mod:`repro.solvers` and the pipelines that build on it.
    """
    from ..abductive.minimum import minimum_sufficient_reason
    from ..counterfactual import closest_counterfactual

    extra = task.get("extra") or {}
    if task["kind"] == "msr":
        return minimum_sufficient_reason(
            task["dataset"],
            task["k"],
            task["metric"],
            task["x"],
            method=method,
            time_limit=budget,
            max_brute_dimension=extra.get("max_brute_dimension", 18),
        )
    return closest_counterfactual(
        task["dataset"],
        task["k"],
        task["metric"],
        task["x"],
        method=method,
        time_limit=budget,
    )


def _worker_main(conn: Any, cancel_event: Any) -> None:
    """Race worker loop: receive a task, run its methods, report each.

    One message per attempt (``("attempt", task_id, method, status,
    elapsed, detail, exc_type, answer)``) followed by a terminal
    ``("done", task_id)``.  The shared *cancel_event* is installed into
    :mod:`repro._budget` once, cleared at the start of every task, and
    consulted before each method (and during stagger sleeps) so a race
    already decided skips the remaining methods instantly.
    """
    from .._budget import install_cancel_event

    install_cancel_event(cancel_event)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        cancel_event.clear()
        task_id = task["task"]
        budget = task["budget"]
        stagger = task.get("stagger") or {}
        for method in task["methods"]:
            if cancel_event.is_set():
                conn.send(
                    ("attempt", task_id, method, "cancelled", 0.0,
                     "cancelled before start", "", None)
                )
                continue
            delay = float(stagger.get(method, 0.0))
            if delay > 0.0 and cancel_event.wait(delay):
                conn.send(
                    ("attempt", task_id, method, "cancelled", 0.0,
                     "cancelled during stagger", "", None)
                )
                continue
            started = time.perf_counter()
            try:
                answer = _run_attempt(task, method, budget)
            except ResourceLimitError as exc:
                elapsed = time.perf_counter() - started
                status = "cancelled" if cancel_event.is_set() else "timeout"
                conn.send(
                    ("attempt", task_id, method, status, elapsed,
                     str(exc), type(exc).__name__, None)
                )
            except (UnsupportedSettingError, ValidationError) as exc:
                elapsed = time.perf_counter() - started
                conn.send(
                    (
                        "attempt",
                        task_id,
                        method,
                        "unsupported",
                        elapsed,
                        str(exc),
                        type(exc).__name__,
                        None,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - reported, never fatal to the pool
                elapsed = time.perf_counter() - started
                conn.send(
                    ("attempt", task_id, method, "error", elapsed,
                     str(exc), type(exc).__name__, None)
                )
            else:
                elapsed = time.perf_counter() - started
                conn.send(("attempt", task_id, method, "exact", elapsed, "", "", answer))
        conn.send(("done", task_id))
    conn.close()


@dataclass(frozen=True)
class RaceAttempt:
    """Outcome of one raced method: status, timing, and the answer if exact."""

    method: str
    status: str  # "exact" | "timeout" | "cancelled" | "unsupported" | "error"
    elapsed_s: float
    detail: str = ""
    exc_type: str = ""
    answer: Any = None


@dataclass(frozen=True)
class RaceOutcome:
    """Result of a process race: per-method attempts plus the winner."""

    attempts: tuple[RaceAttempt, ...]
    winner: RaceAttempt | None
    wall_s: float
    workers: int
    hard_kills: int = 0


class _Worker:
    """A persistent race worker: process, parent pipe end, cancel event."""

    __slots__ = ("process", "conn", "cancel", "busy")

    def __init__(self, process: Any, conn: Any, cancel: Any) -> None:
        self.process = process
        self.conn = conn
        self.cancel = cancel
        self.busy = False

    @property
    def alive(self) -> bool:
        """Whether the worker process can still accept tasks."""
        return self.process.is_alive()


class ProcessRacer:
    """A small persistent pool of processes that race exact solvers.

    Workers are spawned eagerly at construction (so forking happens
    before the caller starts any threads) and respawned lazily after a
    hard kill.  The racer is thread-safe: concurrent races from
    different threads are allocated disjoint workers, and a race that
    finds no free worker returns ``None`` so the caller can fall back
    to sequential racing instead of blocking.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
        grace_s: float = 1.0,
    ) -> None:
        self.max_workers = int(max_workers or max(1, min(3, os.cpu_count() or 1)))
        self.grace_s = float(grace_s)
        self._ctx = get_context(_pick_start_method(start_method))
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._task_seq = 0
        self._closed = False
        self._counters = {
            "races": 0,
            "attempts": 0,
            "cancelled": 0,
            "hard_kills": 0,
            "inline_fallbacks": 0,
            "workers_spawned": 0,
        }
        with self._lock:
            self._ensure_workers()

    # -- worker lifecycle ----------------------------------------------

    def _ensure_workers(self) -> None:
        # Caller holds self._lock.  Dead workers are reaped and the pool
        # is topped back up to max_workers; spawn failures degrade the
        # pool rather than raising (race() then falls back inline).
        self._workers = [w for w in self._workers if w.alive]
        while len(self._workers) < self.max_workers:
            try:
                cancel = self._ctx.Event()
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_worker_main, args=(child_conn, cancel), daemon=True
                )
                process.start()
                child_conn.close()
            except OSError:  # pragma: no cover - resource exhaustion path
                break
            self._workers.append(_Worker(process, parent_conn, cancel))
            self._counters["workers_spawned"] += 1

    def close(self) -> None:
        """Shut the pool down: polite exit sentinel, then terminate."""
        with self._lock:
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def stats(self) -> dict[str, int]:
        """Lifetime race counters plus current worker liveness."""
        with self._lock:
            out = dict(self._counters)
            out["workers_alive"] = sum(1 for w in self._workers if w.alive)
            out["max_workers"] = self.max_workers
            return out

    # -- racing --------------------------------------------------------

    def race(
        self,
        kind: str,
        dataset: Any,
        k: int,
        metric: str,
        x: Any,
        methods: tuple[str, ...],
        *,
        budget: float | None = None,
        stagger: dict[str, float] | None = None,
        extra: dict[str, Any] | None = None,
    ) -> RaceOutcome | None:
        """Race *methods* over the worker pool; first exact answer wins.

        Returns ``None`` when no worker is free (or the pool is closed)
        so the caller can run the sequential racer inline instead.
        ``stagger`` maps method names to artificial pre-start delays —
        the determinism harness uses it to force arbitrary winners.
        """
        stagger = dict(stagger or {})
        with self._lock:
            if self._closed:
                return None
            self._ensure_workers()
            idle = [w for w in self._workers if w.alive and not w.busy]
            share = idle[: min(len(methods), len(idle))]
            if not share:
                self._counters["inline_fallbacks"] += 1
                return None
            for worker in share:
                worker.busy = True
            self._task_seq += 1
            task_id = self._task_seq
            self._counters["races"] += 1
            self._counters["attempts"] += len(methods)
        try:
            outcome = self._drive(
                task_id, share, kind, dataset, k, metric, x, methods, budget, stagger, extra
            )
        finally:
            with self._lock:
                for worker in share:
                    worker.busy = False
        with self._lock:
            self._counters["cancelled"] += sum(
                1 for a in outcome.attempts if a.status == "cancelled"
            )
            self._counters["hard_kills"] += outcome.hard_kills
        return outcome

    def _drive(
        self,
        task_id: int,
        share: list[_Worker],
        kind: str,
        dataset: Any,
        k: int,
        metric: str,
        x: Any,
        methods: tuple[str, ...],
        budget: float | None,
        stagger: dict[str, float],
        extra: dict[str, Any] | None,
    ) -> RaceOutcome:
        # Deal methods round-robin so each worker runs a serial slice.
        plans = [list(methods[i :: len(share)]) for i in range(len(share))]
        started = time.perf_counter()
        for worker, plan in zip(share, plans):
            worker.cancel.clear()
            worker.conn.send(
                {
                    "task": task_id,
                    "kind": kind,
                    "dataset": dataset,
                    "k": k,
                    "metric": metric,
                    "x": x,
                    "methods": plan,
                    "budget": budget,
                    "stagger": stagger,
                    "extra": extra or {},
                }
            )
        # The overall race wall: worst per-worker schedule (every attempt
        # gets its own fresh budget) plus stagger and scheduling slack.
        deadline = None
        if budget is not None:
            allowance = max(
                sum(float(stagger.get(m, 0.0)) + budget for m in plan) for plan in plans
            )
            deadline = started + allowance + _SCHEDULING_SLACK_S
        pending = {w: plan for w, plan in zip(share, plans)}
        reported: dict[str, RaceAttempt] = {}
        winner: RaceAttempt | None = None
        grace_deadline: float | None = None
        hard_kills = 0
        while pending:
            now = time.perf_counter()
            limit = grace_deadline if grace_deadline is not None else deadline
            if limit is not None and now >= limit:
                if grace_deadline is None:
                    # Budget wall reached with no winner: cooperative
                    # cancel first, hard kill only after the grace window.
                    for worker in pending:
                        worker.cancel.set()
                    grace_deadline = now + self.grace_s
                    continue
                for worker, plan in list(pending.items()):
                    hard_kills += 1
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                    try:
                        worker.conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    for method in plan:
                        if method not in reported:
                            reported[method] = RaceAttempt(
                                method,
                                "cancelled",
                                0.0,
                                "hard-killed after the grace window",
                            )
                    del pending[worker]
                break
            timeout = None if limit is None else max(0.0, limit - now)
            ready = connection.wait([w.conn for w in pending], timeout=timeout)
            for conn in ready:
                worker = next(w for w in pending if w.conn is conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Worker crashed mid-attempt: report what is missing.
                    for method in pending[worker]:
                        if method not in reported:
                            reported[method] = RaceAttempt(
                                method, "error", 0.0, "race worker died"
                            )
                    del pending[worker]
                    continue
                if message[0] == "done":
                    del pending[worker]
                    continue
                _, _, method, status, elapsed, detail, exc_type, answer = message
                reported[method] = RaceAttempt(
                    method, status, float(elapsed), detail, exc_type, answer
                )
                if status == "exact" and winner is None:
                    winner = reported[method]
                    # Cancel everyone still pending — including the
                    # winner's own worker, which may have queued methods.
                    for other in pending:
                        other.cancel.set()
                    # Give the losers one grace window to report their
                    # cancellations, then hard-kill the stragglers.
                    grace_deadline = time.perf_counter() + self.grace_s
        attempts = tuple(
            reported.get(m, RaceAttempt(m, "cancelled", 0.0, "cancelled before start"))
            for m in methods
        )
        return RaceOutcome(
            attempts=attempts,
            winner=winner,
            wall_s=time.perf_counter() - started,
            workers=len(share),
            hard_kills=hard_kills,
        )


_default_racer: ProcessRacer | None = None
_default_lock = threading.Lock()


def default_racer() -> ProcessRacer:
    """The process-wide shared racer, created on first use.

    Sized ``min(3, cpu_count)`` and registered with :mod:`atexit`; the
    serve layer and ad-hoc portfolio calls share it so one pool of
    warm worker processes serves the whole process.
    """
    global _default_racer
    with _default_lock:
        if _default_racer is None or _default_racer._closed:
            _default_racer = ProcessRacer()
            atexit.register(_default_racer.close)
        return _default_racer
