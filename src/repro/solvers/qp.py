"""Convex quadratic programming: Euclidean projection onto a polyhedron.

Theorem 2 reduces ``k-Counterfactual Explanation(R, D_2)`` to instances
of

    minimize   || x - y ||_2^2
    subject to A y <= b,

a strictly convex QP solvable in polynomial time (Kozlov, Tarasov,
Khachiyan 1980).  The engine here is a primal active-set method, which
is exact up to linear-algebra precision for this projection form:

* the equality-constrained subproblems have the closed form
  ``y = x + A_W^T lam`` with ``(A_W A_W^T) lam = b_W - A_W x``;
* at a candidate optimum, KKT multipliers come from a least-squares
  solve, and a negative multiplier identifies the constraint to drop;
* otherwise, a ratio test finds the blocking constraint to add.

Every solution is verified against the KKT conditions before being
returned, so a numerical failure surfaces as an exception rather than a
silently wrong explanation.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InfeasibleError, ResourceLimitError, SolverError
from .lp import solve_lp

_TOL = 1e-9


def _restricted_projection(x: np.ndarray, A_w: np.ndarray, b_w: np.ndarray) -> np.ndarray:
    """Projection of x onto the affine set ``A_w y = b_w`` (least-norm step)."""
    if A_w.shape[0] == 0:
        return x.copy()
    gram = A_w @ A_w.T
    rhs = b_w - A_w @ x
    lam, *_ = np.linalg.lstsq(gram, rhs, rcond=None)
    return x + A_w.T @ lam


def _kkt_multipliers(x: np.ndarray, y: np.ndarray, A_w: np.ndarray) -> np.ndarray:
    """Least-squares multipliers for stationarity ``(y - x) + A_w^T mu = 0``."""
    if A_w.shape[0] == 0:
        return np.empty(0)
    mu, *_ = np.linalg.lstsq(A_w.T, x - y, rcond=None)
    return mu


def _feasible_start(x: np.ndarray, A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """A feasible point of ``A y <= b``, or raise InfeasibleError.

    When x itself is feasible we start there (the common case for the
    counterfactual workload: x sits in the region of its own label and
    the projection target region is nearby).
    """
    if np.all(A @ x <= b + _TOL):
        return x.copy()
    point = solve_lp(
        np.zeros(A.shape[1]),
        A_ub=A,
        b_ub=b,
        raise_on_infeasible=False,
    )
    if not point.optimal:
        raise InfeasibleError("the polyhedron A y <= b is empty")
    return point.x


def project_onto_polyhedron(
    x,
    A,
    b,
    *,
    max_iter: int = 500,
    tol: float = _TOL,
) -> tuple[np.ndarray, float]:
    """Return ``(y*, ||x - y*||^2)`` with y* the closest point of ``{A y <= b}``.

    Raises :class:`InfeasibleError` when the polyhedron is empty and
    :class:`ResourceLimitError` if the active-set loop does not converge
    within *max_iter* iterations (which on well-posed inputs indicates
    degenerate cycling; raise the limit or perturb the data).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    A = np.asarray(A, dtype=np.float64).reshape(-1, x.shape[0])
    b = np.asarray(b, dtype=np.float64).ravel()
    if A.shape[0] == 0:
        return x.copy(), 0.0
    if A.shape[0] != b.shape[0]:
        raise ValueError(f"A has {A.shape[0]} rows but b has {b.shape[0]} entries")

    # Scale rows once so tolerances mean the same thing for every constraint.
    norms = np.linalg.norm(A, axis=1)
    degenerate = norms < tol
    if np.any(degenerate):
        if np.any(b[degenerate] < -tol):
            raise InfeasibleError("a zero row of A has negative right-hand side")
        A, b, norms = A[~degenerate], b[~degenerate], norms[~degenerate]
        if A.shape[0] == 0:
            return x.copy(), 0.0
    A = A / norms[:, None]
    b = b / norms

    y = _feasible_start(x, A, b)
    active: list[int] = [int(i) for i in np.flatnonzero(np.abs(A @ y - b) <= tol)]

    for _ in range(max_iter):
        A_w = A[active]
        b_w = b[active]
        target = _restricted_projection(x, A_w, b_w)
        step = target - y
        if np.linalg.norm(step) <= tol:
            mu = _kkt_multipliers(x, y, A_w)
            if mu.size == 0 or np.all(mu >= -1e-7):
                break
            # Drop the most violated multiplier and resume.
            drop = int(np.argmin(mu))
            active.pop(drop)
            continue
        # Ratio test against inactive constraints.
        inactive = [i for i in range(A.shape[0]) if i not in active]
        alpha = 1.0
        blocking = None
        if inactive:
            A_i = A[inactive]
            direction = A_i @ step
            slackness = b[inactive] - A_i @ y
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(direction > tol, slackness / direction, np.inf)
            ratios = np.maximum(ratios, 0.0)
            j = int(np.argmin(ratios))
            if ratios[j] < alpha:
                alpha = float(ratios[j])
                blocking = inactive[j]
        y = y + alpha * step
        if blocking is not None:
            active.append(blocking)
    else:
        raise ResourceLimitError(
            f"active-set projection did not converge in {max_iter} iterations"
        )

    _verify_kkt(x, y, A, b, tol=1e-6)
    return y, float(np.dot(x - y, x - y))


def _verify_kkt(x: np.ndarray, y: np.ndarray, A: np.ndarray, b: np.ndarray, *, tol: float):
    """Assert primal feasibility and stationarity of the returned point."""
    residual = A @ y - b
    if np.any(residual > tol):
        raise SolverError(
            f"projection result infeasible (max violation {residual.max():.2e})"
        )
    active = np.abs(residual) <= 1e-6
    A_w = A[active]
    if A_w.shape[0] == 0:
        if np.linalg.norm(y - x) > tol:
            raise SolverError("interior projection result is not x itself")
        return
    # Stationarity means x - y lies in the cone spanned by the active rows:
    # a least-squares fit with *nonnegative* multipliers must be exact.
    # (A plain lstsq + clip is wrong under degeneracy — the minimum-norm
    # solution can go negative even when a nonnegative one exists.)
    from scipy.optimize import nnls

    mu, gradient_gap = nnls(A_w.T, x - y)
    scale = 1.0 + np.linalg.norm(x - y)
    if gradient_gap > 1e-5 * scale:
        raise SolverError(
            f"projection result fails KKT stationarity (gap {gradient_gap:.2e})"
        )
