"""Mixed-integer linear programming: model builder and two engines.

The paper's Section 9 solves the NP-hard explanation problems with an
IQP handed to Gurobi.  Over binary variables the quadratic objective
``sum (x_i - y_i)^2`` is *linear* (``y_i^2 = y_i``), so the whole
pipeline reduces to MILP.  This module provides:

* :class:`MILPModel` — a small modeling layer (variables, linear
  constraints, min/max objective);
* a from-scratch **branch & bound** engine (best-first on LP relaxation
  bounds computed by scipy's HiGHS, most-fractional branching, rounding
  heuristic for incumbents);
* a bridge to :func:`scipy.optimize.milp` (HiGHS branch & cut), used as
  the fast engine and as an independent cross-check in tests.

Both engines return the same :class:`MILPResult`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import LinearConstraint, linprog
from scipy.optimize import milp as scipy_milp

from .._budget import remaining_budget, start_deadline
from ..exceptions import (
    ResourceLimitError,
    SolverError,
    UnboundedError,
    ValidationError,
)

_INT_TOL = 1e-6


@dataclass(frozen=True)
class Var:
    """Handle to a model variable (index into the solution vector)."""

    index: int
    name: str
    integer: bool


@dataclass
class _Constraint:
    coeffs: dict[int, float]
    lo: float
    hi: float


@dataclass(frozen=True)
class MILPResult:
    """Solution of a MILP: status, variable values, objective value."""

    status: str
    x: np.ndarray
    objective: float
    nodes: int = 0

    @property
    def optimal(self) -> bool:
        """True when the solver reports a proven-optimal solution."""
        return self.status == "optimal"

    def value(self, var: Var) -> float:
        """The solution value of *var*."""
        return float(self.x[var.index])


class MILPModel:
    """Incrementally built MILP: ``min/max c.x`` s.t. linear constraints.

    Variables are continuous or integer with per-variable bounds; use
    :meth:`add_binary` for 0/1 variables.  Constraints are expressed as
    coefficient dictionaries over :class:`Var` handles.
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._vars: list[Var] = []
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._constraints: list[_Constraint] = []
        self._objective: dict[int, float] = {}
        self._obj_constant = 0.0
        self._maximize = False

    # -- variables ------------------------------------------------------

    def add_var(
        self,
        name: str | None = None,
        *,
        lb: float = -np.inf,
        ub: float = np.inf,
        integer: bool = False,
    ) -> Var:
        """Add one variable with bounds (integer when asked); returns it."""
        if lb > ub:
            raise ValidationError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Var(len(self._vars), name or f"x{len(self._vars)}", integer)
        self._vars.append(var)
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        return var

    def add_binary(self, name: str | None = None) -> Var:
        """Add one 0/1 integer variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_vars(self, count: int, prefix: str = "x", **kwargs) -> list[Var]:
        """Add *count* variables named ``prefix[i]`` sharing *kwargs*."""
        return [self.add_var(f"{prefix}[{i}]", **kwargs) for i in range(count)]

    @property
    def n_vars(self) -> int:
        """Number of variables added so far."""
        return len(self._vars)

    @property
    def n_constraints(self) -> int:
        """Number of linear constraints added so far."""
        return len(self._constraints)

    # -- constraints ------------------------------------------------------

    @staticmethod
    def _as_coeffs(coeffs) -> dict[int, float]:
        out: dict[int, float] = {}
        for var, value in coeffs.items():
            idx = var.index if isinstance(var, Var) else int(var)
            out[idx] = out.get(idx, 0.0) + float(value)
        return out

    def add_constraint(self, coeffs, sense: str, rhs: float):
        """Add ``sum coeffs[v] * v  (sense)  rhs`` with sense in {<=, >=, ==}."""
        rhs = float(rhs)
        cmap = self._as_coeffs(coeffs)
        if sense == "<=":
            lo, hi = -np.inf, rhs
        elif sense == ">=":
            lo, hi = rhs, np.inf
        elif sense == "==":
            lo, hi = rhs, rhs
        else:
            raise ValidationError(f"sense must be one of <=, >=, ==; got {sense!r}")
        self._constraints.append(_Constraint(cmap, lo, hi))

    def set_objective(self, coeffs, *, constant: float = 0.0, maximize: bool = False):
        """Set the linear objective from ``{var: coeff}`` (plus a constant)."""
        self._objective = self._as_coeffs(coeffs)
        self._obj_constant = float(constant)
        self._maximize = bool(maximize)

    # -- matrix assembly -------------------------------------------------

    def _assemble(self):
        n = self.n_vars
        c = np.zeros(n)
        for idx, value in self._objective.items():
            c[idx] = value
        if self._maximize:
            c = -c
        rows_ub, b_ub, rows_eq, b_eq = [], [], [], []
        for con in self._constraints:
            row = np.zeros(n)
            for idx, value in con.coeffs.items():
                row[idx] = value
            if con.lo == con.hi:
                rows_eq.append(row)
                b_eq.append(con.lo)
            else:
                if np.isfinite(con.hi):
                    rows_ub.append(row)
                    b_ub.append(con.hi)
                if np.isfinite(con.lo):
                    rows_ub.append(-row)
                    b_ub.append(-con.lo)
        A_ub = np.array(rows_ub).reshape(-1, n)
        A_eq = np.array(rows_eq).reshape(-1, n)
        return c, A_ub, np.array(b_ub), A_eq, np.array(b_eq)

    # -- solving -------------------------------------------------------

    def solve(
        self, *, engine: str = "scipy", time_limit: float | None = None, **kwargs
    ) -> MILPResult:
        """Solve with ``engine`` in {"scipy", "bnb"}.

        ``scipy`` delegates to HiGHS branch & cut; ``bnb`` runs the pure
        Python branch & bound (kwargs: ``node_limit``).  ``time_limit``
        (wall-clock seconds) raises
        :class:`~repro.exceptions.ResourceLimitError` when the engine
        runs out of budget before proving optimality — the signal the
        solver portfolio uses to move on to the next method.
        """
        if engine == "scipy":
            result = self._solve_scipy(time_limit=time_limit)
        elif engine == "bnb":
            result = _BranchAndBound(self, time_limit=time_limit, **kwargs).solve()
        else:
            raise ValidationError(f"unknown engine {engine!r}")
        return result

    def _signed(self, objective: float) -> float:
        return -objective if self._maximize else objective

    def _solve_scipy(self, *, time_limit: float | None = None) -> MILPResult:
        c, A_ub, b_ub, A_eq, b_eq = self._assemble()
        constraints = []
        if A_ub.shape[0]:
            constraints.append(LinearConstraint(A_ub, -np.inf, b_ub))
        if A_eq.shape[0]:
            constraints.append(LinearConstraint(A_eq, b_eq, b_eq))
        integrality = np.array([1 if v.integer else 0 for v in self._vars])
        from scipy.optimize import Bounds

        options = {} if time_limit is None else {"time_limit": float(time_limit)}
        res = scipy_milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(np.array(self._lb), np.array(self._ub)),
            options=options,
        )
        if res.status == 2:
            return MILPResult("infeasible", np.full(self.n_vars, np.nan), np.nan)
        if res.status == 3:
            return MILPResult("unbounded", np.full(self.n_vars, np.nan), -np.inf)
        if res.status == 1 and time_limit is not None:
            raise ResourceLimitError(
                f"MILP engine exceeded its {time_limit:.3g}s time budget"
            )
        if not res.success:  # pragma: no cover - engine trouble
            raise SolverError(f"scipy milp failed: {res.message}")
        objective = self._signed(float(res.fun)) + self._obj_constant
        return MILPResult("optimal", np.asarray(res.x), objective)


class _BranchAndBound:
    """Best-first branch & bound over HiGHS LP relaxations."""

    def __init__(
        self,
        model: MILPModel,
        node_limit: int = 200_000,
        time_limit: float | None = None,
    ):
        self.model = model
        self.node_limit = int(node_limit)
        self.deadline = start_deadline(time_limit)
        self.c, self.A_ub, self.b_ub, self.A_eq, self.b_eq = model._assemble()
        self.int_indices = [v.index for v in model._vars if v.integer]

    def _lp(self, lb: np.ndarray, ub: np.ndarray):
        res = linprog(
            self.c,
            A_ub=self.A_ub if self.A_ub.shape[0] else None,
            b_ub=self.b_ub if self.A_ub.shape[0] else None,
            A_eq=self.A_eq if self.A_eq.shape[0] else None,
            b_eq=self.b_eq if self.A_eq.shape[0] else None,
            bounds=list(zip(lb, ub)),
            method="highs",
        )
        if res.status == 2:
            return None
        if res.status == 3:
            raise UnboundedError("LP relaxation is unbounded")
        if not res.success:  # pragma: no cover
            raise SolverError(f"LP relaxation failed: {res.message}")
        return float(res.fun), np.asarray(res.x)

    def _most_fractional(self, x: np.ndarray) -> int | None:
        best, best_gap = None, _INT_TOL
        for idx in self.int_indices:
            gap = abs(x[idx] - round(x[idx]))
            if gap > best_gap:
                best, best_gap = idx, gap
        return best

    def _rounded_candidate(self, x: np.ndarray) -> np.ndarray | None:
        """Round integer variables; return the point if it stays feasible."""
        cand = x.copy()
        for idx in self.int_indices:
            cand[idx] = round(cand[idx])
        if self.A_ub.shape[0] and np.any(self.A_ub @ cand > self.b_ub + 1e-7):
            return None
        if self.A_eq.shape[0] and np.any(np.abs(self.A_eq @ cand - self.b_eq) > 1e-7):
            return None
        lb = np.array(self.model._lb)
        ub = np.array(self.model._ub)
        if np.any(cand < lb - 1e-9) or np.any(cand > ub + 1e-9):
            return None
        return cand

    def solve(self) -> MILPResult:
        model = self.model
        lb0 = np.array(model._lb)
        ub0 = np.array(model._ub)
        root = self._lp(lb0, ub0)
        if root is None:
            return MILPResult("infeasible", np.full(model.n_vars, np.nan), np.nan)
        incumbent_x: np.ndarray | None = None
        incumbent_val = np.inf
        counter = itertools.count()
        heap = [(root[0], next(counter), lb0, ub0, root[1])]
        nodes = 0
        while heap:
            bound, _, lb, ub, x_relax = heapq.heappop(heap)
            if bound >= incumbent_val - 1e-9:
                continue
            nodes += 1
            if nodes > self.node_limit:
                raise ResourceLimitError(
                    f"branch & bound exceeded {self.node_limit} nodes"
                )
            remaining_budget(self.deadline, "branch & bound")
            branch_var = self._most_fractional(x_relax)
            if branch_var is None:
                # Integral relaxation: new incumbent.
                if bound < incumbent_val:
                    incumbent_val = bound
                    incumbent_x = x_relax
                continue
            rounded = self._rounded_candidate(x_relax)
            if rounded is not None:
                val = float(self.c @ rounded)
                if val < incumbent_val:
                    incumbent_val, incumbent_x = val, rounded
            value = x_relax[branch_var]
            for lo_add, hi_add in (
                (None, np.floor(value)),
                (np.ceil(value), None),
            ):
                lb_child, ub_child = lb.copy(), ub.copy()
                if hi_add is not None:
                    ub_child[branch_var] = min(ub_child[branch_var], hi_add)
                if lo_add is not None:
                    lb_child[branch_var] = max(lb_child[branch_var], lo_add)
                if lb_child[branch_var] > ub_child[branch_var]:
                    continue
                child = self._lp(lb_child, ub_child)
                if child is None or child[0] >= incumbent_val - 1e-9:
                    continue
                heapq.heappush(
                    heap, (child[0], next(counter), lb_child, ub_child, child[1])
                )
        if incumbent_x is None:
            return MILPResult("infeasible", np.full(model.n_vars, np.nan), np.nan, nodes)
        # Snap integer variables exactly.
        x = incumbent_x.copy()
        for idx in self.int_indices:
            x[idx] = round(x[idx])
        objective = model._signed(incumbent_val) + model._obj_constant
        return MILPResult("optimal", x, objective, nodes)
