"""Generic optimization/decision substrates.

The paper's algorithms reduce explanation problems to:

* linear programming (Proposition 3, strict systems via the max-epsilon
  trick) — :mod:`repro.solvers.lp`;
* convex quadratic programming (Theorem 2) — :mod:`repro.solvers.qp`;
* integer (quadratic, linearized) programming (Section 9) —
  :mod:`repro.solvers.milp`;
* SAT with native cardinality constraints (Section 9.2) —
  :mod:`repro.solvers.sat`.

All four engines are implemented here so the library runs fully offline;
the MILP layer can optionally delegate to scipy's HiGHS backend.

On top of the engines sit two shared substrates for the portfolio:
:mod:`repro.solvers.race` (process-level racing with cooperative
cancellation) and :mod:`repro.solvers.sat.pool` (warm cross-query
incremental SAT solvers keyed by dataset version).
"""

from __future__ import annotations

from .lp import LPResult, feasible_point_strict, solve_lp
from .qp import project_onto_polyhedron
from .race import ProcessRacer, RaceAttempt, RaceOutcome, default_racer
from .sat.pool import SATSolverPool

__all__ = [
    "LPResult",
    "solve_lp",
    "feasible_point_strict",
    "project_onto_polyhedron",
    "ProcessRacer",
    "RaceAttempt",
    "RaceOutcome",
    "default_racer",
    "SATSolverPool",
]
