"""Linear-programming façade and the strict-inequality max-epsilon trick.

scipy's HiGHS backend does the pivoting; this module owns the modelling
conventions (free variables by default — numerical LP layers commonly
default to ``x >= 0``, which would silently corrupt the geometry here)
and the reduction from systems with *strict* inequalities to plain LP
described in the proof of Proposition 3:

    a system {A x <= b, C x < d} is feasible iff the LP
    ``max eps  s.t.  A x <= b,  C x + eps <= d,  0 <= eps <= 1``
    has optimum ``eps > 0``.

The upper bound ``eps <= 1`` keeps the LP bounded without affecting
feasibility (any positive epsilon can be scaled down).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..exceptions import InfeasibleError, SolverError, UnboundedError

_STATUS = {0: "optimal", 1: "iteration limit", 2: "infeasible", 3: "unbounded", 4: "numerical"}


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP solve: optimal point, value, and status string."""

    x: np.ndarray
    value: float
    status: str

    @property
    def optimal(self) -> bool:
        """True when the solver reports an optimal solution."""
        return self.status == "optimal"


def _empty(n_cols: int) -> tuple[np.ndarray, np.ndarray]:
    return np.empty((0, n_cols)), np.empty(0)


def solve_lp(
    c,
    A_ub=None,
    b_ub=None,
    A_eq=None,
    b_eq=None,
    *,
    bounds=(None, None),
    raise_on_infeasible: bool = True,
) -> LPResult:
    """Minimize ``c . x`` subject to ``A_ub x <= b_ub`` and ``A_eq x = b_eq``.

    Variables are free unless *bounds* says otherwise.  Raises
    :class:`InfeasibleError` / :class:`UnboundedError` on those outcomes
    unless *raise_on_infeasible* is False (then a non-"optimal" status is
    returned for the caller to inspect).
    """
    c = np.asarray(c, dtype=np.float64)
    res = linprog(
        c,
        A_ub=A_ub if A_ub is not None and len(A_ub) else None,
        b_ub=b_ub if b_ub is not None and len(b_ub) else None,
        A_eq=A_eq if A_eq is not None and len(A_eq) else None,
        b_eq=b_eq if b_eq is not None and len(b_eq) else None,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS.get(res.status, "unknown")
    if status == "infeasible":
        if raise_on_infeasible:
            raise InfeasibleError("LP is infeasible")
        return LPResult(x=np.full(c.shape, np.nan), value=np.nan, status=status)
    if status == "unbounded":
        if raise_on_infeasible:
            raise UnboundedError("LP is unbounded")
        return LPResult(x=np.full(c.shape, np.nan), value=-np.inf, status=status)
    if not res.success:  # pragma: no cover - numerical trouble
        raise SolverError(f"LP solver failed with status {status!r}: {res.message}")
    return LPResult(x=np.asarray(res.x), value=float(res.fun), status="optimal")


def feasible_point_strict(
    A_ub=None,
    b_ub=None,
    A_strict=None,
    b_strict=None,
    A_eq=None,
    b_eq=None,
    *,
    n: int | None = None,
    eps_floor: float = 1e-9,
) -> np.ndarray | None:
    """A point satisfying ``A_ub x <= b_ub``, ``A_strict x < b_strict``, ``A_eq x = b_eq``.

    Implements the Proposition-3 reduction: maximize the joint slack
    ``eps`` of the strict constraints; the system is feasible iff the
    optimum exceeds ``eps_floor``.  Returns the point or None.
    """
    mats = [m for m in (A_ub, A_strict, A_eq) if m is not None and len(m)]
    if n is None:
        if not mats:
            raise ValueError("cannot infer the dimension of an unconstrained system")
        n = np.asarray(mats[0]).shape[1]

    def norm(A, b):
        if A is None or len(A) == 0:
            return _empty(n)
        return (
            np.asarray(A, dtype=float).reshape(-1, n),
            np.asarray(b, dtype=float).ravel(),
        )

    A_ub, b_ub = norm(A_ub, b_ub)
    A_st, b_st = norm(A_strict, b_strict)
    A_eq_m, b_eq_v = norm(A_eq, b_eq)
    A_eq = A_eq_m if A_eq_m.shape[0] else None
    b_eq = b_eq_v if A_eq_m.shape[0] else None

    # Augmented variable vector (x, eps).
    blocks = []
    rhs = []
    if A_ub.shape[0]:
        blocks.append(np.hstack([A_ub, np.zeros((A_ub.shape[0], 1))]))
        rhs.append(b_ub)
    if A_st.shape[0]:
        blocks.append(np.hstack([A_st, np.ones((A_st.shape[0], 1))]))
        rhs.append(b_st)
    A_aug = np.vstack(blocks) if blocks else None
    b_aug = np.concatenate(rhs) if rhs else None
    A_eq_aug = np.hstack([A_eq, np.zeros((A_eq.shape[0], 1))]) if A_eq is not None else None

    c = np.zeros(n + 1)
    c[-1] = -1.0  # maximize eps
    bounds = [(None, None)] * n + [(0.0, 1.0)]
    result = solve_lp(
        c,
        A_aug,
        b_aug,
        A_eq_aug,
        b_eq,
        bounds=bounds,
        raise_on_infeasible=False,
    )
    if not result.optimal:
        return None
    eps = result.x[-1]
    if A_st.shape[0] and eps <= eps_floor:
        return None
    return result.x[:n]
