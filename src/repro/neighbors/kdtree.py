"""A from-scratch KD-tree supporting exact lp and Hamming queries.

The tree stores axis-aligned splits at the median of the widest-spread
coordinate.  Queries use branch-and-bound: a subtree is visited only when
the distance from the query to the subtree's bounding box can still beat
the current k-th best.  For any lp metric (p >= 1, including infinity)
the box lower bound is the lp norm of the per-coordinate gaps, which is a
valid lower bound on the distance to every point in the box; Hamming
distance on {0,1}^n coincides with l1 there, so it is handled the same
way.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..metrics import HammingMetric, LpMetric
from ..exceptions import ValidationError
from .base import NNIndex

#: points per leaf.  Leaves are scanned with one vectorized kernel call
#: (see ``consider_leaf``), so larger leaves trade a few extra distance
#: evaluations for far fewer Python-level node visits; 64 measured best
#: on the ``kdtree_lowdim`` benchmark workload (4000 x 3, k=5).
_LEAF_SIZE = 64


@dataclass
class _Node:
    """A KD-tree node; leaves carry point indices, inner nodes a split."""

    indices: np.ndarray | None = None  # leaf payload
    axis: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    lo: np.ndarray = field(default_factory=lambda: np.empty(0))
    hi: np.ndarray = field(default_factory=lambda: np.empty(0))
    # Python-float copies of lo/hi: the branch-and-bound box gap is
    # evaluated millions of times on vectors of length <= a few dozen,
    # where scalar arithmetic beats numpy ufunc dispatch by ~4x.
    lo_t: tuple = ()
    hi_t: tuple = ()

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTreeIndex(NNIndex):
    """Exact k-NN via a median-split KD-tree (build O(m log m))."""

    def __init__(self, points, metric="l2"):
        super().__init__(points, metric)
        if isinstance(self.metric, HammingMetric):
            self._p = 1  # Hamming == l1 on {0,1}^n
        elif isinstance(self.metric, LpMetric):
            self._p = self.metric.p
        else:  # pragma: no cover - no other metric classes exist today
            raise ValidationError(
                f"KDTreeIndex supports lp/Hamming metrics, got {self.metric.name}"
            )
        self._root = self._build(np.arange(self.size))

    # -- construction ---------------------------------------------------

    def _build(self, indices: np.ndarray) -> _Node:
        pts = self.points[indices]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if indices.shape[0] <= _LEAF_SIZE or np.all(lo == hi):
            return _Node(
                indices=np.sort(indices),
                lo=lo,
                hi=hi,
                lo_t=tuple(lo.tolist()),
                hi_t=tuple(hi.tolist()),
            )
        axis = int(np.argmax(hi - lo))
        values = pts[:, axis]
        threshold = float(np.median(values))
        mask = values <= threshold
        # A median of few distinct values can put everything on one side;
        # fall back to a strict split around the midpoint.
        if mask.all() or not mask.any():
            threshold = float((lo[axis] + hi[axis]) / 2.0)
            mask = values <= threshold
            if mask.all() or not mask.any():  # pragma: no cover - lo<hi ensures a split
                return _Node(indices=np.sort(indices), lo=lo, hi=hi)
        node = _Node(
            axis=axis,
            threshold=threshold,
            lo=lo,
            hi=hi,
            lo_t=tuple(lo.tolist()),
            hi_t=tuple(hi.tolist()),
        )
        node.left = self._build(indices[mask])
        node.right = self._build(indices[~mask])
        return node

    # -- queries ----------------------------------------------------------

    def _box_gap_power(self, node: _Node, x: np.ndarray) -> float:
        """Lower bound (in surrogate units) on d(x, any point in the box)."""
        return self._gap_power(node.lo_t, node.hi_t, x)

    def _gap_power(self, lo: tuple, hi: tuple, x) -> float:
        """Surrogate lower bound from scalar box bounds — pure-Python
        arithmetic, called once per visited node so ufunc dispatch on a
        length-``dim`` vector would dominate the whole search."""
        p = self._p
        if p is np.inf:
            worst = 0.0
            for t in range(len(lo)):
                g = lo[t] - x[t]
                if g <= 0.0:
                    g = x[t] - hi[t]
                if g > worst:
                    worst = g
            return worst
        total = 0.0
        for t in range(len(lo)):
            v = x[t]
            g = lo[t] - v
            if g <= 0.0:
                g = v - hi[t]
                if g <= 0.0:
                    continue
            if p == 1:
                total += g
            elif p == 2:
                total += g * g
            else:
                total += g**p
        return total

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest rows to *x*: ``(distances, indices)``, ties by index."""
        xv, k = self._check_query(x, k)
        xl = xv.tolist()  # scalar copy for the per-node box-gap loop
        # Max-heap of the k best candidates as (-surrogate, -index): popping
        # removes the worst candidate, and among equal distances the larger
        # index, matching index-order tie-breaking.
        best: list[tuple[float, int]] = []

        def consider_leaf(node: _Node):
            # One vectorized kernel call per leaf; only candidates that
            # can still enter the k-best heap (strictly closer than the
            # current worst, or tied with it — ties resolve by index in
            # the heap comparison) are pushed through the Python loop.
            pts = self.points[node.indices]
            d = self.metric.powers_to(pts, xv)
            if len(best) == k:
                mask = d <= -best[0][0]
                d, indices = d[mask], node.indices[mask]
            else:
                indices = node.indices
            for dist, idx in zip(d, indices):
                item = (-float(dist), -int(idx))
                if len(best) < k:
                    heapq.heappush(best, item)
                elif item > best[0]:
                    heapq.heapreplace(best, item)

        def bound() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def visit(node: _Node):
            # Children are bound-checked exactly once, on descent (the
            # root is trivially admissible while the heap is not full).
            if node.is_leaf:
                consider_leaf(node)
                return
            if xl[node.axis] <= node.threshold:
                near, far = node.left, node.right
            else:
                near, far = node.right, node.left
            if self._gap_power(near.lo_t, near.hi_t, xl) <= bound():
                visit(near)
            if self._gap_power(far.lo_t, far.hi_t, xl) <= bound():
                visit(far)

        visit(self._root)
        ordered = sorted((-neg_d, -neg_i) for neg_d, neg_i in best)
        indices = np.array([i for _, i in ordered], dtype=np.int64)
        distances = self.metric.distances_to(self.points[indices], xv)
        return distances, indices

    # -- surrogate queries (the QueryEngine backend entry point) ---------

    def kth_power(self, x, k: int) -> float:
        """Surrogate (power) distance of the k-th nearest point to *x*.

        Runs the same branch-and-bound as :meth:`query` but only tracks
        the k best surrogate values, skipping index bookkeeping and the
        final power-to-distance conversion — exactly what the radii of
        Proposition 1 need.  Returns ``+inf`` when ``k > size``.
        """
        xv, _ = self._check_query(x, min(int(k), self.size))
        k = int(k)
        if k > self.size:
            return float(np.inf)
        xl = xv.tolist()  # scalar copy for the per-node box-gap loop
        # Max-heap via negation: best[0] is the current k-th best power.
        best: list[float] = []

        def bound() -> float:
            return -best[0] if len(best) == k else np.inf

        def visit(node: _Node):
            if node.is_leaf:
                # Vectorized leaf scan; only powers that improve on the
                # current k-th best can change the heap, so the Python
                # loop runs over the (typically tiny) filtered remainder.
                d = self.metric.powers_to(self.points[node.indices], xv)
                if len(best) == k:
                    d = d[d < -best[0]]
                for dist in d:
                    item = -float(dist)
                    if len(best) < k:
                        heapq.heappush(best, item)
                    elif item > best[0]:
                        heapq.heapreplace(best, item)
                return
            if xl[node.axis] <= node.threshold:
                near, far = node.left, node.right
            else:
                near, far = node.right, node.left
            if self._gap_power(near.lo_t, near.hi_t, xl) <= bound():
                visit(near)
            if self._gap_power(far.lo_t, far.hi_t, xl) <= bound():
                visit(far)

        visit(self._root)
        return -best[0]

    def kth_power_batch(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Row-wise :meth:`kth_power` over a query matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.array([self.kth_power(x, k) for x in queries])


class LazyKDTree:
    """A KD-tree over a *mutable* multiset of points, rebuilt lazily.

    A KD-tree cannot absorb inserts or deletes without degrading, so
    mutations are recorded as deltas against the last built tree:
    removals tombstone tree rows, inserts accumulate in a pending
    overlay, and queries combine branch-and-bound candidates with the
    overlay.  Once the deltas pass :data:`REBUILD_FRACTION` of the tree
    size the next query rebuilds from scratch — amortizing the O(m log
    m) build over at least ``REBUILD_FRACTION * m`` mutations.

    Rows here are *expanded* points (one row per multiplicity unit);
    the k-th returned power therefore counts multiplicities exactly
    like :func:`repro.knn.engine._kth_smallest_with_multiplicity`.
    Returned values are bit-identical to a freshly built tree because
    candidate powers are always recomputed with ``metric.powers_to``,
    whose kernels are row-independent.
    """

    #: delta fraction of the built tree size that triggers a rebuild.
    REBUILD_FRACTION = 0.25

    def __init__(self, points: np.ndarray, metric):
        self.metric = metric
        self._dim = points.shape[1]
        self._rebuild(np.asarray(points, dtype=np.float64))

    # -- mutation --------------------------------------------------------

    def _rebuild(self, points: np.ndarray) -> None:
        """Build a fresh tree over *points* and reset every delta."""
        self._base = np.array(points, dtype=np.float64, order="C")
        self._tree = KDTreeIndex(self._base, self.metric) if self._base.shape[0] else None
        self._removed = np.zeros(self._base.shape[0], dtype=bool)
        self._n_removed = 0
        self._pending: list[np.ndarray] = []

    @property
    def size(self) -> int:
        """Live rows: tree rows minus tombstones plus the pending overlay."""
        return self._base.shape[0] - self._n_removed + len(self._pending)

    @property
    def staleness(self) -> float:
        """Deltas as a fraction of the built tree size."""
        deltas = self._n_removed + len(self._pending)
        return deltas / max(1, self._base.shape[0])

    def add(self, row: np.ndarray, count: int = 1) -> None:
        """Insert *count* copies of *row* into the pending overlay."""
        row = np.ascontiguousarray(row, dtype=np.float64)
        self._pending.extend(np.array(row) for _ in range(int(count)))

    def remove(self, row: np.ndarray, count: int = 1) -> None:
        """Remove *count* copies of *row* (pending overlay first, then
        tombstoning tree rows); raises when fewer copies exist."""
        row = np.ascontiguousarray(row, dtype=np.float64)
        key = row.tobytes()
        count = int(count)
        for i in range(len(self._pending) - 1, -1, -1):
            if count == 0:
                return
            if self._pending[i].tobytes() == key:
                del self._pending[i]
                count -= 1
        if count == 0:
            return
        live = np.flatnonzero(~self._removed)
        matches = live[np.all(self._base[live] == row, axis=1)]
        if matches.shape[0] < count:
            raise ValidationError(
                f"cannot remove {count} more cop(ies) of a row with only "
                f"{matches.shape[0]} left in the tree"
            )
        self._removed[matches[:count]] = True
        self._n_removed += count

    def _maybe_rebuild(self) -> None:
        """The lazy rebuild: triggered by queries, not by mutations."""
        deltas = self._n_removed + len(self._pending)
        if deltas and self.staleness > self.REBUILD_FRACTION:
            alive = self._base[~self._removed]
            overlay = np.array(self._pending).reshape(-1, self._dim)
            self._rebuild(np.vstack([alive, overlay]))

    # -- queries ---------------------------------------------------------

    def kth_power(self, x: np.ndarray, k: int) -> float:
        """Surrogate power of the k-th nearest live row (+inf if k > size)."""
        self._maybe_rebuild()
        k = int(k)
        if k > self.size:
            return float(np.inf)
        if self._tree is not None and not self._n_removed and not self._pending:
            return self._tree.kth_power(x, k)
        x = np.ascontiguousarray(x, dtype=np.float64)
        candidates: list[np.ndarray] = []
        if self._tree is not None and self._base.shape[0] > self._n_removed:
            # k + n_removed tree candidates always contain the k nearest
            # live tree rows, whatever the tombstone pattern.
            take = min(self._tree.size, k + self._n_removed)
            _, idx = self._tree.query(x, take)
            alive = idx[~self._removed[idx]]
            candidates.append(self.metric.powers_to(self._base[alive], x))
        if self._pending:
            overlay = np.array(self._pending).reshape(-1, self._dim)
            candidates.append(self.metric.powers_to(overlay, x))
        powers = np.concatenate(candidates) if candidates else np.empty(0)
        if powers.shape[0] < k:  # pragma: no cover - guarded by the size check
            return float(np.inf)
        return float(np.partition(powers, k - 1)[k - 1])

    def kth_power_batch(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Row-wise :meth:`kth_power` over a query matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.array([self.kth_power(x, k) for x in queries])

    def top_powers_batch(self, queries: np.ndarray, need: int) -> np.ndarray:
        """``(q, need)`` matrix of the *need* smallest powers per query.

        Column ``j`` holds the ``(j+1)``-th order-statistic power
        (ascending along each row by construction, ``+inf``-padded when
        the live multiset holds fewer than ``need`` rows) — the
        per-class "top-need" block the multiclass engine combines into
        exact one-vs-rest radii without building a merged index.
        """
        queries = np.asarray(queries, dtype=np.float64)
        return np.column_stack(
            [self.kth_power_batch(queries, j) for j in range(1, int(need) + 1)]
        )
