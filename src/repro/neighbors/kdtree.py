"""A from-scratch KD-tree supporting exact lp and Hamming queries.

The tree stores axis-aligned splits at the median of the widest-spread
coordinate.  Queries use branch-and-bound: a subtree is visited only when
the distance from the query to the subtree's bounding box can still beat
the current k-th best.  For any lp metric (p >= 1, including infinity)
the box lower bound is the lp norm of the per-coordinate gaps, which is a
valid lower bound on the distance to every point in the box; Hamming
distance on {0,1}^n coincides with l1 there, so it is handled the same
way.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..metrics import HammingMetric, LpMetric
from ..exceptions import ValidationError
from .base import NNIndex

_LEAF_SIZE = 16


@dataclass
class _Node:
    """A KD-tree node; leaves carry point indices, inner nodes a split."""

    indices: np.ndarray | None = None  # leaf payload
    axis: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    lo: np.ndarray = field(default_factory=lambda: np.empty(0))
    hi: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTreeIndex(NNIndex):
    """Exact k-NN via a median-split KD-tree (build O(m log m))."""

    def __init__(self, points, metric="l2"):
        super().__init__(points, metric)
        if isinstance(self.metric, HammingMetric):
            self._p = 1  # Hamming == l1 on {0,1}^n
        elif isinstance(self.metric, LpMetric):
            self._p = self.metric.p
        else:  # pragma: no cover - no other metric classes exist today
            raise ValidationError(
                f"KDTreeIndex supports lp/Hamming metrics, got {self.metric.name}"
            )
        self._root = self._build(np.arange(self.size))

    # -- construction ---------------------------------------------------

    def _build(self, indices: np.ndarray) -> _Node:
        pts = self.points[indices]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if indices.shape[0] <= _LEAF_SIZE or np.all(lo == hi):
            return _Node(indices=np.sort(indices), lo=lo, hi=hi)
        axis = int(np.argmax(hi - lo))
        values = pts[:, axis]
        threshold = float(np.median(values))
        mask = values <= threshold
        # A median of few distinct values can put everything on one side;
        # fall back to a strict split around the midpoint.
        if mask.all() or not mask.any():
            threshold = float((lo[axis] + hi[axis]) / 2.0)
            mask = values <= threshold
            if mask.all() or not mask.any():  # pragma: no cover - lo<hi ensures a split
                return _Node(indices=np.sort(indices), lo=lo, hi=hi)
        node = _Node(axis=axis, threshold=threshold, lo=lo, hi=hi)
        node.left = self._build(indices[mask])
        node.right = self._build(indices[~mask])
        return node

    # -- queries ----------------------------------------------------------

    def _box_gap_power(self, node: _Node, x: np.ndarray) -> float:
        """Lower bound (in surrogate units) on d(x, any point in the box)."""
        gap = np.maximum(node.lo - x, 0.0) + np.maximum(x - node.hi, 0.0)
        if self._p is np.inf:
            return float(gap.max()) if gap.size else 0.0
        if self._p == 1:
            return float(gap.sum())
        return float(np.power(gap, self._p).sum())

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest rows to *x*: ``(distances, indices)``, ties by index."""
        xv, k = self._check_query(x, k)
        # Max-heap of the k best candidates as (-surrogate, -index): popping
        # removes the worst candidate, and among equal distances the larger
        # index, matching index-order tie-breaking.
        best: list[tuple[float, int]] = []

        def consider_leaf(node: _Node):
            pts = self.points[node.indices]
            d = self.metric.powers_to(pts, xv)
            for dist, idx in zip(d, node.indices):
                item = (-float(dist), -int(idx))
                if len(best) < k:
                    heapq.heappush(best, item)
                elif item > best[0]:
                    heapq.heapreplace(best, item)

        def bound() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def visit(node: _Node):
            if self._box_gap_power(node, xv) > bound():
                return
            if node.is_leaf:
                consider_leaf(node)
                return
            if xv[node.axis] <= node.threshold:
                near, far = node.left, node.right
            else:
                near, far = node.right, node.left
            visit(near)
            if self._box_gap_power(far, xv) <= bound():
                visit(far)

        visit(self._root)
        ordered = sorted((-neg_d, -neg_i) for neg_d, neg_i in best)
        indices = np.array([i for _, i in ordered], dtype=np.int64)
        distances = self.metric.distances_to(self.points[indices], xv)
        return distances, indices

    # -- surrogate queries (the QueryEngine backend entry point) ---------

    def kth_power(self, x, k: int) -> float:
        """Surrogate (power) distance of the k-th nearest point to *x*.

        Runs the same branch-and-bound as :meth:`query` but only tracks
        the k best surrogate values, skipping index bookkeeping and the
        final power-to-distance conversion — exactly what the radii of
        Proposition 1 need.  Returns ``+inf`` when ``k > size``.
        """
        xv, _ = self._check_query(x, min(int(k), self.size))
        k = int(k)
        if k > self.size:
            return float(np.inf)
        # Max-heap via negation: best[0] is the current k-th best power.
        best: list[float] = []

        def visit(node: _Node):
            bound = -best[0] if len(best) == k else np.inf
            if self._box_gap_power(node, xv) > bound:
                return
            if node.is_leaf:
                for dist in self.metric.powers_to(self.points[node.indices], xv):
                    item = -float(dist)
                    if len(best) < k:
                        heapq.heappush(best, item)
                    elif item > best[0]:
                        heapq.heapreplace(best, item)
                return
            if xv[node.axis] <= node.threshold:
                near, far = node.left, node.right
            else:
                near, far = node.right, node.left
            visit(near)
            visit(far)

        visit(self._root)
        return -best[0]

    def kth_power_batch(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Row-wise :meth:`kth_power` over a query matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.array([self.kth_power(x, k) for x in queries])
