"""Certified exact inverted-file (IVF) nearest-neighbor search.

The paper credits "a library for fast NN-classification such as FAISS"
for the performance of its pipeline; FAISS's workhorse at scale is the
*inverted file*: a coarse quantizer partitions the points into buckets
and a query scans only the most promising buckets.  Stock IVF search is
approximate — it simply hopes the true neighbors live in the probed
buckets.  :class:`IVFIndex` keeps the probe-nearest-buckets-first plan
but makes every answer **provably exact** with a triangle-inequality
certificate, so the engine's bit-for-bit parity doctrine (labels,
margins, radii and index-order tie-breaking identical across backends)
survives untouched:

* each bucket ``b`` stores its centroid ``c_b`` and radius
  ``R_b = max over members of d(p, c_b)`` (true-distance space);
* for a query ``x``, ``lb_b = max(0, d(x, c_b) - R_b)`` lower-bounds
  the distance from ``x`` to *every* point of ``b`` (triangle
  inequality: ``d(x, p) >= d(x, c_b) - d(p, c_b)``);
* the query scans buckets **nearest-first** (ascending ``lb_b``),
  scoring each bucket's members with the metric's row-independent
  matrix kernel (the same Gram expansion the dense backend uses, so
  candidate powers match the dense path bit for bit) and maintaining
  the running k-th smallest surrogate ``r_k`` (the order statistic
  Proposition 1's radii are built from);
* **certificate**: before each new bucket, if the next bucket's
  ``lb_b >= r_k`` (strictly ``>`` when index-order ties must be
  reproduced, see below) then — the buckets being sorted by bound —
  no unscanned point anywhere can change the answer: certified, done;
* a scan that visits every bucket is exact by exhaustion; a scan that
  burns more than :data:`_GIVEUP_SCAN_FRACTION` of the live points
  without certifying gives up and **falls back to one vectorized full
  scan** — never a wrong answer, only a slow one.

Exactness therefore never depends on the quantizer's quality: a bad
clustering only means more fallbacks.  On clustered data (the regime
inverted files exist for) most queries certify after scanning a few
percent of the points — the ``million_point`` headline benchmark
measures the resulting speedup over the dense kernels at 10^6 points.

Floating-point soundness of the certificate
-------------------------------------------

Bounds are computed in floating point, so a computed ``lb`` may
overshoot the true bound by roundoff (centroid distances go through
the Gram expansion and a square root).  Certificates therefore compare
against a *deflated* bound ``lb * (1 - 1e-9) - 1e-12``: the true bound
always dominates the deflated one, so a certificate can only be more
conservative than the exact-arithmetic certificate, never less.  Two
tie regimes matter:

* k-th *value* queries (:meth:`kth_power`, what the engine's radii
  need) certify with ``lb >= r_k``: an unscanned point at exactly
  ``r_k`` adds mass at the k-th order statistic without moving it;
* index-returning queries (:meth:`query`) certify with the strict
  ``lb > r_k``: a tied point in an unscanned bucket could win the
  index-order tie-break, so ties force the fallback scan.

On integer-valued data (the paper's exact-tie constructions) surrogate
gaps are >= 1 while the deflation is ~1e-9 relative, so the deflated
certificate never spuriously rejects an honestly certifiable query.

Mutation protocol (the PR-5 streaming contract)
-----------------------------------------------

The index is mutable the same way the other backends are: ``add``
assigns the new row to its nearest centroid (growing that bucket's
radius as needed — an *append*, no rebuild), ``remove`` tombstones
storage slots, and once the deltas pass :data:`~IVFIndex.
STALE_FRACTION` of the built size the next query *requantizes* —
rebuilds centroids, assignments and radii over the live rows.  Stale
radii are only ever over-estimates (they shrink, never grow, under
tombstoning), so staleness degrades pruning, never correctness.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..metrics import HammingMetric, LpMetric
from .base import NNIndex
from .brute import GrowableMatrix

#: float64 elements of one (rows, nlist) assignment block held at once.
_ASSIGN_BLOCK_ELEMENTS = 1 << 22

#: cap on the number of rows the k-means trainer looks at; the sample is
#: drawn with a deterministic seeded RNG, so builds are reproducible.
_KMEANS_SAMPLE_CAP = 32_768

#: Lloyd iterations for the coarse quantizer.  Exactness never depends
#: on centroid quality (see the module docstring), so a handful of
#: iterations — enough to find the coarse cluster structure — beats
#: polishing centroids the certificate does not need.
_KMEANS_ITERS = 4

#: multiplicative / additive deflation applied to computed lower bounds
#: before any certificate comparison (see the module docstring).
_CERT_REL_SLACK = 1e-9
_CERT_ABS_SLACK = 1e-12

#: fraction of the live points a nearest-first bucket scan may visit
#: without certifying before it gives up and runs the vectorized full
#: scan instead.  Clustered queries certify after a couple of buckets
#: (a few percent of the points); on unclusterable data the bounds are
#: all ~0 and no certificate can ever fire, so bailing out early caps
#: the worst case at roughly ``1 + _GIVEUP_SCAN_FRACTION`` times the
#: dense scan rather than a slow bucket-by-bucket crawl of everything.
_GIVEUP_SCAN_FRACTION = 0.125


class IVFIndex(NNIndex):
    """Exact k-NN via certified inverted-file search (see module docs).

    Parameters
    ----------
    points, metric:
        as for every :class:`~repro.neighbors.NNIndex`; the metric must
        be an lp or Hamming metric (the triangle inequality is what the
        certificate is made of).
    nlist:
        number of coarse buckets (default ``ceil(sqrt(n))``, the
        standard IVF sizing).  There is no ``nprobe`` knob: the
        nearest-first scan stops itself the moment the certificate
        fires, so the probe depth is chosen per query by the data.
    seed:
        seed of the deterministic k-means sampler.
    """

    #: delta fraction of the built size that triggers a requantize.
    STALE_FRACTION = 0.25

    def __init__(
        self,
        points,
        metric="l2",
        *,
        nlist: int | None = None,
        seed: int = 20250123,
    ):
        super().__init__(points, metric)
        if not isinstance(self.metric, (LpMetric, HammingMetric)):
            raise ValidationError(
                f"IVFIndex requires an lp or Hamming metric, got {self.metric.name}"
            )
        if nlist is not None and int(nlist) < 1:
            raise ValidationError(f"nlist must be >= 1, got {nlist}")
        self._nlist_arg = None if nlist is None else int(nlist)
        self._seed = int(seed)
        self._rows = GrowableMatrix(np.ascontiguousarray(self.points, dtype=np.float64))
        self._alive = GrowableMatrix(np.ones(self.points.shape[0], dtype=bool))
        self._assign = GrowableMatrix(np.zeros(self.points.shape[0], dtype=np.int64))
        self.points = self._rows.view
        #: query-outcome counters: ``certified`` / ``fallback`` count
        #: per-query certificate outcomes, ``requantized`` counts lazy
        #: quantizer rebuilds triggered by staleness.
        self.stats = {"certified": 0, "fallback": 0, "requantized": 0}
        self._build_quantizer()

    # -- sizes -----------------------------------------------------------

    @property
    def storage_size(self) -> int:
        """Storage slots (live rows plus tombstoned ones)."""
        return len(self._rows)

    @property
    def size(self) -> int:
        """Number of live (non-tombstoned) indexed points."""
        return int(self._alive.view.sum())

    @property
    def staleness(self) -> float:
        """Appends plus tombstones as a fraction of the built size."""
        return (self._n_appended + self._n_removed) / max(1, self._built_size)

    @property
    def nlist(self) -> int:
        """Number of coarse buckets currently in use."""
        return self._centroids.shape[0]

    # -- coarse quantizer -------------------------------------------------

    def _nearest_centroid(
        self, rows: np.ndarray, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row nearest centroid: ``(bucket ids, true distances)``, blocked."""
        n = rows.shape[0]
        assign = np.empty(n, dtype=np.int64)
        dist = np.empty(n)
        block = max(1, _ASSIGN_BLOCK_ELEMENTS // max(1, centroids.shape[0]))
        for start in range(0, n, block):
            sl = slice(start, min(start + block, n))
            powers = self.metric.powers_matrix(rows[sl], centroids)
            a = np.argmin(powers, axis=1)
            assign[sl] = a
            picked = powers[np.arange(powers.shape[0]), a]
            dist[sl] = self.metric._power_to_distance(picked)
        return assign, dist

    def _kmeans(self, rows: np.ndarray, nlist: int) -> np.ndarray:
        """Seeded mini-Lloyd centroids over (a sample of) *rows*.

        Centroids are continuous means even under Hamming — the
        certificate only needs the triangle inequality, which holds
        between arbitrary points of the space, so quantizer quality is
        a pure pruning concern.
        """
        rng = np.random.default_rng(self._seed)
        if rows.shape[0] > _KMEANS_SAMPLE_CAP:
            sample = rows[rng.choice(rows.shape[0], _KMEANS_SAMPLE_CAP, replace=False)]
        else:
            sample = rows
        centroids = np.array(
            sample[rng.choice(sample.shape[0], min(nlist, sample.shape[0]), replace=False)],
            dtype=np.float64,
        )
        for _ in range(_KMEANS_ITERS):
            assign, _ = self._nearest_centroid(sample, centroids)
            counts = np.bincount(assign, minlength=centroids.shape[0])
            sums = np.zeros_like(centroids)
            np.add.at(sums, assign, sample)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
        return centroids

    def _build_quantizer(self) -> None:
        """(Re)build centroids, assignments, radii and member lists."""
        alive = self._alive.view
        slots = np.flatnonzero(alive)
        rows = self._rows.view[slots]
        n = slots.shape[0]
        nlist = self._nlist_arg or max(1, int(np.ceil(np.sqrt(n))))
        nlist = min(nlist, n)
        centroids = self._kmeans(rows, nlist)
        assign, dist = self._nearest_centroid(rows, centroids)
        # Drop empty buckets (k-means can abandon initial centroids).
        counts = np.bincount(assign, minlength=centroids.shape[0])
        occupied = counts > 0
        remap = np.cumsum(occupied, dtype=np.int64) - 1
        self._centroids = np.ascontiguousarray(centroids[occupied])
        assign = remap[assign]
        full = np.full(self.storage_size, -1, dtype=np.int64)
        full[slots] = assign
        self._assign = GrowableMatrix(full)
        self._radii = np.zeros(self.nlist)
        np.maximum.at(self._radii, assign, dist)
        order = np.argsort(assign, kind="stable")  # slot-ascending per bucket
        bounds = np.searchsorted(assign[order], np.arange(self.nlist + 1))
        sorted_slots = slots[order]
        self._members: list[np.ndarray] = [
            sorted_slots[bounds[b] : bounds[b + 1]] for b in range(self.nlist)
        ]
        self._built_size = n
        self._n_appended = 0
        self._n_removed = 0

    def _prepare(self) -> None:
        """The lazy requantize: triggered by queries, not by mutations."""
        deltas = self._n_appended + self._n_removed
        if deltas and self.staleness > self.STALE_FRACTION and self.size:
            self._build_quantizer()
            self.stats["requantized"] += 1

    # -- mutation (the PR-5 streaming protocol) ---------------------------

    def add(self, row: np.ndarray, count: int = 1) -> None:
        """Append *count* copies of *row* to its nearest bucket.

        The bucket's radius grows to cover the new member; no other
        bucket is touched, so an append is O(nlist) for the centroid
        scan plus O(count) storage.
        """
        row = np.ascontiguousarray(row, dtype=np.float64).reshape(1, -1)
        if row.shape[1] != self.dimension:
            raise ValidationError(
                f"row has dimension {row.shape[1]}, index has {self.dimension}"
            )
        count = int(count)
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        powers = self.metric.powers_matrix(row, self._centroids)[0]
        bucket = int(np.argmin(powers))
        dist = float(self.metric._power_to_distance(powers[bucket : bucket + 1])[0])
        start = self.storage_size
        self._rows.append(np.repeat(row, count, axis=0))
        self._alive.append(np.ones(count, dtype=bool))
        self._assign.append(np.full(count, bucket, dtype=np.int64))
        self.points = self._rows.view
        slots = np.arange(start, start + count, dtype=np.int64)
        self._members[bucket] = np.concatenate([self._members[bucket], slots])
        self._radii[bucket] = max(self._radii[bucket], dist)
        self._n_appended += count

    def remove(self, row: np.ndarray, count: int = 1) -> None:
        """Tombstone *count* live copies of *row* (latest appends first);
        raises when fewer copies exist.  Bucket radii are left as (still
        valid) over-estimates until the next requantize."""
        row = np.ascontiguousarray(row, dtype=np.float64)
        count = int(count)
        alive = self._alive.view
        live = np.flatnonzero(alive)
        matches = live[np.all(self._rows.view[live] == row, axis=1)]
        if matches.shape[0] < count:
            raise ValidationError(
                f"cannot remove {count} more cop(ies) of a row with only "
                f"{matches.shape[0]} left in the index"
            )
        self._alive.assign(matches[matches.shape[0] - count :], False)
        self._n_removed += count

    # -- certificates -----------------------------------------------------

    def _to_surrogate(self, values: np.ndarray) -> np.ndarray:
        """True distances → the metric's surrogate (power) space."""
        p = getattr(self.metric, "p", None)
        if p is None or p == 1 or p is np.inf:  # Hamming / l1 / linf
            return values
        if p == 2:
            return values * values
        return np.power(values, p)

    def _bucket_bounds(self, queries: np.ndarray) -> np.ndarray:
        """Deflated surrogate lower bounds, shape ``(q, nlist)``.

        ``lb[i, b]`` under-estimates the surrogate distance from query
        ``i`` to every point of bucket ``b`` even after the floating-
        point roundoff of the centroid distances (the deflation is what
        makes the certificates sound; see the module docstring).
        """
        dc = self.metric.distances_matrix(queries, self._centroids)
        lb = self._to_surrogate(np.maximum(dc - self._radii[None, :], 0.0))
        return np.maximum(lb * (1.0 - _CERT_REL_SLACK) - _CERT_ABS_SLACK, 0.0)

    def _scan_buckets(
        self,
        x: np.ndarray,
        bounds_row: np.ndarray,
        alive: np.ndarray,
        k: int,
        live_total: int,
        *,
        strict: bool,
    ) -> tuple[list[np.ndarray], list[np.ndarray], bool]:
        """Nearest-first bucket scan with a running k-th-radius certificate.

        Visits buckets in ascending deflated-lower-bound order; before
        each new bucket, once ``k`` live candidates have been scored, the
        next bound is compared against the running k-th smallest
        surrogate ``r_k`` — the buckets being sorted, a single comparison
        certifies every unscanned point at once (``>=`` for value
        queries, strict ``>`` when *strict* so index-order ties are
        reproduced).  Candidate surrogates come from the metric's matrix
        kernel (:meth:`Metric._powers_block` — for l2 the same Gram
        expansion as the dense backend, so certified answers match the
        dense path's floating point bit for bit, not merely on integer
        data).

        Returns ``(slot_parts, power_parts, certified)``.  ``certified``
        is also True when the scan exhausted every bucket (exact by
        exhaustion); it is False only when the scan gave up after
        :data:`_GIVEUP_SCAN_FRACTION` of the live points — the caller
        then runs one vectorized full scan instead.
        """
        rows = self._rows.view
        all_alive = live_total == alive.shape[0]
        order = np.argsort(bounds_row, kind="stable")
        budget = max(k, int(np.ceil(live_total * _GIVEUP_SCAN_FRACTION)))
        x2d = x.reshape(1, -1)
        slot_parts: list[np.ndarray] = []
        power_parts: list[np.ndarray] = []
        best: np.ndarray | None = None  # the k smallest surrogates so far
        r_k = np.inf
        scanned = 0
        for j in range(order.shape[0]):
            if scanned >= k:
                rest = float(bounds_row[order[j]])
                if (rest > r_k) if strict else (rest >= r_k):
                    return slot_parts, power_parts, True
                if scanned >= budget:
                    return slot_parts, power_parts, False
            slots = self._members[order[j]]
            if not all_alive:
                slots = slots[alive[slots]]
            if slots.shape[0] == 0:
                continue
            powers = self.metric._powers_block(x2d, rows[slots])[0]
            slot_parts.append(slots)
            power_parts.append(powers)
            scanned += slots.shape[0]
            pool = powers if best is None else np.concatenate((best, powers))
            if pool.shape[0] >= k:
                pool = np.partition(pool, k - 1)[:k]
                r_k = float(pool[k - 1])
            best = pool
        return slot_parts, power_parts, True  # every live row scanned: exact

    # -- queries ----------------------------------------------------------

    def kth_power(self, x, k: int) -> float:
        """Surrogate (power) distance of the k-th nearest live row to *x*.

        The certified-or-fallback entry point behind the engine's
        Proposition 1 radii; returns ``+inf`` when ``k > size``.
        """
        x = np.ascontiguousarray(x, dtype=np.float64).reshape(1, -1)
        return float(self.kth_power_batch(x, k)[0])

    def kth_power_batch(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Row-wise :meth:`kth_power` over a query matrix.

        The centroid-distance matrix for the whole batch is one
        vectorized kernel call; each query then runs the nearest-first
        certified scan of :meth:`_scan_buckets`.  Values are
        bit-identical to a full scan on integer-valued data because
        candidate powers come from the metric's row-independent matrix
        kernel and the certificate guarantees no closer point was
        skipped.
        """
        self._prepare()
        queries = np.asarray(queries, dtype=np.float64)
        k = int(k)
        q = queries.shape[0]
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if k > self.size:
            return np.full(q, np.inf)
        bounds = self._bucket_bounds(queries)
        alive = self._alive.view
        rows = self._rows.view
        live_total = int(alive.sum())
        live_rows = rows if live_total == alive.shape[0] else None  # on 1st fallback
        out = np.empty(q)
        for i in range(q):
            x = queries[i]
            _, power_parts, certified = self._scan_buckets(
                x, bounds[i], alive, k, live_total, strict=False
            )
            if certified:
                # Value certificate: unscanned mass at exactly r_k
                # cannot move the k-th order statistic, so >= sufficed.
                self.stats["certified"] += 1
                powers = (
                    power_parts[0]
                    if len(power_parts) == 1
                    else np.concatenate(power_parts)
                )
            else:
                self.stats["fallback"] += 1
                if live_rows is None:
                    live_rows = rows[alive]
                powers = self.metric.powers_to(live_rows, x)
            out[i] = float(np.partition(powers, k - 1)[k - 1])
        return out

    def top_powers_batch(self, queries: np.ndarray, need: int) -> np.ndarray:
        """``(q, need)`` matrix of the *need* smallest powers per query.

        Column ``j`` holds the ``(j+1)``-th order-statistic power
        (ascending along each row by construction, ``+inf``-padded when
        fewer than ``need`` live rows exist) — the per-class "top-need"
        block the multiclass engine combines into exact one-vs-rest
        radii without building a merged index.
        """
        queries = np.asarray(queries, dtype=np.float64)
        return np.column_stack(
            [self.kth_power_batch(queries, j) for j in range(1, int(need) + 1)]
        )

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest live rows to *x*: ``(distances, slots)``, ties by slot.

        Returned indices are storage slots (identical to point indices
        until a mutation, stable across tombstoning afterwards);
        tombstoned slots are never returned.  Certification here is
        strict — an unscanned bucket whose bound *ties* the k-th
        candidate could hold a smaller-slot tie winner, so ties fall
        back to the full scan to preserve index-order tie-breaking.
        """
        self._prepare()
        xv, k = self._check_query(x, k)
        alive = self._alive.view
        rows = self._rows.view
        live_total = int(alive.sum())  # _check_query already enforced k <= live
        bounds = self._bucket_bounds(xv.reshape(1, -1))[0]
        slot_parts, power_parts, certified = self._scan_buckets(
            xv, bounds, alive, k, live_total, strict=True
        )
        if certified:
            self.stats["certified"] += 1
            slots = np.concatenate(slot_parts)
            powers = np.concatenate(power_parts)
            by_slot = np.argsort(slots, kind="stable")  # the tie-break order
            slots, powers = slots[by_slot], powers[by_slot]
        else:
            self.stats["fallback"] += 1
            slots = np.flatnonzero(alive)
            powers = self.metric.powers_to(rows[slots], xv)
        top = np.argsort(powers, kind="stable")[:k]
        idx = slots[top]
        return self.metric.distances_to(rows[idx], xv), idx
