"""Nearest-neighbor search substrate.

The paper's experiments rely on a fast NN library (FAISS) for the inner
loop of the Proposition 4 minimal-sufficient-reason algorithm.  This
package provides the offline equivalents:

* :class:`BruteForceIndex` — vectorized exact search, any metric;
* :class:`KDTreeIndex` — a from-scratch KD-tree, exact for lp metrics
  (and Hamming, which embeds into l1 on the hypercube).

Both share the :class:`NNIndex` interface: ``query(x, k)`` returns the
``k`` smallest distances and their point indices, with deterministic
index-order tie-breaking so results are reproducible across backends.
"""

from __future__ import annotations

from .base import NNIndex, build_index
from .brute import BruteForceIndex
from .kdtree import KDTreeIndex

__all__ = ["NNIndex", "BruteForceIndex", "KDTreeIndex", "build_index"]
