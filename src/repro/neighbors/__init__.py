"""Nearest-neighbor search substrate: the engine's index layer.

The paper's experiments rely on a fast NN library (FAISS) for the inner
loop of the Proposition 4 minimal-sufficient-reason algorithm.  This
package provides the offline equivalents, and since the backend-pluggable
:class:`~repro.knn.QueryEngine` it is no longer standalone ablation code:
the engine routes its batch primitives through these indexes (selected by
``backend=`` or the :func:`build_index` auto rule).

* :class:`BruteForceIndex` — vectorized exact search, any metric (the
  engine's ``"dense"`` backend);
* :class:`KDTreeIndex` — a from-scratch KD-tree, exact for lp metrics
  (and Hamming, which embeds into l1 on the hypercube);
* :class:`BitPackedHammingIndex` — packed-word popcount search over
  {0,1}^n, bit-identical to the dense Hamming kernel and several times
  faster (the FAISS-style binary index);
* :class:`IVFIndex` — a certified inverted file: FAISS's
  approximate-first probe plan made exact by a triangle-inequality
  certificate, falling back to a full scan whenever the certificate
  fails (the million-point backend).

The hot inner loops of the dense and bit-packed paths live in
:mod:`repro.neighbors.kernels`, which dispatches between the original
numpy expressions and optional numba-compiled twins (the
``REPRO_KERNELS`` environment variable pins a choice).

All share the :class:`NNIndex` interface: ``query(x, k)`` returns the
``k`` smallest distances and their point indices, with deterministic
index-order tie-breaking so results are reproducible across backends.

The layer is *mutable* end to end (the streaming-updates tentpole):
:class:`GrowableMatrix` gives the brute/dense paths amortized-doubling
appends, :meth:`BitPackedHammingIndex.append` packs new words in place
while removals tombstone storage slots, and :class:`LazyKDTree` overlays
deltas on the last built tree until a staleness threshold triggers a
rebuild — each strategy bit-identical to a from-scratch rebuild (the
``tests/test_fuzz_parity.py`` differential harness enforces this).
"""

from __future__ import annotations

from .base import NNIndex, build_index
from .bitpack import BitPackedHammingIndex
from .brute import BruteForceIndex, GrowableMatrix
from .ivf import IVFIndex
from .kdtree import KDTreeIndex, LazyKDTree

__all__ = [
    "NNIndex",
    "BruteForceIndex",
    "GrowableMatrix",
    "KDTreeIndex",
    "LazyKDTree",
    "BitPackedHammingIndex",
    "IVFIndex",
    "build_index",
]
