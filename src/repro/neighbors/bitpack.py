"""Bit-packed Hamming nearest-neighbor index (popcount on uint64 words).

The paper credits "a library for fast NN-classification such as FAISS"
for the performance of its minimal-SR pipeline; FAISS's binary indexes
store vectors as packed bit strings and compute Hamming distances with
XOR + popcount.  :class:`BitPackedHammingIndex` is the offline
equivalent: points over {0,1}^n are packed with :func:`np.packbits`
into 64-bit words (a 64x size reduction over float64 rows), and a
query/point distance block is ``popcount(q XOR p)`` accumulated over
the words of each row.

Every count is an exact small integer, so the index is bit-identical
to the dense Gram-expansion kernel of
:class:`~repro.metrics.HammingMetric` — the exactness contract the
:class:`~repro.knn.QueryEngine` backend layer relies on.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..metrics import HammingMetric
from ..metrics.hamming import is_binary
from .base import NNIndex

#: query rows per kernel block: keeps the (rows, size) XOR slab and its
#: popcount accumulator cache-resident (measured fastest around 32 rows
#: on a 5000x128 workload; see ``benchmarks/bench_ablation_nn_index.py``).
_QUERY_BLOCK_ROWS = 32

#: the vectorized popcount ufunc arrived in numpy 2.0; older numpys fall
#: back to the dense Gram kernel (the engine's auto rule checks this).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def pack_binary_rows(points: np.ndarray) -> np.ndarray:
    """Pack a (rows, n) binary matrix into a word-major (W, rows) uint64 array.

    ``W = ceil(n / 64)``; trailing pad bits are zero in every row, so they
    never contribute to an XOR popcount.  The word-major layout makes the
    per-word broadcast against a query column read each point word
    contiguously.
    """
    bits = np.packbits(points.astype(np.uint8), axis=1)
    pad = (-bits.shape[1]) % 8
    if pad:
        bits = np.hstack([bits, np.zeros((bits.shape[0], pad), dtype=np.uint8)])
    words = np.ascontiguousarray(bits).view(np.uint64)
    return np.ascontiguousarray(words.T)


def _count_dtype(dimension: int) -> type:
    """Smallest unsigned dtype that can hold a Hamming distance <= n."""
    if dimension <= np.iinfo(np.uint8).max:
        return np.uint8
    if dimension <= np.iinfo(np.uint16).max:
        return np.uint16
    return np.uint32


class BitPackedHammingIndex(NNIndex):
    """Exact Hamming k-NN over {0,1}^n via packed words and popcount.

    Only accepts the Hamming metric and strictly binary points; queries
    must be binary as well (checked per call).  Distances returned by
    :meth:`query` are integral floats, matching
    :meth:`HammingMetric.distances_to` bit for bit.
    """

    def __init__(self, points, metric="hamming"):
        super().__init__(points, metric)
        if not HAVE_BITWISE_COUNT:  # pragma: no cover - numpy >= 2 in CI
            raise ValidationError(
                "BitPackedHammingIndex requires numpy >= 2.0 (np.bitwise_count)"
            )
        if not isinstance(self.metric, HammingMetric):
            raise ValidationError(
                f"BitPackedHammingIndex requires the Hamming metric, got {self.metric.name}"
            )
        if not is_binary(self.points):
            raise ValidationError(
                "BitPackedHammingIndex requires strictly binary (0/1) points"
            )
        self._words = pack_binary_rows(self.points)  # (W, size), word-major
        self._acc_dtype = _count_dtype(self.dimension)

    # -- kernels ---------------------------------------------------------

    def _counts_block(self, query_words: np.ndarray) -> np.ndarray:
        """(rows, size) Hamming counts for one word-major query block."""
        rows = query_words.shape[1]
        counts = np.bitwise_count(query_words[0][:, None] ^ self._words[0][None, :])
        if counts.dtype != self._acc_dtype:
            counts = counts.astype(self._acc_dtype)
        if self._words.shape[0] > 1:
            xor = np.empty((rows, self.size), dtype=np.uint64)
            for w in range(1, self._words.shape[0]):
                np.bitwise_xor(query_words[w][:, None], self._words[w][None, :], out=xor)
                np.add(counts, np.bitwise_count(xor), out=counts, casting="unsafe")
        return counts

    def counts_matrix(self, queries) -> np.ndarray:
        """Full (q, size) integer Hamming-distance matrix, blocked.

        The dtype is the smallest unsigned integer that can hold the
        dimension; callers that need the float64 surrogate-matrix
        contract should use :meth:`powers_matrix`.
        """
        q = self._check_batch(queries)
        out = np.empty((q.shape[0], self.size), dtype=self._acc_dtype)
        for start in range(0, q.shape[0], _QUERY_BLOCK_ROWS):
            block = slice(start, min(start + _QUERY_BLOCK_ROWS, q.shape[0]))
            out[block] = self._counts_block(pack_binary_rows(q[block]))
        return out

    def powers_matrix(self, queries) -> np.ndarray:
        """(q, size) float64 surrogate matrix — bit-identical to the dense
        :meth:`~repro.metrics.Metric.powers_matrix` Hamming kernel."""
        return self.counts_matrix(queries).astype(np.float64)

    # -- NNIndex interface ----------------------------------------------

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest rows to *x*: ``(distances, indices)``, ties by index."""
        xv, k = self._check_query(x, k)
        d = self.counts_matrix(xv.reshape(1, -1))[0]
        order = np.argsort(d, kind="stable")[:k]
        return d[order].astype(np.float64), order

    # -- validation ------------------------------------------------------

    def _check_batch(self, queries) -> np.ndarray:
        q = np.asarray(queries, dtype=np.float64)
        if q.ndim != 2 or q.shape[1] != self.dimension:
            raise ValidationError(
                f"queries must be a (rows, {self.dimension}) matrix, got shape {q.shape}"
            )
        if not is_binary(q):
            raise ValidationError(
                "BitPackedHammingIndex queries must be strictly binary (0/1)"
            )
        return q
