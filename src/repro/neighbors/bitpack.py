"""Bit-packed Hamming nearest-neighbor index (popcount on uint64 words).

The paper credits "a library for fast NN-classification such as FAISS"
for the performance of its minimal-SR pipeline; FAISS's binary indexes
store vectors as packed bit strings and compute Hamming distances with
XOR + popcount.  :class:`BitPackedHammingIndex` is the offline
equivalent: points over {0,1}^n are packed with :func:`np.packbits`
into 64-bit words (a 64x size reduction over float64 rows), and a
query/point distance block is ``popcount(q XOR p)`` accumulated over
the words of each row.

Every count is an exact small integer, so the index is bit-identical
to the dense Gram-expansion kernel of
:class:`~repro.metrics.HammingMetric` — the exactness contract the
:class:`~repro.knn.QueryEngine` backend layer relies on.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..metrics import HammingMetric
from ..metrics.hamming import is_binary
from .base import NNIndex
from .brute import GrowableMatrix

#: query rows per kernel block: keeps the (rows, size) XOR slab and its
#: popcount accumulator cache-resident (measured fastest around 32 rows
#: on a 5000x128 workload; see ``benchmarks/bench_ablation_nn_index.py``).
_QUERY_BLOCK_ROWS = 32

#: the vectorized popcount ufunc arrived in numpy 2.0; older numpys fall
#: back to the dense Gram kernel (the engine's auto rule checks this).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def pack_binary_rows(points: np.ndarray) -> np.ndarray:
    """Pack a (rows, n) binary matrix into a word-major (W, rows) uint64 array.

    ``W = ceil(n / 64)``; trailing pad bits are zero in every row, so they
    never contribute to an XOR popcount.  The word-major layout makes the
    per-word broadcast against a query column read each point word
    contiguously.
    """
    bits = np.packbits(points.astype(np.uint8), axis=1)
    pad = (-bits.shape[1]) % 8
    if pad:
        bits = np.hstack([bits, np.zeros((bits.shape[0], pad), dtype=np.uint8)])
    words = np.ascontiguousarray(bits).view(np.uint64)
    return np.ascontiguousarray(words.T)


def _count_dtype(dimension: int) -> type:
    """Smallest unsigned dtype that can hold a Hamming distance <= n."""
    if dimension <= np.iinfo(np.uint8).max:
        return np.uint8
    if dimension <= np.iinfo(np.uint16).max:
        return np.uint16
    return np.uint32


class BitPackedHammingIndex(NNIndex):
    """Exact Hamming k-NN over {0,1}^n via packed words and popcount.

    Only accepts the Hamming metric and strictly binary points; queries
    must be binary as well (checked per call).  Distances returned by
    :meth:`query` are integral floats, matching
    :meth:`HammingMetric.distances_to` bit for bit.
    """

    def __init__(self, points, metric="hamming"):
        super().__init__(points, metric)
        if not HAVE_BITWISE_COUNT:  # pragma: no cover - numpy >= 2 in CI
            raise ValidationError(
                "BitPackedHammingIndex requires numpy >= 2.0 (np.bitwise_count)"
            )
        if not isinstance(self.metric, HammingMetric):
            raise ValidationError(
                f"BitPackedHammingIndex requires the Hamming metric, got {self.metric.name}"
            )
        if not is_binary(self.points):
            raise ValidationError(
                "BitPackedHammingIndex requires strictly binary (0/1) points"
            )
        # Storage is append-only: `_word_store` holds packed rows in
        # *insertion* order (word-major after transpose), removals only
        # tombstone their slot in `_alive`, and `compact()` reclaims the
        # space once tombstones dominate.  `storage_size` (live + dead
        # slots) is the column count of `counts_matrix`.
        self._word_store = GrowableMatrix(pack_binary_rows(self.points).T)  # (rows, W)
        self._point_store = GrowableMatrix(self.points)
        self._alive = GrowableMatrix(np.ones(self.points.shape[0], dtype=bool))
        self.points = self._point_store.view
        self._acc_dtype = _count_dtype(self.dimension)
        self._words_major: np.ndarray | None = None  # cached (W, storage) layout

    # -- mutable storage -------------------------------------------------

    @property
    def storage_size(self) -> int:
        """Number of storage slots (live rows plus tombstoned ones)."""
        return len(self._word_store)

    @property
    def size(self) -> int:
        """Number of live (non-tombstoned) indexed points."""
        return int(self._alive.view.sum())

    @property
    def dead_fraction(self) -> float:
        """Share of storage slots occupied by tombstones."""
        storage = self.storage_size
        return 0.0 if storage == 0 else 1.0 - self.size / storage

    def append(self, points) -> np.ndarray:
        """Pack and append binary rows; returns their new storage slots.

        Appends land in amortized-doubling storage (the FAISS-style
        "add to a binary index" path): no existing packed word is ever
        touched, so a stream of inserts costs O(rows) packing work each.
        """
        rows = np.asarray(points, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        rows = self._check_batch(rows)
        start = self.storage_size
        self._word_store.append(pack_binary_rows(rows).T)
        self._point_store.append(rows)
        self._alive.append(np.ones(rows.shape[0], dtype=bool))
        self.points = self._point_store.view
        self._words_major = None
        return np.arange(start, start + rows.shape[0], dtype=np.int64)

    def tombstone(self, slots) -> None:
        """Mark storage *slots* dead; their columns stay in the counts
        matrix (callers must not gather them) until :meth:`compact`."""
        idx = np.asarray(slots, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.storage_size:
            raise ValidationError(
                f"slots must be in [0, {self.storage_size}), got {idx.tolist()}"
            )
        alive = self._alive.view
        if not bool(alive[idx].all()):
            raise ValidationError("cannot tombstone an already-dead storage slot")
        self._alive.assign(idx, False)

    def compact(self) -> np.ndarray:
        """Drop tombstoned slots; returns the old-slot → new-slot map.

        Dead slots map to -1.  Callers holding storage-slot arrays (the
        engine's per-class column maps) must remap through the returned
        array.
        """
        alive = np.array(self._alive.view)
        dead = np.flatnonzero(~alive)
        mapping = np.cumsum(alive, dtype=np.int64) - 1
        mapping[~alive] = -1
        if dead.size:
            self._word_store.delete(dead)
            self._point_store.delete(dead)
            self._alive.delete(dead)
            self.points = self._point_store.view
            self._words_major = None
        return mapping

    @property
    def _words(self) -> np.ndarray:
        """Word-major (W, storage) packed layout the kernels consume.

        Rebuilt lazily after a mutation: the contiguous word-major copy
        makes each per-word broadcast read point words sequentially.
        """
        if self._words_major is None:
            self._words_major = np.ascontiguousarray(self._word_store.view.T)
        return self._words_major

    # -- kernels ---------------------------------------------------------

    def _counts_block(self, query_words: np.ndarray, words: np.ndarray) -> np.ndarray:
        """(rows, storage) Hamming counts for one word-major query block.

        Dispatched through the kernel layer: XOR + ``np.bitwise_count``
        broadcasts on the numpy path, a parallel jitted SWAR-popcount
        loop under numba — both produce the same exact integer counts.
        """
        from .kernels import xor_popcount_counts

        return xor_popcount_counts(query_words, words, self._acc_dtype)

    def counts_matrix(self, queries) -> np.ndarray:
        """Full (q, storage_size) integer Hamming-distance matrix, blocked.

        Columns are *storage slots* in insertion order — tombstoned
        slots are still present (their counts are garbage to consumers
        and must not be gathered); the dtype is the smallest unsigned
        integer that can hold the dimension.  Callers that need the
        float64 surrogate-matrix contract should use
        :meth:`powers_matrix`.
        """
        q = self._check_batch(queries)
        words = self._words
        out = np.empty((q.shape[0], self.storage_size), dtype=self._acc_dtype)
        for start in range(0, q.shape[0], _QUERY_BLOCK_ROWS):
            block = slice(start, min(start + _QUERY_BLOCK_ROWS, q.shape[0]))
            out[block] = self._counts_block(pack_binary_rows(q[block]), words)
        return out

    def powers_matrix(self, queries) -> np.ndarray:
        """(q, storage_size) float64 surrogate matrix — bit-identical to the
        dense :meth:`~repro.metrics.Metric.powers_matrix` Hamming kernel."""
        return self.counts_matrix(queries).astype(np.float64)

    # -- NNIndex interface ----------------------------------------------

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest live rows to *x*: ``(distances, slots)``, ties by slot.

        Returned indices are storage slots (stable across tombstoning,
        remapped only by :meth:`compact`); tombstoned slots are never
        returned.
        """
        xv, k = self._check_query(x, k)
        d = self.counts_matrix(xv.reshape(1, -1))[0]
        slots = np.flatnonzero(self._alive.view)
        order = slots[np.argsort(d[slots], kind="stable")[:k]]
        return d[order].astype(np.float64), order

    # -- validation ------------------------------------------------------

    def _check_batch(self, queries) -> np.ndarray:
        q = np.asarray(queries, dtype=np.float64)
        if q.ndim != 2 or q.shape[1] != self.dimension:
            raise ValidationError(
                f"queries must be a (rows, {self.dimension}) matrix, got shape {q.shape}"
            )
        if not is_binary(q):
            raise ValidationError(
                "BitPackedHammingIndex queries must be strictly binary (0/1)"
            )
        return q
