"""Common interface for exact nearest-neighbor indexes."""

from __future__ import annotations

import abc

import numpy as np

from .._validation import as_matrix, as_vector
from ..exceptions import ValidationError
from ..metrics import Metric, get_metric


class NNIndex(abc.ABC):
    """Exact k-nearest-neighbor index over a fixed point set.

    Ties in distance are broken by point index (smallest first), so every
    conforming implementation returns identical results.
    """

    def __init__(self, points, metric="l2"):
        self.points = as_matrix(points, name="points")
        if self.points.shape[0] == 0:
            raise ValidationError("cannot index an empty point set")
        self.metric: Metric = get_metric(metric)

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    def _check_query(self, x, k: int) -> tuple[np.ndarray, int]:
        xv = as_vector(x, name="x")
        if xv.shape[0] != self.dimension:
            raise ValidationError(
                f"query has dimension {xv.shape[0]}, index has {self.dimension}"
            )
        k = int(k)
        if not 1 <= k <= self.size:
            raise ValidationError(f"k must be in [1, {self.size}], got {k}")
        return xv, k

    @abc.abstractmethod
    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest points to x."""

    def nearest(self, x) -> tuple[float, int]:
        """Distance and index of the single nearest point."""
        d, i = self.query(x, 1)
        return float(d[0]), int(i[0])


#: point count above which the auto rule prefers the certified
#: inverted-file index for lp/Hamming workloads that are not already
#: served by bitpack or the KD-tree.  Below it the certificate
#: bookkeeping costs more than the brute scan it saves; above it IVF
#: wins whenever the data clusters and costs one cheap centroid pass
#: otherwise (the fallback makes bad clusterings slow, never wrong) —
#: crossover measured in ``benchmarks/bench_million_point.py``.
IVF_AUTO_MIN_POINTS = 65_536


def build_index(points, metric="l2", *, prefer: str = "auto") -> NNIndex:
    """Pick an index backend for the given workload.

    ``prefer`` may be ``"auto"``, ``"brute"`` (alias ``"dense"``),
    ``"kdtree"``, ``"bitpack"`` or ``"ivf"``.  The automatic rule
    mirrors the FAISS remark in the paper's experimental section: the
    bit-packed popcount index for binary data under Hamming, the
    KD-tree only in low dimensions where its pruning wins, the
    certified inverted file above :data:`IVF_AUTO_MIN_POINTS` (where
    FAISS itself would reach for an IVF plan), and vectorized brute
    force otherwise — in high dimensions (the paper's regime of
    hundreds of features) space-partitioning degenerates to a linear
    scan with extra overhead, the classic curse-of-dimensionality
    behavior measured in ``benchmarks/bench_ablation_nn_index.py``.
    """
    from .bitpack import HAVE_BITWISE_COUNT, BitPackedHammingIndex
    from .brute import BruteForceIndex
    from .ivf import IVFIndex
    from .kdtree import KDTreeIndex

    if prefer in ("brute", "dense"):
        return BruteForceIndex(points, metric)
    if prefer == "kdtree":
        return KDTreeIndex(points, metric)
    if prefer == "bitpack":
        return BitPackedHammingIndex(points, metric)
    if prefer == "ivf":
        return IVFIndex(points, metric)
    if prefer != "auto":
        raise ValidationError(
            f"prefer must be 'auto', 'brute'/'dense', 'kdtree', 'bitpack' "
            f"or 'ivf', got {prefer!r}"
        )
    pts = as_matrix(points, name="points")
    from ..metrics import HammingMetric, LpMetric
    from ..metrics.hamming import is_binary

    if (
        HAVE_BITWISE_COUNT
        and isinstance(get_metric(metric), HammingMetric)
        and is_binary(pts)
    ):
        return BitPackedHammingIndex(pts, metric)
    if pts.shape[1] <= 8 and pts.shape[0] >= 64:
        return KDTreeIndex(pts, metric)
    if pts.shape[0] >= IVF_AUTO_MIN_POINTS and isinstance(
        get_metric(metric), (LpMetric, HammingMetric)
    ):
        return IVFIndex(pts, metric)
    return BruteForceIndex(pts, metric)
