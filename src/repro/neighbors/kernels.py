"""Compiled distance kernels behind the index layer's two hot primitives.

Every batch primitive in the library bottoms out in one of two inner
loops: the *blocked Gram expansion* that turns an l2 (or binary
Hamming) distance block into one matmul, and the *XOR + popcount*
sweep over packed 64-bit words that the bit-packed Hamming index runs.
This module owns both, in two interchangeable implementations:

``numpy``
    the vectorized expressions the metrics and the bit-packed index
    shipped with — BLAS matmuls and :func:`np.bitwise_count` — moved
    here verbatim, so dispatching through this module does not change
    a single bit of any existing result;
``numba``
    JIT-compiled, parallel (``prange``), cache-blocked loop nests over
    the same arithmetic.  On integer-valued data every product and
    partial sum is an exactly representable integer, so the two
    implementations are **bit-identical** there (the regime where the
    paper's exact tie-breaking semantics live); on general floats they
    agree up to summation-order roundoff, the same caveat
    :meth:`~repro.metrics.Metric.powers_matrix` already documents.

Selection happens once at import: ``numba`` when the package is
importable, ``numpy`` otherwise.  The ``REPRO_KERNELS`` environment
variable (``numba`` | ``numpy``) overrides the automatic choice — CI
runs the whole suite under both values — and :func:`select_kernels`
re-resolves it at runtime for tests.  Requesting ``numba`` without the
package installed degrades to ``numpy`` with a warning rather than
failing: the compiled layer is a pure accelerator, never a semantic
dependency (``numba`` ships as the optional ``[perf]`` extra).
"""

from __future__ import annotations

import os
import warnings

import numpy as np

#: environment variable overriding the automatic implementation choice.
KERNELS_ENV = "REPRO_KERNELS"

#: implementation names :func:`select_kernels` accepts.
KERNEL_CHOICES = ("numba", "numpy")


# -- numpy implementations (the library's original expressions) ----------


def _gram_l2_numpy(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """``(rows, m)`` squared-l2 matrix via the BLAS Gram expansion.

    ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b``: exact on integer data,
    clamped at 0 against roundoff on general floats.
    """
    out = (
        np.einsum("ij,ij->i", block, block)[:, None]
        + np.einsum("ij,ij->i", points, points)[None, :]
        - 2.0 * (block @ points.T)
    )
    np.maximum(out, 0.0, out=out)
    return out


def _gram_hamming_numpy(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """``(rows, m)`` Hamming matrix over {0,1} rows via one BLAS matmul.

    On {0,1} vectors ``|a - b| = a + b - 2ab`` componentwise; every
    intermediate is an exactly representable integer.
    """
    return (
        block.sum(axis=1)[:, None]
        + points.sum(axis=1)[None, :]
        - 2.0 * (block @ points.T)
    )


def _xor_popcount_numpy(
    query_words: np.ndarray, point_words: np.ndarray, acc_dtype
) -> np.ndarray:
    """``(q, m)`` Hamming counts between word-major packed uint64 layouts.

    Both operands are ``(W, rows)`` word-major: word ``w`` of every row
    is contiguous, so each per-word broadcast reads point words
    sequentially.  Counts accumulate in *acc_dtype*, the smallest
    unsigned integer that can hold the dimension.
    """
    rows = query_words.shape[1]
    counts = np.bitwise_count(query_words[0][:, None] ^ point_words[0][None, :])
    if counts.dtype != acc_dtype:
        counts = counts.astype(acc_dtype)
    if point_words.shape[0] > 1:
        xor = np.empty((rows, point_words.shape[1]), dtype=np.uint64)
        for w in range(1, point_words.shape[0]):
            np.bitwise_xor(query_words[w][:, None], point_words[w][None, :], out=xor)
            np.add(counts, np.bitwise_count(xor), out=counts, casting="unsafe")
    return counts


_NUMPY_IMPL = {
    "gram_l2": _gram_l2_numpy,
    "gram_hamming": _gram_hamming_numpy,
    "xor_popcount": _xor_popcount_numpy,
}


# -- numba implementations (compiled twins of the same arithmetic) -------

try:  # pragma: no cover - exercised only where the [perf] extra is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container-default path
    _numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - compiled twins, exercised under [perf] CI

    #: rows of ``points`` per cache block of the jitted Gram kernels —
    #: keeps one (block, tile) accumulator strip L2-resident.
    _JIT_TILE = 256

    @_numba.njit(parallel=True, fastmath=False, cache=True)
    def _gram_l2_jit(block, points, out):  # noqa: ANN001 - numba signature
        """Parallel blocked ||a||^2 + ||b||^2 - 2 a.b with a 0 clamp."""
        m = block.shape[0]
        n = points.shape[0]
        d = block.shape[1]
        bb = np.empty(n, dtype=np.float64)
        for j in range(n):
            s = 0.0
            for t in range(d):
                s += points[j, t] * points[j, t]
            bb[j] = s
        for i in _numba.prange(m):
            aa = 0.0
            for t in range(d):
                aa += block[i, t] * block[i, t]
            for j0 in range(0, n, _JIT_TILE):
                j1 = min(j0 + _JIT_TILE, n)
                for j in range(j0, j1):
                    dot = 0.0
                    for t in range(d):
                        dot += block[i, t] * points[j, t]
                    v = aa + bb[j] - 2.0 * dot
                    out[i, j] = v if v > 0.0 else 0.0

    @_numba.njit(parallel=True, fastmath=False, cache=True)
    def _gram_hamming_jit(block, points, out):  # noqa: ANN001 - numba signature
        """Parallel blocked a.sum + b.sum - 2 a.b over {0,1} rows."""
        m = block.shape[0]
        n = points.shape[0]
        d = block.shape[1]
        bs = np.empty(n, dtype=np.float64)
        for j in range(n):
            s = 0.0
            for t in range(d):
                s += points[j, t]
            bs[j] = s
        for i in _numba.prange(m):
            a = 0.0
            for t in range(d):
                a += block[i, t]
            for j0 in range(0, n, _JIT_TILE):
                j1 = min(j0 + _JIT_TILE, n)
                for j in range(j0, j1):
                    dot = 0.0
                    for t in range(d):
                        dot += block[i, t] * points[j, t]
                    out[i, j] = a + bs[j] - 2.0 * dot

    @_numba.njit(parallel=True, cache=True)
    def _xor_popcount_jit(query_words, point_words, out):  # noqa: ANN001
        """Parallel XOR + SWAR-popcount over word-major packed layouts."""
        w_count = query_words.shape[0]
        q = query_words.shape[1]
        n = point_words.shape[1]
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        s1 = np.uint64(1)
        s2 = np.uint64(2)
        s4 = np.uint64(4)
        s56 = np.uint64(56)
        for i in _numba.prange(q):
            for j in range(n):
                total = np.uint64(0)
                for w in range(w_count):
                    x = query_words[w, i] ^ point_words[w, j]
                    x = x - ((x >> s1) & m1)
                    x = (x & m2) + ((x >> s2) & m2)
                    x = (x + (x >> s4)) & m4
                    total += (x * h01) >> s56
                out[i, j] = total

    def _gram_l2_numba(block: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Allocate-and-fill wrapper around the jitted l2 Gram kernel."""
        out = np.empty((block.shape[0], points.shape[0]), dtype=np.float64)
        if out.size:
            _gram_l2_jit(
                np.ascontiguousarray(block), np.ascontiguousarray(points), out
            )
        return out

    def _gram_hamming_numba(block: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Allocate-and-fill wrapper around the jitted Hamming Gram kernel."""
        out = np.empty((block.shape[0], points.shape[0]), dtype=np.float64)
        if out.size:
            _gram_hamming_jit(
                np.ascontiguousarray(block), np.ascontiguousarray(points), out
            )
        return out

    def _xor_popcount_numba(
        query_words: np.ndarray, point_words: np.ndarray, acc_dtype
    ) -> np.ndarray:
        """Allocate-and-fill wrapper around the jitted popcount kernel."""
        out = np.empty(
            (query_words.shape[1], point_words.shape[1]), dtype=acc_dtype
        )
        if out.size:
            _xor_popcount_jit(
                np.ascontiguousarray(query_words),
                np.ascontiguousarray(point_words),
                out,
            )
        return out

    _NUMBA_IMPL = {
        "gram_l2": _gram_l2_numba,
        "gram_hamming": _gram_hamming_numba,
        "xor_popcount": _xor_popcount_numba,
    }
else:
    _NUMBA_IMPL = None

IMPLEMENTATIONS = {"numpy": _NUMPY_IMPL}
if _NUMBA_IMPL is not None:  # pragma: no cover - [perf] CI only
    IMPLEMENTATIONS["numba"] = _NUMBA_IMPL

_active_name = "numpy"
_active = _NUMPY_IMPL


def select_kernels(name: str | None = None) -> str:
    """Resolve and activate a kernel implementation; returns its name.

    ``None`` re-reads :data:`KERNELS_ENV` and falls back to the
    automatic choice (``numba`` when available, else ``numpy``).  An
    unknown or unavailable request degrades to ``numpy`` with a
    :class:`RuntimeWarning` — kernels accelerate, they never gate.
    """
    global _active_name, _active
    requested = name if name is not None else os.environ.get(KERNELS_ENV)
    if requested is not None and requested not in KERNEL_CHOICES:
        warnings.warn(
            f"{KERNELS_ENV}={requested!r} is not one of {KERNEL_CHOICES}; "
            "falling back to automatic kernel selection",
            RuntimeWarning,
            stacklevel=2,
        )
        requested = None
    if requested is None:
        resolved = "numba" if HAVE_NUMBA else "numpy"
    elif requested == "numba" and not HAVE_NUMBA:
        warnings.warn(
            "REPRO_KERNELS=numba requested but numba is not installed "
            "(pip install 'repro-knn[perf]'); using the numpy kernels",
            RuntimeWarning,
            stacklevel=2,
        )
        resolved = "numpy"
    else:
        resolved = requested
    _active_name = resolved
    _active = IMPLEMENTATIONS[resolved]
    return resolved


def kernels_in_use() -> str:
    """Name of the active implementation (``"numba"`` or ``"numpy"``)."""
    return _active_name


# -- dispatching entry points (what the metrics and indexes call) --------


def gram_l2_powers(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared-l2 surrogate matrix for one (block, points) pair."""
    return _active["gram_l2"](block, points)


def gram_hamming_counts(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Hamming-count matrix for one binary (block, points) pair."""
    return _active["gram_hamming"](block, points)


def xor_popcount_counts(
    query_words: np.ndarray, point_words: np.ndarray, acc_dtype
) -> np.ndarray:
    """Packed-word Hamming counts for word-major uint64 layouts."""
    return _active["xor_popcount"](query_words, point_words, acc_dtype)


# Resolve once at import (the documented default behavior); tests and
# embedders re-resolve explicitly via select_kernels().
select_kernels()
