"""Vectorized brute-force nearest-neighbor search."""

from __future__ import annotations

import numpy as np

from .base import NNIndex


class BruteForceIndex(NNIndex):
    """Exact k-NN by computing every distance in one numpy pass.

    This is the workhorse backend in the paper's regime (hundreds of
    dimensions), where space-partitioning trees degenerate to linear
    scans with extra overhead.
    """

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest rows to *x*: ``(distances, indices)``, ties by index."""
        xv, k = self._check_query(x, k)
        d = self.metric.distances_to(self.points, xv)
        # A stable argsort breaks distance ties by point index, which is
        # the interface contract (argpartition would not preserve it for
        # ties straddling the k-th position).
        order = np.argsort(d, kind="stable")[:k]
        return d[order], order
