"""Vectorized brute-force nearest-neighbor search, with mutable storage.

Streaming workloads mutate their training set one small batch at a
time; rebuilding a dense matrix per mutation would turn every insert
into an O(m·n) copy.  :class:`GrowableMatrix` is the storage primitive
the brute/dense paths use instead: appends land in pre-reserved
capacity that doubles amortizedly (so a stream of r single-row inserts
costs O(r) row copies total, not O(r·m)), while removals compact in
place preserving row order — order is observable through tie-breaking,
so it must survive mutation bit for bit.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix
from ..exceptions import ValidationError
from .base import NNIndex


class GrowableMatrix:
    """Row store with amortized-doubling append and order-preserving delete.

    Works for 2-D float64 point matrices and 1-D int64 multiplicity
    vectors alike: capacity grows along the first axis only.  The
    :attr:`view` of the live rows is read-only, so callers can hand it
    to kernels without defensive copies.
    """

    def __init__(self, rows: np.ndarray):
        self._buf = np.array(rows, order="C", copy=True)
        self._n = self._buf.shape[0]

    @property
    def view(self) -> np.ndarray:
        """Read-only view of the current rows (no copy)."""
        out = self._buf[: self._n]
        out.setflags(write=False)
        return out

    def __len__(self) -> int:
        return self._n

    def append(self, rows: np.ndarray) -> None:
        """Append *rows* (same trailing shape), doubling capacity as needed."""
        rows = np.asarray(rows, dtype=self._buf.dtype)
        extra = rows.shape[0]
        if self._n + extra > self._buf.shape[0]:
            capacity = max(2 * self._buf.shape[0], self._n + extra, 4)
            grown = np.empty((capacity,) + self._buf.shape[1:], dtype=self._buf.dtype)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : self._n + extra] = rows
        self._n += extra

    def assign(self, indices, values) -> None:
        """Overwrite the listed live rows in place."""
        self._buf[: self._n][np.asarray(indices, dtype=np.int64)] = values

    def delete(self, indices) -> None:
        """Remove the listed row indices, preserving the order of the rest."""
        keep = np.ones(self._n, dtype=bool)
        keep[np.asarray(indices, dtype=np.int64)] = False
        survivors = self._buf[: self._n][keep]  # fancy indexing: a fresh copy
        self._buf[: survivors.shape[0]] = survivors
        self._n = survivors.shape[0]

    def __getstate__(self) -> dict:
        """Pickle only the live rows, dropping reserved capacity."""
        return {"rows": np.array(self._buf[: self._n])}

    def __setstate__(self, state: dict) -> None:
        self._buf = state["rows"]
        self._n = self._buf.shape[0]


class BruteForceIndex(NNIndex):
    """Exact k-NN by computing every distance in one numpy pass.

    This is the workhorse backend in the paper's regime (hundreds of
    dimensions), where space-partitioning trees degenerate to linear
    scans with extra overhead.  The point set is mutable: :meth:`add`
    appends into amortized-doubling storage and :meth:`remove` compacts
    in place, so a streaming workload never pays a full rebuild.
    """

    def __init__(self, points, metric="l2"):
        super().__init__(points, metric)
        self._store = GrowableMatrix(self.points)
        self.points = self._store.view

    def add(self, points) -> None:
        """Append rows to the indexed set (amortized O(rows) copies)."""
        rows = as_matrix(points, name="points", dimension=self.dimension)
        self._store.append(rows)
        self.points = self._store.view

    def remove(self, indices) -> None:
        """Drop the listed row indices; later rows shift down, order kept."""
        idx = np.unique(np.asarray(indices, dtype=np.int64).ravel())
        if idx.size and (idx[0] < 0 or idx[-1] >= self.size):
            raise ValidationError(
                f"indices must be in [0, {self.size}), got {idx.tolist()}"
            )
        if idx.size >= self.size:
            raise ValidationError("cannot remove every point from an index")
        self._store.delete(idx)
        self.points = self._store.view

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest rows to *x*: ``(distances, indices)``, ties by index."""
        xv, k = self._check_query(x, k)
        d = self.metric.distances_to(self.points, xv)
        # A stable argsort breaks distance ties by point index, which is
        # the interface contract (argpartition would not preserve it for
        # ties straddling the k-th position).
        order = np.argsort(d, kind="stable")[:k]
        return d[order], order
