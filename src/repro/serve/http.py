"""Stdlib-only HTTP front end for the explanation service.

``repro-knn serve --port 8000`` (or :func:`serve_http` from code) wraps
an :class:`~repro.serve.service.ExplanationService` in a
``ThreadingHTTPServer`` speaking JSON:

==============  ============================  ================================
method          path                          body / response
==============  ============================  ================================
GET             ``/healthz``                  ``{"status": "ok", "datasets":
                                              N}``
GET             ``/v1/stats``                 service counters + cache stats
POST            ``/v1/datasets``              ``{"positives": [[...]],
                                              "negatives": [[...]],
                                              "discrete": bool, ...}`` →
                                              ``{"fingerprint": ...,
                                              "dimension": n}``
POST            ``/v1/datasets/<fp>/points``  ``{"points": [[...]],
                                              "labels": [...],
                                              "multiplicities": [...]}`` →
                                              streaming insert; returns the
                                              new ``<fp>@vN`` fingerprint
DELETE          ``/v1/datasets/<fp>/points``  same body → streaming removal
DELETE          ``/v1/datasets/<fp>``         drop dataset + invalidate its
                                              cache (``<fp>@vN`` of a
                                              superseded version sweeps just
                                              that version's entries)
POST            ``/v1/explain``               ``{"fingerprint", "method",
                                              "instance" | "instances",
                                              "params"}`` → answer(s)
==============  ============================  ================================

Fingerprints in paths may be bare (the stable content hash of the
dataset at registration — always addresses the *current* version) or
versioned (``<fp>@vN``); both forms are validated strictly before they
can reach the cache's disk sweep.

Each HTTP request is handled on its own thread, but every explanation
funnels through **one** asyncio loop (a daemon thread) running the
service's micro-batching queue — so concurrent HTTP clients asking
compatible questions share vectorized engine calls, exactly like
in-process :meth:`~repro.serve.service.ExplanationService.asubmit`
callers.  Non-finite floats are encoded as the strings ``"Infinity"`` /
``"-Infinity"`` / ``"NaN"`` so the wire format stays strict JSON.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..exceptions import ReproError, ValidationError
from ..knn import Dataset
from .service import ExplanationService

#: largest accepted request body (16 MiB) — a serving process should not
#: be OOM-able by one oversized POST.
MAX_BODY_BYTES = 16 << 20

#: a well-formed URL fingerprint: 64 hex chars, optionally ``@v<digits>``.
#: Anything else is rejected before it can reach the cache's disk sweep
#: (no wildcard deletion via the URL), without loosening the hex check.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}(@v[0-9]+)?$")


def jsonable(obj):
    """Recursively convert *obj* into strict-JSON-encodable values.

    numpy scalars/arrays become python scalars/lists; non-finite floats
    become ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` strings (strict
    JSON has no literal for them and many clients reject the python
    extensions).
    """
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return [jsonable(value) for value in obj.tolist()]
    if isinstance(obj, (np.integer, np.bool_)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        return value
    return obj


class ExplanationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service and one asyncio loop.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`port`.  :meth:`shutdown` stops both the HTTP threads and the
    batching loop.
    """

    daemon_threads = True

    def __init__(
        self, service: ExplanationService, host: str = "127.0.0.1", port: int = 8000
    ):
        super().__init__((host, port), _Handler)
        self.service = service
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._loop_thread.start()

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    def shutdown(self) -> None:
        """Stop serving HTTP and wind down the batching loop."""
        super().shutdown()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=5)

    def explain(self, calls: list[dict]):
        """Run a list of asubmit kwargs through the shared batching loop."""

        async def gather():
            return await asyncio.gather(
                *(self.service.asubmit(**call) for call in calls)
            )

        return asyncio.run_coroutine_threadsafe(gather(), self.loop).result()


class _Handler(BaseHTTPRequestHandler):
    """Route table and JSON plumbing for :class:`ExplanationHTTPServer`."""

    server: ExplanationHTTPServer
    protocol_version = "HTTP/1.1"

    # -- verbs -----------------------------------------------------------

    def do_GET(self) -> None:
        """``/healthz`` and ``/v1/stats``."""
        service = self.server.service
        if self.path == "/healthz":
            self._reply(
                200, {"status": "ok", "datasets": len(service.fingerprints())}
            )
        elif self.path == "/v1/stats":
            self._reply(200, service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        """``/v1/datasets`` (register), ``.../points`` (insert), ``/v1/explain``."""
        try:
            body = self._read_json()
            fingerprint = self._points_path()
            if self.path == "/v1/datasets":
                self._reply(200, self._register_dataset(body))
            elif fingerprint is not None:
                self._reply(200, self._mutate_dataset(fingerprint, body, add=True))
            elif self.path == "/v1/explain":
                self._reply(200, self._explain(body))
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})
        except (ValidationError, ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc) or exc.__class__.__name__})
        except ReproError as exc:
            self._reply(422, {"error": str(exc)})

    def do_DELETE(self) -> None:
        """``/v1/datasets/<fp>`` (drop) and ``/v1/datasets/<fp>/points``."""
        prefix = "/v1/datasets/"
        if not self.path.startswith(prefix):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            fingerprint = self._points_path()
            if fingerprint is not None:
                body = self._read_json()
                self._reply(200, self._mutate_dataset(fingerprint, body, add=False))
                return
            fingerprint = self._checked_fingerprint(self.path[len(prefix) :])
            removed = self.server.service.remove_dataset(fingerprint)
            self._reply(200, {"fingerprint": fingerprint, "invalidated": removed})
        except (ValidationError, ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc) or exc.__class__.__name__})
        except ReproError as exc:
            self._reply(422, {"error": str(exc)})

    # -- endpoint bodies --------------------------------------------------

    def _points_path(self) -> str | None:
        """The validated fingerprint of a ``/v1/datasets/<fp>/points`` path.

        ``None`` when the path has a different shape; raises
        :class:`~repro.exceptions.ValidationError` on a malformed
        fingerprint between the markers.
        """
        prefix, suffix = "/v1/datasets/", "/points"
        if not (self.path.startswith(prefix) and self.path.endswith(suffix)):
            return None
        middle = self.path[len(prefix) : -len(suffix)]
        if not middle:
            return None
        return self._checked_fingerprint(middle)

    @staticmethod
    def _checked_fingerprint(fingerprint: str) -> str:
        """Reject anything but ``<64 hex>`` or ``<64 hex>@v<digits>``."""
        if _FINGERPRINT_RE.match(fingerprint) is None:
            raise ValidationError(
                "malformed fingerprint (want 64 hex chars, optionally @v<N>)"
            )
        return fingerprint

    def _mutate_dataset(self, fingerprint: str, body: dict, *, add: bool) -> dict:
        """Apply one streaming insert/remove batch to a registered dataset."""
        if "points" not in body or "labels" not in body:
            raise ValidationError("body needs 'points' and 'labels'")
        mutate = (
            self.server.service.add_points if add else self.server.service.remove_points
        )
        return mutate(
            fingerprint,
            body["points"],
            body["labels"],
            multiplicities=body.get("multiplicities"),
        )

    def _register_dataset(self, body: dict) -> dict:
        """Build and register a Dataset from a JSON body."""
        data = Dataset(
            body["positives"],
            body["negatives"],
            positive_multiplicities=body.get("positive_multiplicities"),
            negative_multiplicities=body.get("negative_multiplicities"),
            discrete=bool(body.get("discrete", False)),
        )
        fingerprint = self.server.service.add_dataset(data)
        return {
            "fingerprint": fingerprint,
            "dimension": data.dimension,
            "n_positive": data.n_positive,
            "n_negative": data.n_negative,
        }

    def _explain(self, body: dict) -> dict:
        """Answer one instance or a batch through the shared asyncio loop."""
        fingerprint = body["fingerprint"]
        method = body["method"]
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ValidationError("params must be a JSON object")
        if "instances" in body:
            instances = body["instances"]
            single = False
        elif "instance" in body:
            instances = [body["instance"]]
            single = True
        else:
            raise ValidationError("body needs 'instance' or 'instances'")
        calls = [
            {
                "fingerprint": fingerprint,
                "method": method,
                "instance": instance,
                **params,
            }
            for instance in instances
        ]
        responses = self.server.explain(calls)
        results = [
            {
                "result": response.payload,
                "cached": response.cached,
                "elapsed_ms": response.elapsed_s * 1000.0,
            }
            for response in responses
        ]
        return results[0] if single else {"results": results}

    # -- plumbing ---------------------------------------------------------

    def _read_json(self) -> dict:
        """Decode the request body as a JSON object (size-capped)."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length) if length else b""
        body = json.loads(raw.decode("utf-8") or "{}")
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _reply(self, status: int, payload: dict) -> None:
        """Serialize *payload* as JSON and finish the response."""
        blob = json.dumps(jsonable(payload)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (stats live at /v1/stats)."""


def serve_http(
    service: ExplanationService, *, host: str = "127.0.0.1", port: int = 8000
) -> ExplanationHTTPServer:
    """Bind an :class:`ExplanationHTTPServer`; call ``serve_forever()`` on it.

    Returned unstarted so callers (tests, the CLI) control the serving
    thread; ``server.port`` holds the bound port when ``port=0``.
    """
    return ExplanationHTTPServer(service, host=host, port=port)
