"""Stdlib-only HTTP front end for single-process and clustered serving.

``repro serve --port 8000`` (or :func:`serve_http` from code) wraps an
:class:`~repro.serve.service.ExplanationService` **or** a
:class:`~repro.serve.cluster.ClusterService` in a
``ThreadingHTTPServer`` speaking JSON.  The ``/v2`` resource scheme is
the primary surface; every ``/v1`` route delegates to the *same*
handler, so existing clients keep working unchanged:

==============  ==============================  ==============================
method          path                            body / response
==============  ==============================  ==============================
GET             ``/healthz``                    ``{"status": "ok",
                                                "datasets": N}``
GET             ``/metrics``                    Prometheus text exposition of
                                                every serving/durability
                                                series (also reachable as
                                                ``/v2/metrics``); see
                                                ``docs/metrics.md``
GET             ``/v2/stats``                   service counters + cache stats
GET             ``/v2/cluster``                 topology: workers, replicas,
                                                placement, queue depths
POST            ``/v2/datasets``                ``{"positives", "negatives",
                                                "discrete", ...}`` →
                                                ``{"fingerprint", ...}``
GET             ``/v2/datasets/<fp>``           current metadata: versioned
                                                fingerprint, shape, counts
DELETE          ``/v2/datasets/<fp>``           drop dataset + invalidate its
                                                cache (a superseded
                                                ``<fp>@vN`` sweeps just that
                                                version's entries)
POST            ``/v2/datasets/<fp>/points``    ``{"points", "labels",
                                                "multiplicities"}`` →
                                                streaming insert; returns the
                                                new ``<fp>@vN`` fingerprint
DELETE          ``/v2/datasets/<fp>/points``    same body → streaming removal
POST            ``/v2/explain``                 one envelope for single and
                                                batch: ``{"fingerprint",
                                                "method", "params",
                                                "instances"}`` →
                                                ``{"results": [...]}``
==============  ==============================  ==============================

``/v1`` differences (kept for one release): ``POST /v1/explain`` also
accepts a scalar ``"instance"`` and then answers with a flat
``{"result", "cached", "elapsed_ms"}`` instead of the ``"results"``
list.

**Errors** are one envelope everywhere — ``{"error": {"type",
"message", "detail"}}`` plus the deprecated flat compat fields — with
the status mapping documented in :mod:`repro.serve.errors`
(``OverloadedError`` → 429, ``UnknownDatasetError`` → 404, validation →
400, other library errors → 422, internal → 500).  Error replies carry
a ``Deprecation`` header while the compat fields last.

Fingerprints in paths may be bare (always the *current* version) or
versioned (``<fp>@vN``); both are validated strictly before they can
reach the cache's disk sweep.

**Provenance**: every response carries an ``X-Request-ID`` header — the
caller's own header value when supplied, a fresh
:func:`~repro.serve.metrics.new_request_id` otherwise.  The same id is
threaded into the serving target (and, for a cluster, across the pipe
into the worker's ``explain_served`` log record), so one grep over the
structured logs follows a request front → worker → solver.

Each HTTP request is handled on its own thread.  With a single-process
service every explanation funnels through **one** asyncio loop (a
daemon thread) running the micro-batching queue, so concurrent clients
share vectorized engine calls; with a cluster the handler threads call
:meth:`~repro.serve.cluster.ClusterService.explain` directly — the
scatter/gather front is already thread-safe and the workers do the
batching.  Non-finite floats are encoded as the strings ``"Infinity"``
/ ``"-Infinity"`` / ``"NaN"`` so the wire format stays strict JSON.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

import numpy as np

from ..exceptions import ValidationError
from ..knn import Dataset, MultiClassDataset
from .errors import DEPRECATION_HEADER, error_envelope, error_payload, status_for
from .metrics import PROMETHEUS_CONTENT_TYPE, StructuredLogger, new_request_id

#: largest accepted request body (16 MiB) — a serving process should not
#: be OOM-able by one oversized POST.
MAX_BODY_BYTES = 16 << 20

#: a well-formed URL fingerprint: 64 hex chars, optionally ``@v<digits>``.
#: Anything else is rejected before it can reach the cache's disk sweep
#: (no wildcard deletion via the URL), without loosening the hex check.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}(@v[0-9]+)?$")

#: path versions sharing one handler table (the whole point of /v2).
_API_VERSIONS = ("v1", "v2")


def jsonable(obj):
    """Recursively convert *obj* into strict-JSON-encodable values.

    numpy scalars/arrays become python scalars/lists; non-finite floats
    become ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` strings (strict
    JSON has no literal for them and many clients reject the python
    extensions).
    """
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return [jsonable(value) for value in obj.tolist()]
    if isinstance(obj, (np.integer, np.bool_)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        return value
    return obj


class _NotFound(ValidationError):
    """Internal marker for an unroutable path (mapped to a plain 404)."""


class ExplanationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one serving target.

    The target is an :class:`ExplanationService` (micro-batched through
    one asyncio loop) or a
    :class:`~repro.serve.cluster.ClusterService` (scatter/gather,
    called directly).  ``port=0`` binds an ephemeral port; read the
    actual one from :attr:`port`.  :meth:`shutdown` stops the HTTP
    threads, the batching loop, and closes the target.
    """

    daemon_threads = True

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8000):
        super().__init__((host, port), _Handler)
        self.service = service
        # Share the target's structured-log stream (silent when the
        # target has none — libraries stay quiet by default).
        target_log = getattr(service, "log", None)
        if isinstance(target_log, StructuredLogger):
            self.log = target_log.child("http")
        else:
            self.log = StructuredLogger(None, component="http")
        self.loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        if hasattr(service, "asubmit"):  # single-process: shared batching loop
            self.loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self.loop.run_forever, name="repro-serve-loop", daemon=True
            )
            self._loop_thread.start()

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    def shutdown(self) -> None:
        """Stop serving HTTP, wind down the batching loop, close the target."""
        super().shutdown()
        if self.loop is not None:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._loop_thread.join(timeout=5)
        close = getattr(self.service, "close", None)
        if close is not None:
            close()

    def explain(
        self, fingerprint: str, method: str, instances, params,
        request_id: str | None = None,
    ) -> list[dict]:
        """Serve one homogeneous batch; returns wire-ready result dicts.

        Single-process targets go through the shared asyncio
        micro-batching loop (concurrent HTTP clients share kernel
        calls); clusters are called directly on the handler thread.
        ``request_id`` rides along either way, so the target's
        ``explain_served`` record carries the id stamped on the HTTP
        response.
        """
        if self.loop is None:
            return self.service.explain(
                fingerprint, method, instances, params, request_id
            )

        async def gather():
            return await asyncio.gather(
                *(
                    self.service.asubmit(fingerprint, method, instance, **params)
                    for instance in instances
                )
            )

        responses = asyncio.run_coroutine_threadsafe(gather(), self.loop).result()
        if self.service.log.enabled:
            # The asyncio path bypasses ExplanationService.explain, so
            # emit its provenance record here.
            self.service.log.log(
                "explain_served",
                request_id=request_id,
                method=method,
                instances=len(responses),
                cached=sum(1 for r in responses if r.cached),
                errors=sum(1 for r in responses if not r.ok),
            )
        return [
            {
                "result": response.payload,
                "cached": response.cached,
                "elapsed_ms": response.elapsed_s * 1000.0,
            }
            for response in responses
        ]


class _Handler(BaseHTTPRequestHandler):
    """Route table and JSON plumbing for :class:`ExplanationHTTPServer`."""

    server: ExplanationHTTPServer
    protocol_version = "HTTP/1.1"

    # -- verbs -----------------------------------------------------------

    def do_GET(self) -> None:
        """Route a GET through the shared version-agnostic handler table."""
        self._handle("GET")

    def do_POST(self) -> None:
        """Route a POST through the shared version-agnostic handler table."""
        self._handle("POST")

    def do_DELETE(self) -> None:
        """Route a DELETE through the shared version-agnostic handler table."""
        self._handle("DELETE")

    def _handle(self, verb: str) -> None:
        """Dispatch one request and map any exception to the error surface.

        Stamps every response with an ``X-Request-ID`` (honoring a
        caller-supplied header) and emits one structured
        ``http_request`` access record when the server has a log
        stream.
        """
        start = perf_counter()
        self.request_id = self.headers.get("X-Request-ID") or new_request_id()
        self._status = 500
        try:
            segments = [part for part in self.path.split("/") if part]
            if verb == "GET" and self._is_metrics_path(segments):
                self._reply_metrics()
            else:
                self._reply(200, self._route(verb, segments))
        except _NotFound:
            self._reply_error(
                _NotFound(f"unknown path {self.path!r}"), status=404
            )
        except Exception as exc:
            self._reply_error(exc)
        finally:
            if self.server.log.enabled:
                self.server.log.log(
                    "http_request",
                    request_id=self.request_id,
                    verb=verb,
                    path=self.path,
                    status=self._status,
                    elapsed_ms=round((perf_counter() - start) * 1000.0, 3),
                )

    @staticmethod
    def _is_metrics_path(segments: list[str]) -> bool:
        """``/metrics`` (scrape-config friendly) or ``/v1|v2/metrics``."""
        return segments == ["metrics"] or (
            len(segments) == 2
            and segments[0] in _API_VERSIONS
            and segments[1] == "metrics"
        )

    def _route(self, verb: str, segments: list[str]) -> dict:
        """The one handler table shared by ``/v1`` and ``/v2``."""
        if segments == ["healthz"] and verb == "GET":
            return {
                "status": "ok",
                "datasets": len(self.server.service.fingerprints()),
            }
        if not segments or segments[0] not in _API_VERSIONS:
            raise _NotFound()
        version, rest = segments[0], segments[1:]
        if rest == ["stats"] and verb == "GET":
            return self.server.service.stats()
        if rest == ["cluster"] and verb == "GET":
            return self._cluster_info()
        if rest == ["explain"] and verb == "POST":
            return self._explain(self._read_json(), version)
        if rest == ["datasets"] and verb == "POST":
            return self._register_dataset(self._read_json())
        if len(rest) == 2 and rest[0] == "datasets":
            fingerprint = self._checked_fingerprint(rest[1])
            if verb == "GET":
                return self.server.service.describe(fingerprint)
            if verb == "DELETE":
                removed = self.server.service.remove_dataset(fingerprint)
                return {"fingerprint": fingerprint, "invalidated": removed}
        if len(rest) == 3 and rest[0] == "datasets" and rest[2] == "points":
            fingerprint = self._checked_fingerprint(rest[1])
            if verb in ("POST", "DELETE"):
                return self._mutate_dataset(
                    fingerprint, self._read_json(), add=verb == "POST"
                )
        raise _NotFound()

    # -- endpoint bodies --------------------------------------------------

    @staticmethod
    def _checked_fingerprint(fingerprint: str) -> str:
        """Reject anything but ``<64 hex>`` or ``<64 hex>@v<digits>``."""
        if _FINGERPRINT_RE.match(fingerprint) is None:
            raise ValidationError(
                "malformed fingerprint (want 64 hex chars, optionally @v<N>)"
            )
        return fingerprint

    def _cluster_info(self) -> dict:
        """``/v2/cluster``: topology of a cluster, or the 1-process shape."""
        info = getattr(self.server.service, "cluster_info", None)
        if info is None:
            return {"mode": "single-process", "workers": 1, "replicas": 1}
        return {"mode": "cluster", **info()}

    def _mutate_dataset(self, fingerprint: str, body: dict, *, add: bool) -> dict:
        """Apply one streaming insert/remove batch to a registered dataset."""
        if "points" not in body or "labels" not in body:
            raise ValidationError("body needs 'points' and 'labels'")
        mutate = (
            self.server.service.add_points if add else self.server.service.remove_points
        )
        return mutate(
            fingerprint,
            body["points"],
            body["labels"],
            multiplicities=body.get("multiplicities"),
        )

    def _register_dataset(self, body: dict) -> dict:
        """Build and register a dataset from a JSON body.

        ``{"positives", "negatives", ...}`` registers a binary
        :class:`~repro.knn.Dataset`; ``{"points", "labels", ...}`` (an
        integer label per row) registers a multiclass
        :class:`~repro.knn.MultiClassDataset`.  The two shapes are
        mutually exclusive — mixing them is a validation error.
        """
        multiclass = "points" in body or "labels" in body
        if multiclass and ("positives" in body or "negatives" in body):
            raise ValidationError(
                "register either a binary dataset (positives/negatives) or a "
                "multiclass one (points/labels), not both"
            )
        if multiclass:
            if "points" not in body or "labels" not in body:
                raise ValidationError(
                    "multiclass registration needs both 'points' and 'labels'"
                )
            data = MultiClassDataset(
                body["points"],
                body["labels"],
                multiplicities=body.get("multiplicities"),
                discrete=bool(body.get("discrete", False)),
            )
            fingerprint = self.server.service.add_dataset(data)
            return {
                "fingerprint": fingerprint,
                "dimension": data.dimension,
                "classes": [int(c) for c in data.classes],
                "counts": {str(c): int(n) for c, n in data.counts.items()},
            }
        data = Dataset(
            body["positives"],
            body["negatives"],
            positive_multiplicities=body.get("positive_multiplicities"),
            negative_multiplicities=body.get("negative_multiplicities"),
            discrete=bool(body.get("discrete", False)),
        )
        fingerprint = self.server.service.add_dataset(data)
        return {
            "fingerprint": fingerprint,
            "dimension": data.dimension,
            "n_positive": data.n_positive,
            "n_negative": data.n_negative,
        }

    def _explain(self, body: dict, version: str) -> dict:
        """One request envelope for single and batch explanation calls.

        ``/v2`` takes exactly ``{"fingerprint", "method", "params",
        "instances"}`` and always answers ``{"results": [...]}``;
        ``/v1`` additionally accepts a scalar ``"instance"`` and then
        answers with the flat single-result shape, unchanged.
        """
        fingerprint = body["fingerprint"]
        method = body["method"]
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ValidationError("params must be a JSON object")
        single = False
        if "instances" in body:
            instances = body["instances"]
            if not isinstance(instances, list):
                raise ValidationError("'instances' must be a list of vectors")
        elif version == "v1" and "instance" in body:
            instances = [body["instance"]]
            single = True
        else:
            needed = "'instances'" if version == "v2" else "'instance' or 'instances'"
            raise ValidationError(f"body needs {needed}")
        results = self.server.explain(
            fingerprint, method, instances, params, self.request_id
        )
        return results[0] if single else {"results": results}

    # -- plumbing ---------------------------------------------------------

    def _read_json(self) -> dict:
        """Decode the request body as a JSON object (size-capped)."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length) if length else b""
        body = json.loads(raw.decode("utf-8") or "{}")
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _reply_error(self, exc: BaseException, status: int | None = None) -> None:
        """Render *exc* through the unified envelope + status mapping."""
        status = status_for(exc) if status is None else status
        if status == 500:
            # Never leak arbitrary exception class names for unexpected
            # failures; the documented type for these is "InternalError".
            payload = error_envelope(
                "InternalError", str(exc) or exc.__class__.__name__
            )
        else:
            payload = error_payload(exc)
        self._reply(status, payload, deprecated=True)

    def _reply_metrics(self) -> None:
        """``GET /metrics``: the target's Prometheus text exposition page."""
        render = getattr(self.server.service, "metrics_text", None)
        if render is None:
            raise _NotFound()
        self._reply_bytes(
            200, render().encode("utf-8"), content_type=PROMETHEUS_CONTENT_TYPE
        )

    def _reply(self, status: int, payload: dict, *, deprecated: bool = False) -> None:
        """Serialize *payload* as JSON and finish the response."""
        blob = json.dumps(jsonable(payload)).encode("utf-8")
        self._reply_bytes(
            status, blob, content_type="application/json", deprecated=deprecated
        )

    def _reply_bytes(
        self, status: int, blob: bytes, *, content_type: str, deprecated: bool = False
    ) -> None:
        """Finish the response with *blob* (shared by JSON and text bodies)."""
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.send_header("X-Request-ID", getattr(self, "request_id", "-"))
        if deprecated:
            # Error bodies still carry the pre-v2 flat compat fields for
            # one release; the header is the machine-readable notice.
            self.send_header(*DEPRECATION_HEADER)
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (stats live at /v1/stats)."""


def serve_http(service, *, host: str = "127.0.0.1", port: int = 8000):
    """Bind an :class:`ExplanationHTTPServer`; call ``serve_forever()`` on it.

    *service* may be a single-process :class:`ExplanationService` or a
    :class:`~repro.serve.cluster.ClusterService`.  Returned unstarted so
    callers (tests, the CLI) control the serving thread; ``server.port``
    holds the bound port when ``port=0``.
    """
    return ExplanationHTTPServer(service, host=host, port=port)
