"""Durable streaming datasets: mutation WAL, snapshots, replay-on-boot.

Everything the serving layer holds — dataset lineages, their ``@vN``
version history, warm engines — is process-lifetime state; this module
is what survives a crash.  A :class:`DurableStore` owns one **state
directory** with one subdirectory per dataset lineage (named by the
lineage's base content fingerprint)::

    state-dir/
      <base fingerprint, 64 hex>/
        wal.jsonl           append-only mutation log (one record/line)
        snapshot-v<N>.pkl   periodic dataset(+engine) snapshot

**The WAL** is an append-only JSON-lines file.  The first record of a
lineage is its ``register`` record (the full registered contents, so a
WAL with no snapshot still restores); every applied add/remove batch
appends one ``add``/``remove`` record carrying the batch, the version
it creates, and the SHA-256 content hash of the *folded* dataset after
the batch.  Each line embeds a checksum over its own canonical JSON, is
flushed and ``fsync``'d before the in-memory version bump — a mutation
is acknowledged only after it is durable — and the fsync latency feeds
the ``repro_wal_fsync_seconds`` metric.

**Snapshots** are atomic (unique temp file + ``os.replace``) pickles of
the dataset at one version, written every ``snapshot_every`` mutations,
optionally with the lineage's warm engines riding along (pickled per
metric) so a restart boots warm.  After a snapshot lands, the WAL is
**compacted**: records the snapshot covers are dropped (atomically, by
rewrite) and snapshots older than ``keep_snapshots`` are deleted.

**Restore** (:meth:`DurableStore.restore` / ``restore_all``) replays the
newest loadable snapshot plus the WAL tail.  The recovery contract:

* every record's checksum and version continuity is verified; a
  truncated or corrupt tail **degrades to the last good record** with a
  structured warning — it never crashes the boot;
* the restored dataset's content hash must equal the hash the last
  applied record committed to — the same snapshot == functional-fold
  fingerprint invariant the streaming fuzz harness pins
  (``tests/test_fuzz_parity.py``), checked bit-for-bit here;
* an empty state directory restores to an empty registry, and a
  lineage with neither a loadable snapshot nor a register record is
  reported (structured error) and skipped.

`docs/operations.md` is the operator-facing companion: state-dir
layout, retention knobs, and the kill-and-restore walkthrough.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from ..exceptions import DurabilityError
from ..knn.dataset import Dataset
from ..knn.multiclass_data import MultiClassDataset
from .cache import dataset_fingerprint, versioned_fingerprint
from .metrics import MetricsRegistry, StructuredLogger

#: WAL filename inside each lineage directory.
WAL_NAME = "wal.jsonl"

#: snapshot filename pattern (``N`` is the dataset version it captures).
SNAPSHOT_PATTERN = "snapshot-v{version}.pkl"

#: record kinds a WAL may legally contain.
RECORD_OPS = ("register", "add", "remove")


def _record_checksum(record: dict) -> str:
    """SHA-256 over the canonical JSON of *record* (checksum field excluded)."""
    body = {key: value for key, value in record.items() if key != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _dataset_payload(dataset) -> dict:
    """JSON-able full contents of *dataset* (the ``register`` record body).

    Multiclass lineages carry a ``"kind": "multiclass"`` tag plus their
    canonical row stack (points, per-row integer labels and
    multiplicities in class-ascending, insertion order); binary ones
    keep the original untagged positives/negatives shape, so WALs
    written before multiclass serving existed replay unchanged.
    """
    if isinstance(dataset, MultiClassDataset):
        return {
            "kind": "multiclass",
            "points": dataset.points.tolist(),
            "labels": dataset.row_labels.tolist(),
            "multiplicities": dataset.multiplicities.tolist(),
            "discrete": bool(dataset.discrete),
        }
    return {
        "positives": dataset.positives.tolist(),
        "negatives": dataset.negatives.tolist(),
        "positive_multiplicities": dataset.positive_multiplicities.tolist(),
        "negative_multiplicities": dataset.negative_multiplicities.tolist(),
        "discrete": bool(dataset.discrete),
    }


def _dataset_from_payload(payload: dict) -> Dataset | MultiClassDataset:
    """Rebuild either dataset kind from a ``register`` record body."""
    if payload.get("kind") == "multiclass":
        return MultiClassDataset(
            np.asarray(payload["points"], dtype=float),
            np.asarray(payload["labels"], dtype=np.int64),
            multiplicities=payload["multiplicities"],
            discrete=bool(payload["discrete"]),
        )
    return Dataset(
        np.asarray(payload["positives"], dtype=float),
        np.asarray(payload["negatives"], dtype=float),
        positive_multiplicities=payload["positive_multiplicities"],
        negative_multiplicities=payload["negative_multiplicities"],
        discrete=bool(payload["discrete"]),
    )


@dataclass
class RestoredLineage:
    """One lineage as reconstructed from disk by :meth:`DurableStore.restore`.

    ``dataset``/``version`` are the recovered state (``None`` dataset
    means the lineage was unrecoverable); ``engines`` maps metric names
    to unpickled warm :class:`~repro.knn.QueryEngine` objects when the
    loaded snapshot was current and carried them; ``replayed`` counts
    WAL records applied on top of the snapshot; ``truncated`` is True
    when a damaged tail was dropped, with ``warning`` holding the
    structured reason.
    """

    base: str
    dataset: Dataset | None
    version: int = 0
    engines: dict = field(default_factory=dict)
    replayed: int = 0
    truncated: bool = False
    warning: str | None = None

    @property
    def fingerprint(self) -> str:
        """The restored ``<fp>@vN`` versioned fingerprint."""
        return versioned_fingerprint(self.base, self.version)


class _Lineage:
    """Store-internal per-lineage handle: paths plus the open WAL file."""

    def __init__(self, directory: Path):
        self.directory = directory
        self.wal_path = directory / WAL_NAME
        self.handle = None  # lazily opened append handle

    def open(self):
        """The append-mode WAL handle, opened on first use."""
        if self.handle is None:
            self.handle = open(self.wal_path, "ab")
        return self.handle

    def close(self) -> None:
        """Close the WAL handle (reopened automatically when appended to)."""
        if self.handle is not None:
            self.handle.close()
            self.handle = None


class DurableStore:
    """The write side and boot side of the durability layer.

    Parameters
    ----------
    root:
        the state directory (created if missing).  One subdirectory per
        lineage, named by the base content fingerprint.
    snapshot_every:
        mutations between snapshots (and WAL compactions).  ``0``
        disables periodic snapshots — the WAL alone still restores.
    keep_snapshots:
        snapshot files retained per lineage after a new one lands.
    fsync:
        whether WAL appends and snapshot writes are ``fsync``'d.
        Leave True in production; tests may disable it for speed.
    metrics:
        optional :class:`~repro.serve.metrics.MetricsRegistry` receiving
        the WAL/snapshot series (a private registry is created
        otherwise, so the counters always exist).
    logger:
        optional :class:`~repro.serve.metrics.StructuredLogger` for the
        recovery warnings; silent when omitted.
    """

    def __init__(
        self,
        root,
        *,
        snapshot_every: int = 64,
        keep_snapshots: int = 2,
        fsync: bool = True,
        metrics: MetricsRegistry | None = None,
        logger: StructuredLogger | None = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = max(0, int(snapshot_every))
        self.keep_snapshots = max(1, int(keep_snapshots))
        self.fsync = bool(fsync)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = logger if logger is not None else StructuredLogger(None, component="durability")
        self._lineages: dict[str, _Lineage] = {}
        self._lock = threading.Lock()
        self._appends = 0
        self._snapshots = 0
        self._compactions = 0
        self._restores = 0
        self._truncated_tails = 0
        self._fsync_s = 0.0
        self._fsync_hist = self.metrics.histogram(
            "repro_wal_fsync_seconds",
            "Latency of one fsync'd WAL append (write + flush + fsync).",
        )
        self._append_counter = self.metrics.counter(
            "repro_wal_appends_total", "WAL records appended.", ("op",)
        )
        self._snapshot_counter = self.metrics.counter(
            "repro_snapshots_total", "Lineage snapshots written."
        )

    # -- write path ------------------------------------------------------

    def _lineage(self, base: str) -> _Lineage:
        """The (created-on-demand) handle of one lineage directory."""
        with self._lock:
            lineage = self._lineages.get(base)
            if lineage is None:
                directory = self.root / base
                directory.mkdir(parents=True, exist_ok=True)
                lineage = self._lineages[base] = _Lineage(directory)
            return lineage

    def has_lineage(self, base: str) -> bool:
        """Whether *base* already has durable state on disk."""
        return (self.root / base / WAL_NAME).exists()

    def register(self, base: str, dataset: Dataset) -> None:
        """Make a fresh registration durable (idempotent).

        Appends the lineage's ``register`` record — the full dataset
        contents at version 0 — unless the lineage already has a WAL,
        in which case re-registering bit-identical data is a no-op
        (matching :meth:`ExplanationService.add_dataset
        <repro.serve.service.ExplanationService.add_dataset>`).
        """
        if self.has_lineage(base):
            return
        record = {
            "op": "register",
            "version": 0,
            "content": base,
            "dataset": _dataset_payload(dataset),
        }
        self._append(base, record)

    def append_mutation(
        self, base: str, version: int, op: str, folded: Dataset,
        points, labels, multiplicities,
    ) -> None:
        """Durably log one applied mutation batch *before* the version bump.

        ``version`` is the version the batch **creates** (old + 1);
        ``folded`` is the post-batch dataset, whose content hash the
        record commits to — restore verifies replay reproduces exactly
        this hash.  Raises :class:`~repro.exceptions.DurabilityError`
        on any I/O failure, in which case the caller must leave the
        in-memory state untouched (the mutation never happened).
        """
        if op not in ("add", "remove"):
            raise DurabilityError(f"unknown WAL op {op!r}")
        mult = None if multiplicities is None else np.asarray(multiplicities).tolist()
        record = {
            "op": op,
            "version": int(version),
            "content": dataset_fingerprint(folded),
            "points": np.asarray(points, dtype=float).tolist(),
            "labels": np.asarray(labels).astype(int).tolist(),
            "multiplicities": mult,
        }
        self._append(base, record)

    def _append(self, base: str, record: dict) -> None:
        """Checksum, write, flush and fsync one WAL record."""
        record["checksum"] = _record_checksum(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        lineage = self._lineage(base)
        start = perf_counter()
        try:
            handle = lineage.open()
            handle.write(line.encode("utf-8"))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise DurabilityError(
                f"WAL append failed for lineage {base[:16]}...: {exc}"
            ) from exc
        elapsed = perf_counter() - start
        self._fsync_hist.observe(elapsed)
        self._append_counter.labels(op=record["op"]).inc()
        with self._lock:
            self._appends += 1
            self._fsync_s += elapsed

    def snapshot(
        self, base: str, dataset: Dataset, version: int, engine_blobs: dict | None = None
    ) -> Path:
        """Write one atomic snapshot of (*dataset*, *version*) and compact.

        ``engine_blobs`` optionally maps metric names to pickled warm
        engines (serialized by the caller under its engine locks).  The
        snapshot is written to a unique temp file and ``os.replace``'d
        into place, so a crash mid-write never damages an older
        snapshot; afterwards the WAL is compacted to the records the
        snapshot does not cover and old snapshots beyond
        ``keep_snapshots`` are removed.
        """
        lineage = self._lineage(base)
        payload = {
            "version": int(version),
            "content": dataset_fingerprint(dataset),
            "dataset": dataset,
            "engines": dict(engine_blobs or {}),
        }
        path = lineage.directory / SNAPSHOT_PATTERN.format(version=int(version))
        tmp = path.with_suffix(f".{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise DurabilityError(
                f"snapshot write failed for lineage {base[:16]}...: {exc}"
            ) from exc
        self._snapshot_counter.inc()
        with self._lock:
            self._snapshots += 1
        self._compact(base, covered_version=int(version))
        return path

    def snapshot_due(self, version: int) -> bool:
        """Whether *version* hits the ``snapshot_every`` cadence.

        A pure check so callers can decide before paying the snapshot's
        serialization cost (the service pickles its warm engines only
        when a snapshot is actually due).
        """
        if self.snapshot_every <= 0 or version <= 0:
            return False
        return version % self.snapshot_every == 0

    def _compact(self, base: str, covered_version: int) -> None:
        """Drop WAL records (and old snapshots) a new snapshot covers.

        The WAL is rewritten atomically to only the records with
        ``version > covered_version``; damaged lines are dropped with
        the same tolerance as restore (they are unreplayable anyway).
        """
        lineage = self._lineage(base)
        records, _ = self._read_records(base)
        tail = [r for r in records if r["version"] > covered_version]
        lineage.close()
        tmp = lineage.wal_path.with_suffix(f".{os.getpid()}-{threading.get_ident()}.tmp")
        with open(tmp, "wb") as handle:
            for record in tail:
                line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                handle.write(line.encode("utf-8"))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, lineage.wal_path)
        for path in sorted(
            lineage.directory.glob("snapshot-v*.pkl"),
            key=self._snapshot_version,
        )[: -self.keep_snapshots]:
            path.unlink(missing_ok=True)
        with self._lock:
            self._compactions += 1

    def retire(self, base: str) -> None:
        """Remove a lineage's durable state (dataset removal is forever)."""
        with self._lock:
            lineage = self._lineages.pop(base, None)
        if lineage is not None:
            lineage.close()
        directory = self.root / base
        if directory.exists():
            for path in directory.iterdir():
                path.unlink(missing_ok=True)
            directory.rmdir()

    # -- boot path -------------------------------------------------------

    @staticmethod
    def _snapshot_version(path: Path) -> int:
        """The version captured by a ``snapshot-v<N>.pkl`` file."""
        stem = path.name[len("snapshot-v") : -len(".pkl")]
        try:
            return int(stem)
        except ValueError:
            return -1

    def lineages(self) -> list[str]:
        """Base fingerprints with durable state under the root (sorted)."""
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir()
            and ((child / WAL_NAME).exists() or any(child.glob("snapshot-v*.pkl")))
        )

    def _read_records(self, base: str) -> tuple[list[dict], str | None]:
        """``(verified records, tail warning)`` of one lineage's WAL.

        Reads until the first damaged line — truncated JSON, checksum
        mismatch, unknown op, or non-contiguous version — and reports it
        as the warning; everything before it is returned verified.
        """
        wal_path = self.root / base / WAL_NAME
        if not wal_path.exists():
            return [], None
        records: list[dict] = []
        try:
            raw = wal_path.read_bytes()
        except OSError as exc:
            return [], f"WAL unreadable: {exc}"
        for index, line in enumerate(raw.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return records, f"record {index}: truncated or non-JSON line"
            if not isinstance(record, dict) or record.get("op") not in RECORD_OPS:
                return records, f"record {index}: unknown record shape"
            if record.get("checksum") != _record_checksum(record):
                return records, f"record {index}: checksum mismatch"
            if records and record["version"] != records[-1]["version"] + 1:
                return records, (
                    f"record {index}: version gap "
                    f"(v{records[-1]['version']} -> v{record['version']})"
                )
            records.append(record)
        return records, None

    def _load_snapshot(self, base: str) -> tuple[dict | None, list[str]]:
        """Newest loadable snapshot payload of *base* (or None) + warnings."""
        directory = self.root / base
        warnings: list[str] = []
        for path in sorted(
            directory.glob("snapshot-v*.pkl"), key=self._snapshot_version, reverse=True
        ):
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
                dataset = payload["dataset"]
                if dataset_fingerprint(dataset) != payload["content"]:
                    raise DurabilityError("snapshot content hash mismatch")
            except Exception as exc:
                warnings.append(f"snapshot {path.name} unloadable ({exc}); trying older")
                continue
            return payload, warnings
        return None, warnings

    def restore(self, base: str) -> RestoredLineage:
        """Reconstruct one lineage: newest snapshot + verified WAL tail.

        Never raises for damaged state — the result carries
        ``truncated``/``warning`` instead, and a totally unrecoverable
        lineage comes back with ``dataset=None``.
        """
        with self._lock:
            self._restores += 1
        records, tail_warning = self._read_records(base)
        snapshot, snap_warnings = self._load_snapshot(base)
        warnings = list(snap_warnings)
        dataset: Dataset | None = None
        version = 0
        engines: dict = {}
        replayed = 0
        if snapshot is not None:
            dataset = snapshot["dataset"]
            version = int(snapshot["version"])
            tail = [r for r in records if r["version"] > version]
        else:
            # No snapshot: the whole WAL is the tail, and its first
            # record must be the lineage's register record (version 0,
            # which a ``> version`` filter would wrongly drop).
            tail = list(records)
        if dataset is None:
            if tail and tail[0]["op"] == "register":
                register, tail = tail[0], tail[1:]
                dataset = _dataset_from_payload(register["dataset"])
                if dataset_fingerprint(dataset) != register["content"]:
                    return self._report(RestoredLineage(
                        base, None,
                        warning="register record content hash mismatch",
                        truncated=True,
                    ))
                version = 0
            else:
                reason = tail_warning or "no snapshot and no register record"
                return self._report(RestoredLineage(
                    base, None, warning=f"lineage unrecoverable: {reason}",
                    truncated=True,
                ))
        for record in tail:
            if record["op"] == "register":
                warnings.append(f"unexpected register record at v{record['version']}")
                break
            if record["version"] != version + 1:
                warnings.append(
                    f"WAL tail starts at v{record['version']} but the newest "
                    f"loadable snapshot is v{version} (gap)"
                )
                break
            folder = "with_added" if record["op"] == "add" else "with_removed"
            try:
                folded = getattr(dataset, folder)(
                    record["points"], record["labels"], record["multiplicities"]
                )
            except Exception as exc:
                warnings.append(f"replay of v{record['version']} failed ({exc})")
                break
            if dataset_fingerprint(folded) != record["content"]:
                warnings.append(
                    f"replay of v{record['version']} diverged from the "
                    "committed content hash"
                )
                break
            dataset = folded
            version = record["version"]
            replayed += 1
        if snapshot is not None and replayed == 0 and not warnings:
            # The snapshot IS the current state: its warm engines are valid.
            for metric, blob in (snapshot.get("engines") or {}).items():
                try:
                    engines[metric] = pickle.loads(blob)
                except Exception as exc:  # engines are an optimization only
                    warnings.append(f"warm engine {metric!r} unloadable ({exc})")
        if tail_warning is not None:
            warnings.append(tail_warning)
        result = RestoredLineage(
            base, dataset, version, engines, replayed,
            truncated=bool(warnings),
            warning="; ".join(warnings) or None,
        )
        return self._report(result)

    def _report(self, result: RestoredLineage) -> RestoredLineage:
        """Log the structured restore outcome (warning level if degraded)."""
        if result.truncated:
            with self._lock:
                self._truncated_tails += 1
        self.log.log(
            "lineage_restored" if result.dataset is not None else "lineage_unrecoverable",
            level="warning" if result.truncated else "info",
            base=result.base[:16],
            version=result.version,
            replayed=result.replayed,
            truncated=result.truncated,
            warning=result.warning,
        )
        return result

    def restore_all(self) -> dict[str, RestoredLineage]:
        """Restore every lineage under the root (empty dir → empty dict).

        Unrecoverable lineages are included with ``dataset=None`` so the
        caller can surface them; recoverable ones carry their datasets,
        versions, and (when current) warm engines.
        """
        return {base: self.restore(base) for base in self.lineages()}

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Write/boot counters: appends, fsync seconds, snapshots, restores."""
        with self._lock:
            return {
                "appends": self._appends,
                "fsync_s": self._fsync_s,
                "snapshots": self._snapshots,
                "compactions": self._compactions,
                "restores": self._restores,
                "truncated_tails": self._truncated_tails,
                "snapshot_every": self.snapshot_every,
                "keep_snapshots": self.keep_snapshots,
            }

    def close(self) -> None:
        """Close every open WAL handle (the store stays usable)."""
        with self._lock:
            lineages = list(self._lineages.values())
        for lineage in lineages:
            lineage.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DurableStore(root={str(self.root)!r}, lineages={len(self.lineages())})"
