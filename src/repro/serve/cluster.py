"""Sharded multi-process serving: a front that scatters to worker services.

:class:`ClusterService` is the horizontal scale-out of
:class:`~repro.serve.service.ExplanationService`.  One front process
holds N **worker processes**; each worker runs its own warm
``ExplanationService`` (own engines, own result cache) over the shard
of dataset lineages assigned to it.  The topology:

* **sharding by content fingerprint** — a dataset lineage's *base*
  fingerprint (the stable content hash from
  :func:`~repro.serve.cache.dataset_fingerprint`) picks its **owner**
  worker deterministically (``int(fp[:16], 16) % workers``), so any
  front with the same worker count routes identically;
* **read replicas** — with ``replicas > 1`` a lineage is registered on
  the ``replicas`` workers following its owner (mod N), and read
  traffic goes to the least-loaded replica.  On a machine with few
  cores this is what kills head-of-line blocking: a cheap ``classify``
  never waits behind a multi-hundred-millisecond SAT solve holding a
  sibling replica's engine lock — it runs in a different process;
* **admission control / backpressure** — each worker front-end keeps a
  bounded count of outstanding requests (``queue_depth``).  A request
  that would exceed the bound is refused *immediately* with
  :class:`~repro.exceptions.OverloadedError` (HTTP 429 through the
  wire) instead of joining an unbounded queue behind a saturated
  worker.  Administrative operations (registration, mutation,
  teardown, stats) bypass admission — shedding load must never shed
  control traffic;
* **mutations route to every replica** — :meth:`ClusterService.add_points`
  / :meth:`~ClusterService.remove_points` serialize per lineage at the
  front and broadcast to the lineage's replica set in one order, so
  every replica applies the PR-5 version-bump/invalidation protocol
  (``<fp>@vN``) in lockstep and replicas can never disagree about the
  current version.

Workers speak a tiny pickled ``(op, payload)`` / ``(status, value)``
protocol over :func:`multiprocessing.Pipe`; a worker is single-threaded
by construction (one recv loop), so per-worker message order is the
serialization order.  Exceptions raised inside a worker travel back by
class *name* and are re-raised at the front as the same
:mod:`repro.exceptions` type.
"""

from __future__ import annotations

import multiprocessing
import queue
import sys
import threading
from concurrent.futures import Future
from typing import Sequence

from .. import exceptions as _exceptions
from ..exceptions import OverloadedError, SolverError, UnknownDatasetError
from ..knn import Dataset, MultiClassDataset
from .cache import dataset_fingerprint, split_fingerprint
from .metrics import MetricsRegistry, StructuredLogger, render_states
from .service import ExplanationService

#: ops exempt from admission control (control plane beats data plane).
_CONTROL_OPS = frozenset(
    {"add_dataset", "mutate", "remove_dataset", "describe", "stats",
     "fingerprints", "metrics", "ping", "shutdown"}
)


def _preferred_start_method() -> str:
    """``fork`` where the platform offers it (fast start), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _rebuild_exception(type_name: str, message: str) -> BaseException:
    """Re-raise a worker-side failure as its :mod:`repro.exceptions` type.

    Unknown names (a worker raising something outside the library's
    hierarchy) degrade to :class:`~repro.exceptions.SolverError` so the
    front never loses the failure.
    """
    exc_type = getattr(_exceptions, type_name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
        return exc_type(message)
    return SolverError(f"worker failure ({type_name}): {message}")


def _worker_dispatch(service: ExplanationService, op: str, payload) -> object:
    """Execute one front message against the worker's local service."""
    if op == "explain":
        fingerprint, method, instances, params, request_id = payload
        return service.explain(fingerprint, method, instances, params, request_id)
    if op == "mutate":
        kind, fingerprint, points, labels, multiplicities = payload
        mutate = service.add_points if kind == "add" else service.remove_points
        return mutate(fingerprint, points, labels, multiplicities)
    if op == "add_dataset":
        if payload.get("kind") == "multiclass":
            dataset = MultiClassDataset(
                payload["points"],
                payload["labels"],
                multiplicities=payload["multiplicities"],
                discrete=payload["discrete"],
            )
        else:
            dataset = Dataset(
                payload["positives"],
                payload["negatives"],
                positive_multiplicities=payload["positive_multiplicities"],
                negative_multiplicities=payload["negative_multiplicities"],
                discrete=payload["discrete"],
            )
        fingerprint = service.add_dataset(dataset)
        if fingerprint != payload["expect"]:  # pragma: no cover - defensive
            raise SolverError(
                "worker fingerprint disagrees with front "
                f"({fingerprint[:16]} != {payload['expect'][:16]})"
            )
        return fingerprint
    if op == "remove_dataset":
        return service.remove_dataset(payload)
    if op == "describe":
        return service.describe(payload)
    if op == "stats":
        return service.stats()
    if op == "fingerprints":
        return service.fingerprints()
    if op == "metrics":
        return service.metrics_states()
    if op == "ping":
        return "pong"
    raise SolverError(f"unknown worker op {op!r}")  # pragma: no cover


def _worker_main(conn, config: dict) -> None:
    """Entry point of one worker process: serve ``(op, payload)`` messages.

    Builds a fresh :class:`ExplanationService` from *config* and answers
    every message with ``("ok", result)`` or ``("raise", (type, msg))``
    until a ``shutdown`` message (or a closed pipe) ends the loop.
    """
    service = ExplanationService(
        backend=config["backend"],
        cache_size=config["cache_size"],
        cache_dir=config["cache_dir"],
        max_batch=config["max_batch"],
        state_dir=config.get("state_dir"),
        snapshot_every=config.get("snapshot_every", 64),
        log_stream=sys.stderr if config.get("log") else None,
        solver_pool=config.get("solver_pool", 32),
        parallel_portfolio=config.get("parallel_portfolio", False),
        race_workers=config.get("race_workers"),
    )
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):  # front went away; die quietly
            service.close()
            return
        if op == "shutdown":
            service.close()
            conn.send(("ok", None))
            return
        try:
            result = _worker_dispatch(service, op, payload)
        except Exception as exc:
            reply = ("raise", (exc.__class__.__name__, str(exc) or repr(exc)))
        else:
            reply = ("ok", result)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - front died
            return


class _Worker:
    """Front-side handle of one worker process: pipe, pump thread, admission.

    Requests enter through :meth:`submit`, which enforces the bounded
    ``queue_depth`` (raising :class:`OverloadedError` past it) and hands
    the message to a pump thread that owns the pipe — one in-flight
    message per worker at a time, replies resolved into
    :class:`~concurrent.futures.Future` objects.
    """

    def __init__(self, index: int, config: dict, queue_depth: int, ctx):
        self.index = index
        self.queue_depth = max(1, int(queue_depth))
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, config),
            daemon=True,
            name=f"repro-serve-worker-{index}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self._queue: queue.Queue = queue.Queue()
        self._outstanding = 0
        self._lock = threading.Lock()
        self._closed = False
        self._pump: threading.Thread | None = None

    def start_pump(self) -> None:
        """Start the reply pump (kept separate so every fork precedes threads)."""
        self._pump = threading.Thread(
            target=self._pump_loop, daemon=True, name=f"repro-serve-pump-{self.index}"
        )
        self._pump.start()

    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet answered (the routing load signal)."""
        with self._lock:
            return self._outstanding

    def submit(self, op: str, payload, *, force: bool = False) -> Future:
        """Enqueue one message; bounded unless *force* (control traffic).

        Raises :class:`OverloadedError` when the worker already has
        ``queue_depth`` admitted requests in flight, and
        :class:`SolverError` when the worker was closed or died.
        """
        with self._lock:
            if self._closed:
                raise SolverError(f"worker {self.index} is closed")
            if not force and self._outstanding >= self.queue_depth:
                raise OverloadedError(
                    f"worker {self.index} is overloaded "
                    f"({self._outstanding} in flight, depth {self.queue_depth}); "
                    "back off and retry"
                )
            self._outstanding += 1
        future: Future = Future()
        self._queue.put((op, payload, future))
        return future

    def call(self, op: str, payload=None, *, force: bool = False):
        """Synchronous :meth:`submit` — returns the result or re-raises."""
        return self.submit(op, payload, force=force).result()

    def _pump_loop(self) -> None:
        """Send queued messages over the pipe and resolve their futures."""
        while True:
            item = self._queue.get()
            if item is None:
                return
            op, payload, future = item
            try:
                self.conn.send((op, payload))
                status, value = self._recv_reply()
            except Exception as exc:
                self._settle(future, error=SolverError(
                    f"worker {self.index} failed mid-request: {exc}"
                ))
                continue
            if status == "ok":
                self._settle(future, result=value)
            else:
                self._settle(future, error=_rebuild_exception(*value))

    def _recv_reply(self):
        """Next reply off the pipe, watching for a dead worker process."""
        while True:
            if self.conn.poll(0.1):
                return self.conn.recv()
            if not self.process.is_alive():
                raise SolverError(f"worker {self.index} exited unexpectedly")

    def _settle(self, future: Future, *, result=None, error=None) -> None:
        """Release the admission slot and resolve *future*."""
        with self._lock:
            self._outstanding -= 1
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def close(self) -> None:
        """Shut the worker down: drain, send ``shutdown``, reap the process."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._outstanding += 1  # the shutdown message's slot
        future: Future = Future()
        self._queue.put(("shutdown", None, future))
        self._queue.put(None)
        try:
            future.result(timeout=5.0)
        except Exception:  # worker already gone; reap below
            pass
        if self._pump is not None:
            self._pump.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.conn.close()


class ClusterService:
    """Front of the sharded serving cluster (same call surface as the service).

    Exposes the :class:`ExplanationService` serving verbs —
    :meth:`add_dataset`, :meth:`explain`, :meth:`add_points` /
    :meth:`remove_points`, :meth:`remove_dataset`, :meth:`describe`,
    :meth:`stats`, :meth:`fingerprints` — with identical semantics and
    payloads, so the HTTP layer, the CLI, and the load generator treat
    single-process and clustered serving interchangeably.  See the
    module docstring for the topology.

    Parameters
    ----------
    workers:
        worker process count (the shard count).
    replicas:
        read replicas per dataset lineage, clamped to ``[1, workers]``.
    queue_depth:
        admitted-but-unanswered bound per worker; exceeding it raises
        :class:`~repro.exceptions.OverloadedError`.
    backend, cache_size, cache_dir, max_batch:
        forwarded to each worker's :class:`ExplanationService`
        (``cache_dir`` gets a per-worker subdirectory so workers never
        share persisted cache files).
    state_dir:
        optional durability root.  Each worker keeps its own
        :class:`~repro.serve.durability.DurableStore` under
        ``state_dir/worker-<i>`` (workers never share WAL files), and
        on boot every worker **restores its owned lineages** before the
        cluster takes traffic; the front then adopts the restored
        lineages into its routing table.  Keep the worker count stable
        across restarts — a lineage restored by a worker that is no
        longer on its replica set is skipped with a structured warning
        (see ``docs/operations.md``).
    snapshot_every:
        per-worker snapshot cadence, forwarded to each worker's store.
    log_stream:
        optional stream for the *front's* structured JSON logs; when
        set, workers log to their (inherited) ``stderr``.
    start_method:
        :mod:`multiprocessing` start method (default: ``fork`` where
        available, else ``spawn``).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        replicas: int = 1,
        queue_depth: int = 64,
        backend: str = "auto",
        cache_size: int = 2048,
        cache_dir=None,
        max_batch: int = 256,
        state_dir=None,
        snapshot_every: int = 64,
        log_stream=None,
        start_method: str | None = None,
        solver_pool: int = 32,
        parallel_portfolio: bool = False,
        race_workers: int | None = None,
    ):
        self.n_workers = max(1, int(workers))
        self.replicas = min(self.n_workers, max(1, int(replicas)))
        self.queue_depth = max(1, int(queue_depth))
        self.max_batch = max(1, int(max_batch))
        self.backend = backend
        self.state_dir = state_dir
        self.log = StructuredLogger(log_stream, component="cluster")
        self.metrics = MetricsRegistry()
        self.start_method = start_method or _preferred_start_method()
        ctx = multiprocessing.get_context(self.start_method)
        self._workers = []
        for index in range(self.n_workers):
            worker_cache_dir = (
                None if cache_dir is None else f"{cache_dir}/worker-{index}"
            )
            worker_state_dir = (
                None if state_dir is None else f"{state_dir}/worker-{index}"
            )
            config = {
                "backend": backend,
                "cache_size": int(cache_size),
                "cache_dir": worker_cache_dir,
                "max_batch": self.max_batch,
                "state_dir": worker_state_dir,
                "snapshot_every": int(snapshot_every),
                "log": log_stream is not None,
                "solver_pool": int(solver_pool),
                "parallel_portfolio": bool(parallel_portfolio),
                "race_workers": race_workers,
            }
            self._workers.append(_Worker(index, config, self.queue_depth, ctx))
        # Every fork happened above, before any front thread exists; only
        # now is it safe to start the per-worker pump threads.
        for worker in self._workers:
            worker.start_pump()
        self._datasets: dict[str, dict] = {}  # base -> {"dimension", "discrete"}
        self._mutation_locks: dict[str, threading.Lock] = {}
        self._lock = threading.RLock()
        self._dispatched = 0
        self._rejected = 0
        self._closed = False
        self.restored: dict = {}
        if state_dir is not None:
            self._adopt_restored()

    # -- durability ------------------------------------------------------

    def _adopt_restored(self) -> None:
        """Adopt lineages the workers restored from their state dirs.

        Each worker restores its own ``state_dir/worker-<i>`` before the
        front exists; this walks every worker's restored fingerprints
        and re-enters into the routing table each lineage whose **owner**
        worker holds it.  Degradations are reported, never fatal:
        a lineage held by a worker off its replica set (the worker
        count changed across restarts) is skipped with a structured
        warning, and a replica whose restored version lags its owner's
        is warned about (it missed the crash-window broadcast; see
        ``docs/operations.md`` for the repair procedure).
        """
        placements: dict[str, dict[int, int]] = {}
        for worker in self._workers:
            for fingerprint in worker.call("fingerprints", force=True):
                base, version = split_fingerprint(fingerprint)
                placements.setdefault(base, {})[worker.index] = version
        for base, holders in sorted(placements.items()):
            owner = self.owner_of(base)
            replica_set = set(self.replica_set(base))
            strays = sorted(set(holders) - replica_set)
            if strays:
                self.log.log(
                    "restored_lineage_stray", level="warning",
                    base=base[:16], workers=strays, owner=owner,
                    hint="worker count changed across restarts?",
                )
            if owner not in holders:
                self.log.log(
                    "restored_lineage_skipped", level="warning",
                    base=base[:16], owner=owner, holders=sorted(holders),
                    hint="owner worker has no durable copy; not adopted",
                )
                continue
            behind = sorted(
                index for index in replica_set & set(holders)
                if holders[index] < holders[owner]
            )
            missing = sorted(replica_set - set(holders))
            if behind or missing:
                self.log.log(
                    "restored_replica_behind", level="warning",
                    base=base[:16], owner_version=holders[owner],
                    behind=behind, missing=missing,
                )
            meta = self._workers[owner].call("describe", base, force=True)
            with self._lock:
                self._datasets[base] = {
                    "dimension": meta["dimension"],
                    "discrete": meta["discrete"],
                }
            self.restored[base[:16]] = {
                "version": holders[owner],
                "owner": owner,
                "holders": {str(i): v for i, v in sorted(holders.items())},
            }
            self.log.log(
                "lineage_adopted", base=base[:16],
                version=holders[owner], owner=owner,
            )

    # -- placement -------------------------------------------------------

    def owner_of(self, base: str) -> int:
        """Deterministic owner worker of a lineage's base fingerprint."""
        return int(base[:16], 16) % self.n_workers

    def replica_set(self, base: str) -> list[int]:
        """Worker indices holding a lineage: owner plus following replicas."""
        owner = self.owner_of(base)
        return [(owner + i) % self.n_workers for i in range(self.replicas)]

    def _replicas_for(self, fingerprint: str) -> tuple[str, list[_Worker]]:
        """Resolve a client handle to ``(base, replica worker handles)``."""
        base, _ = split_fingerprint(fingerprint)
        with self._lock:
            if self._closed:
                raise SolverError("cluster is closed")
            if base not in self._datasets:
                raise UnknownDatasetError(
                    f"unknown dataset fingerprint {base[:16]!r}...; "
                    "register the dataset first (add_dataset / POST /v1/datasets)"
                )
        return base, [self._workers[i] for i in self.replica_set(base)]

    # -- dataset registry ------------------------------------------------

    def add_dataset(self, dataset: Dataset | MultiClassDataset) -> str:
        """Register *dataset* on its replica set; returns the base fingerprint.

        Accepts either dataset kind (binary or multiclass — the same
        surface as the single-process service).  Idempotent: registering
        bit-identical data returns the same fingerprint and keeps every
        worker's warm engines.
        """
        fingerprint = dataset_fingerprint(dataset)
        if isinstance(dataset, MultiClassDataset):
            payload = {
                "kind": "multiclass",
                "points": dataset.points,
                "labels": dataset.row_labels,
                "multiplicities": dataset.multiplicities,
                "discrete": dataset.discrete,
                "expect": fingerprint,
            }
        else:
            payload = {
                "positives": dataset.positives,
                "negatives": dataset.negatives,
                "positive_multiplicities": dataset.positive_multiplicities,
                "negative_multiplicities": dataset.negative_multiplicities,
                "discrete": dataset.discrete,
                "expect": fingerprint,
            }
        with self._mutation_lock(fingerprint):
            futures = [
                self._workers[i].submit("add_dataset", payload, force=True)
                for i in self.replica_set(fingerprint)
            ]
            for future in futures:
                future.result()
            with self._lock:
                self._datasets.setdefault(
                    fingerprint,
                    {"dimension": dataset.dimension, "discrete": dataset.discrete},
                )
        return fingerprint

    def remove_dataset(self, fingerprint: str) -> int:
        """Drop a lineage from every replica; returns invalidated entries.

        The count is summed across replicas (each worker sweeps its own
        cache).  A *superseded* versioned fingerprint only sweeps that
        version's entries, mirroring the single-process service.
        """
        base, workers = self._replicas_for(fingerprint)
        with self._mutation_lock(base):
            futures = [
                worker.submit("remove_dataset", fingerprint, force=True)
                for worker in workers
            ]
            removed = sum(future.result() for future in futures)
            # A bare (or current-version) handle drops the lineage; a
            # superseded versioned handle only sweeps that version's cache
            # entries.  Probe the owner to learn which case this was.
            try:
                workers[0].call("describe", base, force=True)
            except _exceptions.ReproError:
                with self._lock:
                    self._datasets.pop(base, None)
        return removed

    def describe(self, fingerprint: str) -> dict:
        """Current metadata of a lineage, answered by its owner replica."""
        _, workers = self._replicas_for(fingerprint)
        return workers[0].call("describe", fingerprint, force=True)

    def fingerprints(self) -> list[str]:
        """Current versioned fingerprints across every lineage (sorted)."""
        with self._lock:
            if self._closed:
                return []
            bases = sorted(self._datasets)
        out = []
        for base in bases:
            out.append(self._workers[self.owner_of(base)].call(
                "describe", base, force=True
            )["fingerprint"])
        return out

    # -- serving ---------------------------------------------------------

    def explain(
        self, fingerprint: str, method: str, instances: Sequence,
        params: dict | None = None, request_id: str | None = None,
    ) -> list[dict]:
        """Scatter an instance batch across the lineage's replicas and gather.

        The batch is cut into ``max_batch`` blocks; each block goes to
        the currently least-loaded replica, and results come back in
        instance order with the exact :meth:`ExplanationService.explain`
        payload shape.  Admission failure on any block raises
        :class:`~repro.exceptions.OverloadedError` (already-dispatched
        blocks complete in their workers and are discarded).
        ``request_id`` travels with every block, so the worker-side
        ``explain_served`` log records carry the same provenance id the
        HTTP front stamped on the response.
        """
        _, workers = self._replicas_for(fingerprint)
        n = len(instances)
        if n == 0:
            return []
        futures = []
        try:
            for start in range(0, n, self.max_batch):
                block = instances[start : start + self.max_batch]
                worker = min(workers, key=lambda w: w.outstanding)
                futures.append(
                    worker.submit(
                        "explain", (fingerprint, method, block, params, request_id)
                    )
                )
        except OverloadedError:
            with self._lock:
                self._rejected += 1
            raise
        with self._lock:
            self._dispatched += len(futures)
        results: list[dict] = []
        for future in futures:
            results.extend(future.result())
        return results

    def add_points(self, fingerprint: str, points, labels, multiplicities=None) -> dict:
        """Insert points into a lineage on *every* replica (version lockstep)."""
        return self._mutate("add", fingerprint, points, labels, multiplicities)

    def remove_points(self, fingerprint: str, points, labels, multiplicities=None) -> dict:
        """Remove points from a lineage on *every* replica (version lockstep)."""
        return self._mutate("remove", fingerprint, points, labels, multiplicities)

    def _mutate(self, kind: str, fingerprint: str, points, labels, multiplicities) -> dict:
        """Broadcast one mutation to the replica set under the lineage lock.

        The front lock serializes mutations per lineage, and each worker
        is single-threaded, so every replica applies the same mutations
        in the same order — versions cannot diverge.  Validation is
        deterministic and state-identical across replicas, so a batch a
        replica would reject is rejected by the owner first (the
        broadcast is sequential, owner first).
        """
        base, workers = self._replicas_for(fingerprint)
        payload = (kind, fingerprint, points, labels, multiplicities)
        with self._mutation_lock(base):
            result = workers[0].call("mutate", payload, force=True)
            for worker in workers[1:]:
                worker.call("mutate", payload, force=True)
        return result

    def _mutation_lock(self, base: str) -> threading.Lock:
        """The front-side per-lineage lock serializing mutations."""
        with self._lock:
            return self._mutation_locks.setdefault(base, threading.Lock())

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Aggregated worker counters plus a ``"cluster"`` section.

        Count-style fields (requests, batches, mutations, cache
        hits/misses) are summed across workers; ``versions`` merges to
        the maximum seen per lineage (replicas agree by construction,
        so the max is the common value).
        """
        worker_stats = [w.call("stats", force=True) for w in self._workers]
        versions: dict[str, int] = {}
        cache = {"hits": 0, "misses": 0, "disk_hits": 0, "evictions": 0,
                 "size": 0, "maxsize": 0}
        total = {"engines": 0, "requests": 0, "batches": 0,
                 "batched_requests": 0, "mutations": 0}
        solver_pool = {"hits": 0, "misses": 0, "recycled": 0, "evictions": 0,
                       "invalidated": 0, "entries": 0, "leases": 0}
        portfolio = {"races": 0, "parallel": 0, "sequential": 0,
                     "canonical": 0, "fallback_witness": 0, "anytime": 0}
        attempts: dict[str, int] = {}
        durability: dict | None = None
        largest = 0
        for stats in worker_stats:
            for key in total:
                total[key] += stats[key]
            largest = max(largest, stats["largest_batch"])
            for base, version in stats["versions"].items():
                versions[base] = max(versions.get(base, 0), version)
            for key in cache:
                cache[key] += stats["cache"][key]
            for key in solver_pool:
                solver_pool[key] += stats["solver_pool"][key]
            for key in portfolio:
                portfolio[key] += stats["portfolio"][key]
            for status, count in stats["portfolio"]["attempts"].items():
                attempts[status] = attempts.get(status, 0) + count
            if "durability" in stats:
                if durability is None:
                    durability = dict.fromkeys(
                        ("appends", "fsync_s", "snapshots", "compactions",
                         "restores", "truncated_tails"), 0,
                    )
                for key in durability:
                    durability[key] += stats["durability"][key]
        with self._lock:
            cluster = {
                "workers": self.n_workers,
                "replicas": self.replicas,
                "queue_depth": self.queue_depth,
                "start_method": self.start_method,
                "dispatched": self._dispatched,
                "rejected": self._rejected,
                "outstanding": [w.outstanding for w in self._workers],
                "alive": [w.process.is_alive() for w in self._workers],
            }
            n_datasets = len(self._datasets)
        out = {
            "datasets": n_datasets,
            "engines": total["engines"],
            "requests": total["requests"],
            "batches": total["batches"],
            "batched_requests": total["batched_requests"],
            "largest_batch": largest,
            "mutations": total["mutations"],
            "versions": versions,
            "cache": cache,
            "solver_pool": solver_pool,
            "portfolio": {**portfolio, "attempts": attempts},
            "cluster": cluster,
        }
        if durability is not None:
            out["durability"] = durability
            out["restored"] = dict(self.restored)
        return out

    def _refresh_metrics(self) -> None:
        """Mirror the front's own counters/health into its registry.

        Worker-side series come back through the ``metrics`` worker op;
        this covers only what the front alone knows — dispatch/overload
        totals and per-worker health gauges (labeled ``worker="i"`` so
        they stay meaningful after :func:`~repro.serve.metrics.
        render_states` sums across processes).
        """
        with self._lock:
            dispatched, rejected = self._dispatched, self._rejected
            workers = list(self._workers)
        reg = self.metrics
        reg.counter(
            "repro_cluster_dispatched_total",
            "Request blocks dispatched to workers by the front.",
        ).set_total(dispatched)
        reg.counter(
            "repro_cluster_rejected_total",
            "Request blocks refused by admission control (HTTP 429).",
        ).set_total(rejected)
        outstanding = reg.gauge(
            "repro_worker_outstanding",
            "Requests admitted to a worker but not yet answered.",
            ("worker",),
        )
        alive = reg.gauge(
            "repro_worker_alive",
            "1 when the worker process is alive, 0 when it exited.",
            ("worker",),
        )
        for worker in workers:
            outstanding.set(worker.outstanding, worker=str(worker.index))
            alive.set(float(worker.process.is_alive()), worker=str(worker.index))

    def metrics_states(self) -> list:
        """Every worker's raw metric states plus the front's own.

        One flat list, ready for
        :func:`~repro.serve.metrics.render_states` — same-name series
        are summed across workers, which is why worker-distinct gauges
        carry a ``worker`` label.
        """
        self._refresh_metrics()
        states = [self.metrics.state()]
        futures = [w.submit("metrics", None, force=True) for w in self._workers]
        for future in futures:
            states.extend(future.result())
        return states

    def metrics_text(self) -> str:
        """The fleet-wide ``GET /metrics`` page (Prometheus text format)."""
        return render_states(self.metrics_states())

    def cluster_info(self) -> dict:
        """Topology snapshot for ``GET /v2/cluster``: placement and health."""
        with self._lock:
            bases = sorted(self._datasets)
        return {
            "workers": self.n_workers,
            "replicas": self.replicas,
            "queue_depth": self.queue_depth,
            "start_method": self.start_method,
            "datasets": {
                base[:16]: {
                    "owner": self.owner_of(base),
                    "replicas": self.replica_set(base),
                }
                for base in bases
            },
            "outstanding": [w.outstanding for w in self._workers],
            "alive": [w.process.is_alive() for w in self._workers],
        }

    def ping(self) -> list[str]:
        """Round-trip every worker (health check); returns their replies."""
        return [w.call("ping", force=True) for w in self._workers]

    def close(self) -> None:
        """Tear down every worker process (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ClusterService(workers={self.n_workers}, "
                f"replicas={self.replicas}, datasets={len(self._datasets)})"
            )
