"""Result caching for the explanation service: fingerprints, keys, LRU.

The service memoizes every explanation answer under a key that pins
down *exactly* what was asked:

``(dataset fingerprint, instance bytes, method, canonical params)``

* the **dataset fingerprint** (:func:`dataset_fingerprint`) is a
  SHA-256 over the raw bytes of ``S+``/``S-``, their multiplicities,
  dtypes, shapes and the discrete flag — two datasets share a
  fingerprint iff they are bit-identical, so a changed dataset can
  never serve a stale answer;
* the **instance bytes** are the query vector's float64 buffer, so two
  requests hit the same entry iff the instances are bit-identical;
* the **method and params** are serialized canonically (sorted JSON),
  so ``minimum_sr`` with ``solver="sat"`` never collides with
  ``solver="milp"``, and no method ever reads another method's entries.

:class:`ResultCache` is a thread-safe LRU over those keys with optional
*disk persistence*: when ``cache_dir`` is set, every stored payload is
also pickled to ``<fragment>-<sha256(key)>.pkl`` inside the directory
(where the fragment is the fingerprint's first 16 hex chars plus any
``@vN`` version suffix), entries evicted from memory remain reachable
on disk, and a fresh process pointed at the same directory starts warm.
Explicit invalidation (:meth:`ResultCache.invalidate`) removes both the
memory entries and the disk files of one fingerprint.

Versioned fingerprints
----------------------

Mutable (streaming) datasets keep their *base* content fingerprint as a
stable identity and append ``@v<N>`` per mutation: ``<fp>`` is version
0, ``<fp>@v3`` the third mutation.  :func:`split_fingerprint` /
:func:`versioned_fingerprint` convert between the two forms, cache keys
embed the versioned form, and :meth:`ResultCache.invalidate` accepts
either: a versioned fingerprint drops exactly that version's entries
(the scoped invalidation a mutation performs on the version it
supersedes), a bare one drops every version (dataset removal).  The
``@v`` suffix is validated as strictly ``@v<digits>`` so the disk sweep
stays glob-safe.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pickle
import re
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from ..knn.dataset import Dataset
from ..knn.multiclass_data import MultiClassDataset

#: separator inside a cache key; fingerprints are hex so it cannot collide.
_KEY_SEP = b"|"

#: the alphabet of a well-formed fingerprint (lowercase sha256 hex).
_HEX = set("0123456789abcdef")

#: a versioned fingerprint: base hex plus a strict ``@v<digits>`` suffix.
_VERSIONED_RE = re.compile(r"^([0-9a-f]+)@v([0-9]+)$")


def _is_hex(text: str) -> bool:
    """Whether *text* is non-empty lowercase hex (a fingerprint prefix)."""
    return bool(text) and set(text) <= _HEX


def split_fingerprint(fingerprint: str) -> tuple[str, int]:
    """``(base, version)`` of a possibly versioned fingerprint.

    A bare fingerprint is version 0; ``<fp>@v3`` is ``(fp, 3)``.  Raises
    :class:`~repro.exceptions.ValidationError` on a malformed ``@``
    suffix (the strictness the disk-sweep glob relies on).
    """
    if "@" not in fingerprint:
        return fingerprint, 0
    match = _VERSIONED_RE.match(fingerprint)
    if match is None:
        raise ValidationError(
            f"malformed versioned fingerprint {fingerprint!r} (want <hex>@v<N>)"
        )
    return match.group(1), int(match.group(2))


def versioned_fingerprint(base: str, version: int) -> str:
    """The wire form of ``(base, version)``: bare at version 0, else ``@vN``."""
    return base if version == 0 else f"{base}@v{int(version)}"


def _disk_fragment(fingerprint: str) -> str | None:
    """The filename fragment of one fingerprint's persisted entries.

    ``None`` when the fingerprint is not well-formed — a caller-supplied
    string with glob metacharacters must never reach the disk sweep.
    """
    try:
        base, version = split_fingerprint(fingerprint)
    except ValidationError:
        return None
    if not _is_hex(base[:16]):
        return None
    return versioned_fingerprint(base[:16], version)


def _digest_array(digest, part) -> None:
    """Fold one array's dtype, shape and raw bytes into *digest*."""
    arr = np.ascontiguousarray(part)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


def dataset_fingerprint(dataset) -> str:
    """SHA-256 fingerprint of a dataset's exact contents.

    For a binary :class:`~repro.knn.Dataset` the hash covers the
    positive and negative point matrices, both multiplicity vectors
    (dtype, shape and raw bytes each) and the discrete flag.  A
    :class:`~repro.knn.MultiClassDataset` hashes a ``multiclass``
    domain marker plus every class's label, rows and multiplicities in
    canonical (ascending-label) order — so a multiclass lineage can
    never collide with a binary one, even over identical bytes.
    Bit-identical datasets — and only those — share a fingerprint.
    """
    digest = hashlib.sha256()
    if isinstance(dataset, MultiClassDataset):
        digest.update(b"multiclass")
        for label in dataset.classes:
            digest.update(str(int(label)).encode())
            _digest_array(digest, dataset.class_points(label))
            _digest_array(digest, dataset.class_multiplicities(label))
    elif isinstance(dataset, Dataset):
        for part in (
            dataset.positives,
            dataset.negatives,
            dataset.positive_multiplicities,
            dataset.negative_multiplicities,
        ):
            _digest_array(digest, part)
    else:
        raise ValidationError(
            "dataset must be a repro.knn.Dataset or repro.knn.MultiClassDataset"
        )
    digest.update(b"discrete" if dataset.discrete else b"continuous")
    return digest.hexdigest()


def canonical_params(params: dict) -> str:
    """Canonical JSON serialization of a request's parameter dict.

    Sorted keys and explicit separators make the serialization an
    injective function of the (string-keyed, JSON-valued) params, so it
    is safe to embed in a cache key.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"request params must be JSON-serializable: {exc}"
        ) from exc


def request_key(
    fingerprint: str, method: str, instance: np.ndarray, params: dict
) -> bytes:
    """The memoization key of one explanation request.

    The fingerprint leads the key so :meth:`ResultCache.invalidate` can
    drop every entry of one dataset by prefix.
    """
    return _KEY_SEP.join(
        [
            fingerprint.encode(),
            method.encode(),
            str(instance.dtype).encode(),
            instance.tobytes(),
            canonical_params(params).encode(),
        ]
    )


class ResultCache:
    """Thread-safe LRU cache of explanation payloads, optionally on disk.

    Parameters
    ----------
    maxsize:
        number of payloads kept in memory (0 disables the cache
        entirely — every lookup misses and nothing is stored).
    cache_dir:
        optional directory for persisted entries.  Writes happen on
        every :meth:`put`; reads happen on a memory miss; eviction from
        memory leaves the disk copy in place.

    Stored payloads are returned as deep copies so callers can never
    mutate a cached answer in place.
    """

    def __init__(self, maxsize: int = 2048, cache_dir=None):
        self.maxsize = max(0, int(maxsize))
        self._dir = Path(cache_dir) if cache_dir else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._data: OrderedDict[bytes, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0

    # -- core operations -------------------------------------------------

    def get(self, key: bytes):
        """``(found, payload)`` for *key*; checks memory, then disk.

        Disk reads happen outside the lock so a slow persisted lookup
        never stalls other threads' in-memory hits.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return True, copy.deepcopy(self._data[key])
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError):
                payload = None  # damaged entry: fall through to a miss
            if payload is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._store(key, payload)
                return True, copy.deepcopy(payload)
        with self._lock:
            self._misses += 1
        return False, None

    def put(self, key: bytes, payload) -> None:
        """Store *payload* under *key* (memory LRU + optional disk copy).

        The disk copy is written outside the lock (unique temp file,
        atomic rename) so persistence latency never blocks readers.
        """
        if self.maxsize == 0:
            return
        with self._lock:
            self._store(key, payload)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.with_suffix(f".{threading.get_ident()}.tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle)
            tmp.replace(path)  # atomic: readers never see partial files

    def _store(self, key: bytes, payload) -> None:
        """Insert into the memory LRU, evicting the oldest beyond maxsize."""
        self._data[key] = copy.deepcopy(payload)
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    # -- invalidation ----------------------------------------------------

    def invalidate(self, fingerprint: str) -> int:
        """Drop the entries (memory and disk) of one dataset fingerprint.

        A **versioned** fingerprint (``<fp>@v3``) drops exactly that
        version's entries — the scoped invalidation a mutation applies
        to the version it supersedes; a **bare** fingerprint drops every
        version (``<fp>`` itself plus any ``<fp>@v*``) — full dataset
        removal.  The disk sweep only runs for well-formed fragments —
        glob metacharacters in a caller-supplied string must not be able
        to match other datasets' persisted files.
        """
        versioned = "@" in fingerprint
        prefixes = [fingerprint.encode() + _KEY_SEP]
        if not versioned:
            prefixes.append(fingerprint.encode() + b"@v")
        removed = 0
        with self._lock:
            stale = [
                key
                for key in self._data
                if any(key.startswith(prefix) for prefix in prefixes)
            ]
            for key in stale:
                del self._data[key]
            removed += len(stale)
            fragment = _disk_fragment(fingerprint)
            if self._dir is not None and fragment is not None:
                patterns = [f"{fragment}-*.pkl"]
                if not versioned:
                    patterns.append(f"{fragment}@v*-*.pkl")
                for pattern in patterns:
                    for path in self._dir.glob(pattern):
                        path.unlink(missing_ok=True)
                        removed += 1
        return removed

    def clear(self) -> None:
        """Drop every memory entry and reset the counters (disk untouched)."""
        with self._lock:
            self._data.clear()
            self._hits = self._misses = self._disk_hits = self._evictions = 0

    # -- introspection ---------------------------------------------------

    def keys(self) -> list[bytes]:
        """Memory keys in LRU order (oldest first) — for eviction tests."""
        with self._lock:
            return list(self._data)

    def stats(self) -> dict:
        """``{hits, misses, disk_hits, evictions, size, maxsize}``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _disk_path(self, key: bytes) -> Path | None:
        """Persisted location of *key*: fingerprint fragment + key digest.

        The fragment keeps the ``@vN`` version suffix, so each dataset
        version's files are independently sweepable.
        """
        if self._dir is None:
            return None
        fingerprint = key.split(_KEY_SEP, 1)[0].decode()
        fragment = _disk_fragment(fingerprint)
        if fragment is None:
            fragment = hashlib.sha256(fingerprint.encode()).hexdigest()[:16]
        return self._dir / f"{fragment}-{hashlib.sha256(key).hexdigest()}.pkl"
