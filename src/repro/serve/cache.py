"""Result caching for the explanation service: fingerprints, keys, LRU.

The service memoizes every explanation answer under a key that pins
down *exactly* what was asked:

``(dataset fingerprint, instance bytes, method, canonical params)``

* the **dataset fingerprint** (:func:`dataset_fingerprint`) is a
  SHA-256 over the raw bytes of ``S+``/``S-``, their multiplicities,
  dtypes, shapes and the discrete flag — two datasets share a
  fingerprint iff they are bit-identical, so a changed dataset can
  never serve a stale answer;
* the **instance bytes** are the query vector's float64 buffer, so two
  requests hit the same entry iff the instances are bit-identical;
* the **method and params** are serialized canonically (sorted JSON),
  so ``minimum_sr`` with ``solver="sat"`` never collides with
  ``solver="milp"``, and no method ever reads another method's entries.

:class:`ResultCache` is a thread-safe LRU over those keys with optional
*disk persistence*: when ``cache_dir`` is set, every stored payload is
also pickled to ``<fingerprint[:16]>-<sha256(key)>.pkl`` inside the
directory, entries evicted from memory remain reachable on disk, and a
fresh process pointed at the same directory starts warm.  Explicit
invalidation (:meth:`ResultCache.invalidate`) removes both the memory
entries and the disk files of one fingerprint.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pickle
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from ..knn.dataset import Dataset

#: separator inside a cache key; fingerprints are hex so it cannot collide.
_KEY_SEP = b"|"

#: the alphabet of a well-formed fingerprint (lowercase sha256 hex).
_HEX = set("0123456789abcdef")


def _is_hex(text: str) -> bool:
    """Whether *text* is non-empty lowercase hex (a fingerprint prefix)."""
    return bool(text) and set(text) <= _HEX


def dataset_fingerprint(dataset: Dataset) -> str:
    """SHA-256 fingerprint of a dataset's exact contents.

    Covers the positive and negative point matrices, both multiplicity
    vectors (dtype, shape and raw bytes each) and the discrete flag.
    Bit-identical datasets — and only those — share a fingerprint.
    """
    if not isinstance(dataset, Dataset):
        raise ValidationError("dataset must be a repro.knn.Dataset")
    digest = hashlib.sha256()
    for part in (
        dataset.positives,
        dataset.negatives,
        dataset.positive_multiplicities,
        dataset.negative_multiplicities,
    ):
        arr = np.ascontiguousarray(part)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    digest.update(b"discrete" if dataset.discrete else b"continuous")
    return digest.hexdigest()


def canonical_params(params: dict) -> str:
    """Canonical JSON serialization of a request's parameter dict.

    Sorted keys and explicit separators make the serialization an
    injective function of the (string-keyed, JSON-valued) params, so it
    is safe to embed in a cache key.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"request params must be JSON-serializable: {exc}"
        ) from exc


def request_key(
    fingerprint: str, method: str, instance: np.ndarray, params: dict
) -> bytes:
    """The memoization key of one explanation request.

    The fingerprint leads the key so :meth:`ResultCache.invalidate` can
    drop every entry of one dataset by prefix.
    """
    return _KEY_SEP.join(
        [
            fingerprint.encode(),
            method.encode(),
            str(instance.dtype).encode(),
            instance.tobytes(),
            canonical_params(params).encode(),
        ]
    )


class ResultCache:
    """Thread-safe LRU cache of explanation payloads, optionally on disk.

    Parameters
    ----------
    maxsize:
        number of payloads kept in memory (0 disables the cache
        entirely — every lookup misses and nothing is stored).
    cache_dir:
        optional directory for persisted entries.  Writes happen on
        every :meth:`put`; reads happen on a memory miss; eviction from
        memory leaves the disk copy in place.

    Stored payloads are returned as deep copies so callers can never
    mutate a cached answer in place.
    """

    def __init__(self, maxsize: int = 2048, cache_dir=None):
        self.maxsize = max(0, int(maxsize))
        self._dir = Path(cache_dir) if cache_dir else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._data: OrderedDict[bytes, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0

    # -- core operations -------------------------------------------------

    def get(self, key: bytes):
        """``(found, payload)`` for *key*; checks memory, then disk.

        Disk reads happen outside the lock so a slow persisted lookup
        never stalls other threads' in-memory hits.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return True, copy.deepcopy(self._data[key])
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError):
                payload = None  # damaged entry: fall through to a miss
            if payload is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._store(key, payload)
                return True, copy.deepcopy(payload)
        with self._lock:
            self._misses += 1
        return False, None

    def put(self, key: bytes, payload) -> None:
        """Store *payload* under *key* (memory LRU + optional disk copy).

        The disk copy is written outside the lock (unique temp file,
        atomic rename) so persistence latency never blocks readers.
        """
        if self.maxsize == 0:
            return
        with self._lock:
            self._store(key, payload)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.with_suffix(f".{threading.get_ident()}.tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle)
            tmp.replace(path)  # atomic: readers never see partial files

    def _store(self, key: bytes, payload) -> None:
        """Insert into the memory LRU, evicting the oldest beyond maxsize."""
        self._data[key] = copy.deepcopy(payload)
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    # -- invalidation ----------------------------------------------------

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry (memory and disk) of one dataset fingerprint.

        The disk sweep only runs for a well-formed (hex) fingerprint
        prefix — glob metacharacters in a caller-supplied string must
        not be able to match other datasets' persisted files.
        """
        prefix = fingerprint.encode() + _KEY_SEP
        removed = 0
        with self._lock:
            stale = [key for key in self._data if key.startswith(prefix)]
            for key in stale:
                del self._data[key]
            removed += len(stale)
            disk_prefix = fingerprint[:16]
            if self._dir is not None and _is_hex(disk_prefix):
                for path in self._dir.glob(f"{disk_prefix}-*.pkl"):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

    def clear(self) -> None:
        """Drop every memory entry and reset the counters (disk untouched)."""
        with self._lock:
            self._data.clear()
            self._hits = self._misses = self._disk_hits = self._evictions = 0

    # -- introspection ---------------------------------------------------

    def keys(self) -> list[bytes]:
        """Memory keys in LRU order (oldest first) — for eviction tests."""
        with self._lock:
            return list(self._data)

    def stats(self) -> dict:
        """``{hits, misses, disk_hits, evictions, size, maxsize}``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _disk_path(self, key: bytes) -> Path | None:
        """Persisted location of *key*: fingerprint prefix + key digest."""
        if self._dir is None:
            return None
        fingerprint = key.split(_KEY_SEP, 1)[0].decode()
        return self._dir / f"{fingerprint[:16]}-{hashlib.sha256(key).hexdigest()}.pkl"
