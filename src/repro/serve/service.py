"""The long-lived explanation service: shared engines, batching, caching.

:class:`ExplanationService` is the serving layer the ROADMAP's
"millions of users" north star asks for.  A process holds **one**
service; the service holds, per registered dataset fingerprint, the
dataset and one warm :class:`~repro.knn.QueryEngine` per metric, so no
request ever pays index construction or dataset validation again.  On
top of that it adds:

* **micro-batching** — :meth:`ExplanationService.submit_many` (and the
  asyncio path, :meth:`ExplanationService.asubmit`) groups compatible
  requests (same dataset, method and params) and answers the batchable
  methods — ``classify``, ``margin``, ``radii`` — through the engine's
  vectorized paths (:meth:`~repro.knn.QueryEngine.classify_batch`,
  :meth:`~repro.knn.QueryEngine.margins_batch`,
  :meth:`~repro.knn.QueryEngine.radii_batch`), one kernel call per
  group instead of one per request;
* **result caching** — every answer is memoized in a
  :class:`~repro.serve.cache.ResultCache` keyed by
  ``(dataset fingerprint, instance bytes, method, params)``, so
  identical requests are served from memory (optionally disk) without
  re-solving; a cache hit returns a payload bit-identical to the cold
  solve that produced it (the deterministic part of the payload — see
  :data:`PROVENANCE_KEY`);
* **provenance** — portfolio-solved requests echo the
  :class:`~repro.portfolio.PortfolioResult` race record (which method
  won, per-attempt status and timing) under the payload's
  ``"provenance"`` key;
* **streaming mutation** — :meth:`ExplanationService.add_points` /
  :meth:`ExplanationService.remove_points` mutate a registered dataset
  *in place*: every warm engine absorbs the batch incrementally, the
  dataset's version (``<fp>@vN``) is bumped, and only the superseded
  version's cache entries are invalidated.  Requests pin the version
  current when they were constructed, group solves hold the engine
  lock for their whole batch (no torn batches), and a batch overtaken
  by a mutation re-pins to the current version rather than answering
  from dead data;
* **durability & observability** — with a ``state_dir``, every
  registration and mutation batch is WAL-logged (fsync'd *before* the
  version bump) and periodically snapshotted by a
  :class:`~repro.serve.durability.DurableStore`, and the service
  restores all of it on construction; :meth:`ExplanationService.
  metrics_text` renders the Prometheus ``/metrics`` page and a
  :class:`~repro.serve.metrics.StructuredLogger` emits one JSON record
  per served event (see ``docs/operations.md`` / ``docs/metrics.md``).

The solver methods — ``minimal_sr``, ``minimum_sr``,
``counterfactual`` — are not batchable (each is its own NP-hard solve),
but they share the warm engine and the result cache with everything
else, which is where a serving process beats one-shot CLI calls.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from .._validation import as_vector, check_odd_k
from ..exceptions import (
    DurabilityError,
    ReproError,
    UnknownDatasetError,
    ValidationError,
)
from ..knn import Dataset, MultiClassDataset, MultiClassEngine, QueryEngine
from ..knn.multiclass_engine import VOTES
from ..metrics import default_metric_name, get_metric
from ..solvers.race import ProcessRacer
from ..solvers.sat.pool import SATSolverPool
from .cache import (
    ResultCache,
    dataset_fingerprint,
    request_key,
    split_fingerprint,
    versioned_fingerprint,
)
from .durability import DurableStore
from .errors import error_payload
from .metrics import MetricsRegistry, StructuredLogger, render_states

#: methods answered through the engine's vectorized batch paths.
BATCH_METHODS = ("classify", "margin", "radii")

#: per-instance solver methods (cached and engine-sharing, not batchable).
SOLVER_METHODS = ("minimal_sr", "minimum_sr", "counterfactual")

#: every method the service accepts.
METHODS = BATCH_METHODS + SOLVER_METHODS

#: payload key holding race/timing metadata; everything *outside* this
#: key is a deterministic function of (dataset, instance, method, params).
PROVENANCE_KEY = "provenance"

#: bucket bounds of the ``repro_batch_occupancy`` histogram (requests
#: per solved group — batching efficiency, not latency).
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


@dataclass(frozen=True, eq=False)
class ExplanationRequest:
    """One normalized explanation request (build via ``make_request``).

    ``params`` is the canonical parameter dict (defaults filled in,
    metric resolved), and ``key`` the resulting cache key — two
    requests are interchangeable iff their keys are equal.
    """

    fingerprint: str
    method: str
    instance: np.ndarray
    params: dict
    key: bytes


@dataclass(frozen=True, eq=False)
class ExplanationResponse:
    """An answered request: JSON-ready payload plus serving metadata.

    ``payload`` carries either the method's answer or an ``"error"`` /
    ``"error_type"`` pair (execution failures are reported in-band so
    one bad request cannot poison a batch).  ``cached`` tells whether
    the answer came from the result cache; ``elapsed_s`` is the serving
    time of this response (near zero for hits).
    """

    request: ExplanationRequest
    payload: dict
    cached: bool
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when the payload is an answer, not an in-band error."""
        return "error" not in self.payload


class ExplanationService:
    """Batched, cached serving front end over every explanation pipeline.

    Parameters
    ----------
    backend:
        :class:`~repro.knn.QueryEngine` index backend for every engine
        the service builds (default ``"auto"``).
    cache_size:
        memory entries of the result cache (0 disables caching).
    cache_dir:
        optional directory for persisted cache entries (entries survive
        process restarts; see :class:`~repro.serve.cache.ResultCache`).
    max_batch:
        largest query block stacked into one vectorized engine call.
    max_wait_s:
        how long the asyncio path lets concurrent requests accumulate
        before flushing a micro-batch (the batching window).
    state_dir:
        optional durability root.  When set, the service keeps a
        :class:`~repro.serve.durability.DurableStore` there: every
        registration and applied mutation batch is WAL-logged (fsync'd
        *before* the version bump) and the service **restores** every
        recoverable lineage from that directory on construction —
        datasets, ``@vN`` versions, and (when the newest snapshot is
        current) warm engines all survive a crash or restart.
    snapshot_every:
        mutations between dataset(+engine) snapshots per lineage
        (``0`` disables snapshots; the WAL alone still restores).
    log_stream:
        optional writable stream for structured JSON logs (one object
        per line; ``None`` — the library default — logs nothing).
    solver_pool:
        max entries of the warm cross-query SAT solver pool used by the
        portfolio solver (``0`` disables pooling).  Pool entries are
        keyed by versioned ``@vN`` fingerprint, so streaming mutations
        invalidate pooled solvers exactly like result-cache entries.
    parallel_portfolio:
        when True, ``solver="portfolio"`` requests race their exact
        methods concurrently in a process pool
        (:class:`~repro.solvers.race.ProcessRacer`, spawned eagerly in
        the constructor, before any serving thread exists) instead of
        sequentially.  Answers are bit-identical either way — the
        portfolio always returns the canonical witness.
    race_workers:
        worker processes of the parallel-portfolio racer (default
        ``min(3, cpu_count)``); ignored unless *parallel_portfolio*.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        cache_size: int = 2048,
        cache_dir=None,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        state_dir=None,
        snapshot_every: int = 64,
        log_stream=None,
        solver_pool: int = 32,
        parallel_portfolio: bool = False,
        race_workers: int | None = None,
    ):
        self.backend = backend
        self.cache = ResultCache(cache_size, cache_dir)
        self.max_batch = max(1, int(max_batch))
        self.max_wait_s = max(0.0, float(max_wait_s))
        self._datasets: dict[str, Dataset | MultiClassDataset] = {}
        self._versions: dict[str, int] = {}
        self._engines: dict[tuple[str, str], QueryEngine | MultiClassEngine] = {}
        self._engine_locks: dict[tuple[str, str], threading.Lock] = {}
        self._mutation_locks: dict[str, threading.Lock] = {}
        self._lock = threading.RLock()
        self._pending: list[tuple[ExplanationRequest, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0
        self._mutations = 0
        self.solver_pool = (
            SATSolverPool(max_entries=int(solver_pool)) if solver_pool else None
        )
        self.parallel_portfolio = bool(parallel_portfolio)
        # The racer forks eagerly, before any serving thread exists
        # (fork-after-threads is the classic deadlock); with the flag off
        # no processes are spawned at all.
        self.racer = (
            ProcessRacer(max_workers=race_workers) if self.parallel_portfolio else None
        )
        self._portfolio = {
            "races": 0,
            "parallel": 0,
            "sequential": 0,
            "canonical": 0,
            "fallback_witness": 0,
            "anytime": 0,
        }
        self._portfolio_attempts: dict[str, int] = {}
        self.log = StructuredLogger(log_stream, component="service")
        self.metrics = MetricsRegistry()
        self._latency_hist = self.metrics.histogram(
            "repro_request_latency_seconds",
            "Serving latency of one solved request group, split by class "
            "(batch = vectorized engine call, solver = per-instance NP solve).",
            ("class",),
        )
        self._occupancy_hist = self.metrics.histogram(
            "repro_batch_occupancy",
            "Requests per solved group (micro-batching efficiency).",
            buckets=OCCUPANCY_BUCKETS,
        )
        self.durability: DurableStore | None = None
        self.restored: dict = {}
        if state_dir is not None:
            self.durability = DurableStore(
                state_dir,
                snapshot_every=snapshot_every,
                metrics=self.metrics,
                logger=self.log.child("durability"),
            )
            self._restore_state()

    # -- durability ------------------------------------------------------

    def _restore_state(self) -> None:
        """Adopt every recoverable lineage from the durability root.

        Runs once, from the constructor, before the service takes any
        traffic: restored datasets and their ``@vN`` versions enter the
        registry exactly as they were acknowledged pre-crash (the WAL
        fsync-before-bump ordering guarantees every acknowledged version
        is on disk), and warm engines ride along when the newest
        snapshot captured the final restored version.  Unrecoverable
        lineages are logged and skipped — boot never fails on damaged
        state.  ``self.restored`` keeps the per-lineage outcome summary
        surfaced by :meth:`stats`.
        """
        for base, lineage in self.durability.restore_all().items():
            self.restored[base[:16]] = {
                "version": lineage.version,
                "replayed": lineage.replayed,
                "recovered": lineage.dataset is not None,
                "truncated": lineage.truncated,
            }
            if lineage.dataset is None:
                continue
            with self._lock:
                self._datasets[base] = lineage.dataset
                self._versions[base] = lineage.version
                for metric, engine in lineage.engines.items():
                    self._engines[(base, metric)] = engine
                    self._engine_locks.setdefault((base, metric), threading.Lock())

    def _engine_blobs(self, base: str, engine_keys) -> dict:
        """Pickle the lineage's warm engines for a snapshot.

        Called while the caller holds every engine lock of *base* (so no
        solve or mutation races the serialization).  Engines that refuse
        to pickle are skipped with a structured warning — a snapshot
        without engines still restores, just cold.
        """
        blobs: dict[str, bytes] = {}
        for key in engine_keys:
            with self._lock:
                engine = self._engines.get(key)
            if engine is None:
                continue
            try:
                blobs[key[1]] = pickle.dumps(engine)
            except Exception as exc:
                self.log.log(
                    "engine_snapshot_skipped", level="warning",
                    base=base[:16], metric=key[1], error=str(exc),
                )
        return blobs

    # -- dataset registry ------------------------------------------------

    def add_dataset(self, dataset: Dataset | MultiClassDataset) -> str:
        """Register *dataset* and return its fingerprint (idempotent).

        Accepts a binary :class:`~repro.knn.Dataset` or an
        integer-labeled :class:`~repro.knn.MultiClassDataset` — the two
        kinds share the registry, the mutation lifecycle and the cache
        machinery, differing only in which engine answers their queries.
        Re-registering bit-identical data returns the same fingerprint
        and keeps the warm engines; different data gets a different
        fingerprint, so answers can never leak across dataset versions.
        The returned content hash stays the dataset's stable *base*
        identity across streaming mutations — those bump a ``@vN``
        version suffix instead of re-hashing (see :meth:`add_points`).
        """
        fingerprint = dataset_fingerprint(dataset)
        if self.durability is not None:
            # Durable *before* visible: a crash right after this call
            # must restore the registration (idempotent when the
            # lineage already has a WAL — including via restore).
            self.durability.register(fingerprint, dataset)
        with self._lock:
            self._datasets.setdefault(fingerprint, dataset)
            self._versions.setdefault(fingerprint, 0)
        return fingerprint

    def _resolve(self, fingerprint: str) -> tuple[str, str]:
        """``(base, current versioned fingerprint)`` for a client handle.

        A bare fingerprint always addresses the current version; a
        versioned one must *match* the current version — a superseded
        pin is rejected (its cache entries are gone and its data no
        longer exists), which is how stale in-flight clients learn the
        dataset moved on.
        """
        base, version = split_fingerprint(fingerprint)
        with self._lock:
            if base not in self._datasets:
                raise UnknownDatasetError(
                    f"unknown dataset fingerprint {base[:16]!r}...; "
                    "register the dataset first (add_dataset / POST /v1/datasets)"
                )
            current = self._versions.get(base, 0)
        if "@" in fingerprint and version != current:
            raise ValidationError(
                f"dataset version v{version} was superseded (current: v{current}); "
                "re-issue the request against the current fingerprint"
            )
        return base, versioned_fingerprint(base, current)

    def dataset(self, fingerprint: str) -> Dataset:
        """The registered dataset behind *fingerprint* (raises if unknown).

        Accepts bare or (current) versioned fingerprints and returns the
        dataset's *current* contents.
        """
        base, _ = self._resolve(fingerprint)
        with self._lock:
            return self._datasets[base]

    def add_points(self, fingerprint: str, points, labels, multiplicities=None) -> dict:
        """Insert labeled points into a registered dataset, in place.

        Every warm engine of the dataset absorbs the batch incrementally
        (:meth:`QueryEngine.add_points <repro.knn.engine.QueryEngine.
        add_points>`), the registered snapshot is replaced, the version
        is bumped, and only the superseded version's cache entries are
        invalidated — other datasets and other versions are untouched.
        Returns ``{"fingerprint", "version", "invalidated"}`` plus the
        dataset's shape counts (``n_positive``/``n_negative`` for binary
        lineages, ``classes``/``counts`` for multiclass ones) with the
        new versioned fingerprint.
        """
        return self._mutate(fingerprint, "with_added", "add_points",
                            points, labels, multiplicities)

    def remove_points(self, fingerprint: str, points, labels, multiplicities=None) -> dict:
        """Remove labeled points from a registered dataset, in place.

        The mirror of :meth:`add_points`; validation (absent points,
        insufficient multiplicity, emptying the dataset) raises before
        any engine is touched.
        """
        return self._mutate(fingerprint, "with_removed", "remove_points",
                            points, labels, multiplicities)

    def _mutate(
        self, fingerprint: str, dataset_op: str, engine_op: str,
        points, labels, multiplicities,
    ) -> dict:
        """Shared add/remove path: mutate engines + snapshot under lock."""
        base, _ = self._resolve(fingerprint)
        with self._mutation_lock(base):
            with self._lock:
                snapshot = self._datasets.get(base)
                engine_keys = sorted(k for k in self._engines if k[0] == base)
            if snapshot is None:  # removed while we waited on the lock
                raise UnknownDatasetError(
                    f"unknown dataset fingerprint {base[:16]!r}...; it was removed"
                )
            # Validate once, functionally — a bad batch must leave the
            # dataset, every engine, and the version untouched.
            new_snapshot = getattr(snapshot, dataset_op)(points, labels, multiplicities)
            locks = [self._engine_lock(base, metric) for _, metric in engine_keys]
            for lock in locks:
                lock.acquire()
            try:
                # In-flight batches hold their engine's lock for the whole
                # group (solve + cache write), so they complete against the
                # version they started on; everything arriving after this
                # block re-resolves to the bumped version.
                with self._lock:
                    engines = [
                        engine
                        for key in engine_keys
                        if (engine := self._engines.get(key)) is not None
                    ]
                # Pre-validate against every engine before applying to any:
                # backend-specific constraints (a bitpack engine rejecting
                # non-binary rows) must refuse the whole batch up front,
                # never leave some engines mutated and others not.
                check_op = "add" if engine_op == "add_points" else "remove"
                for engine in engines:
                    engine.check_mutation(points, labels, multiplicities, op=check_op)
                # WAL point: the batch passed every validation, so it
                # *will* apply — make it durable (fsync'd) before any
                # engine or the version is touched.  A DurabilityError
                # here aborts the mutation with all state untouched;
                # under the mutation lock the version cannot move, so
                # the version the record commits to is exact.
                with self._lock:
                    next_version = self._versions.get(base, 0) + 1
                if self.durability is not None:
                    self.durability.append_mutation(
                        base, next_version, check_op, new_snapshot,
                        points, labels, multiplicities,
                    )
                for engine in engines:
                    getattr(engine, engine_op)(points, labels, multiplicities)
                with self._lock:
                    self._datasets[base] = new_snapshot
                    old_version = self._versions.get(base, 0)
                    self._versions[base] = old_version + 1
                    self._mutations += 1
                # Pickle warm engines for the periodic snapshot while we
                # still hold every engine lock (no solve can race the
                # serialization); the snapshot file itself is written
                # after the locks drop.
                engine_blobs = None
                if self.durability is not None and self.durability.snapshot_due(
                    old_version + 1
                ):
                    engine_blobs = self._engine_blobs(base, engine_keys)
            finally:
                for lock in locks:
                    lock.release()
            if engine_blobs is not None:
                try:
                    self.durability.snapshot(
                        base, new_snapshot, old_version + 1, engine_blobs
                    )
                except DurabilityError as exc:
                    # Snapshot failure is not fatal: the WAL already
                    # covers every acknowledged version.
                    self.log.log(
                        "snapshot_failed", level="warning",
                        base=base[:16], version=old_version + 1, error=str(exc),
                    )
            # The superseded version's sweep can touch disk (persisted
            # entries); run it after the engine locks are down so query
            # traffic is never stalled behind filesystem I/O.  No group
            # can still write old-version entries: every group that
            # started before the bump completed while we held its lock.
            removed = self.cache.invalidate(versioned_fingerprint(base, old_version))
            if self.solver_pool is not None:
                # Pooled solvers encode the superseded version's dataset;
                # sweep them under the same versioned fingerprint as the
                # result cache so warm state can never outlive its data.
                self.solver_pool.invalidate(versioned_fingerprint(base, old_version))
        if self.log.enabled:
            self.log.log(
                "mutation_applied", base=base[:16], op=check_op,
                version=old_version + 1, batch=int(np.asarray(points).shape[0]),
                invalidated=removed,
            )
        return {
            "fingerprint": versioned_fingerprint(base, old_version + 1),
            "version": old_version + 1,
            "invalidated": removed,
            **_counts_payload(new_snapshot),
        }

    def remove_dataset(self, fingerprint: str) -> int:
        """Drop a dataset, its warm engines, and every cached answer.

        Returns the number of cache entries invalidated.  A bare (or
        current-version) fingerprint removes the whole dataset, every
        engine, and every version's cache entries; a *superseded*
        versioned fingerprint only sweeps that stale version's cache
        entries and keeps the live dataset — the scoped variant a
        client uses to garbage-collect a version it pinned.
        """
        base, version = split_fingerprint(fingerprint)
        with self._lock:
            known = base in self._datasets
            current = self._versions.get(base, 0)
        if known and "@" in fingerprint and version != current:
            if self.solver_pool is not None:
                self.solver_pool.invalidate(fingerprint)
            return self.cache.invalidate(fingerprint)
        # Serialize with streaming mutations: an in-flight _mutate must
        # finish (or see the dataset gone and refuse) before the registry
        # is torn down — never resurrect a deleted dataset.  The mutation
        # lock entry itself is kept: waiters blocked on this object
        # re-check registration after acquiring it.
        with self._mutation_lock(base):
            with self._lock:
                self._datasets.pop(base, None)
                self._versions.pop(base, None)
                for key in [k for k in self._engines if k[0] == base]:
                    del self._engines[key]
                    self._engine_locks.pop(key, None)
            if self.durability is not None:
                # Under the mutation lock, so no concurrent mutation can
                # append to the lineage while its directory is removed.
                self.durability.retire(base)
        if self.solver_pool is not None:
            self.solver_pool.invalidate(base)
        return self.cache.invalidate(base)

    def invalidate(self, fingerprint: str) -> int:
        """Drop cached answers for *fingerprint*, keeping the dataset."""
        return self.cache.invalidate(fingerprint)

    def fingerprints(self) -> list[str]:
        """Current versioned fingerprints of every registered dataset."""
        with self._lock:
            return [
                versioned_fingerprint(base, self._versions.get(base, 0))
                for base in self._datasets
            ]

    def describe(self, fingerprint: str) -> dict:
        """JSON-ready metadata of a registered dataset (``GET /v2/datasets/{fp}``).

        Returns the *current* versioned fingerprint plus shape facts:
        ``{"fingerprint", "version", "kind", "dimension", "discrete"}``
        and the kind-specific counts — ``n_positive``/``n_negative``
        for a binary lineage, ``classes``/``counts`` for a multiclass
        one.  Raises
        :class:`~repro.exceptions.UnknownDatasetError` for fingerprints
        the service has never seen.
        """
        base, current = self._resolve(fingerprint)
        with self._lock:
            data = self._datasets[base]
            version = self._versions.get(base, 0)
        return {
            "fingerprint": current,
            "version": version,
            "kind": _dataset_kind(data),
            "dimension": data.dimension,
            "discrete": bool(data.discrete),
            **_counts_payload(data),
        }

    def engine(self, fingerprint: str, metric=None) -> QueryEngine | MultiClassEngine:
        """The warm shared engine for ``(fingerprint, metric)``.

        Built on first use with the service's backend and reused (and
        mutated in place by :meth:`add_points` / :meth:`remove_points`)
        by every subsequent request — this is the construction cost a
        long-lived service amortizes away.  Binary lineages get a
        :class:`~repro.knn.QueryEngine`, multiclass ones a
        :class:`~repro.knn.MultiClassEngine` (one shared joint index —
        never a per-class copy).
        """
        base, _ = self._resolve(fingerprint)
        with self._lock:
            data = self._datasets[base]
        name = self._metric_name(data, metric)
        with self._lock:
            engine = self._engines.get((base, name))
        if engine is not None:
            return engine
        # First use: build under the dataset's mutation lock, so a
        # streaming mutation cannot slip between the snapshot read and
        # the registration — such an engine would be born one version
        # stale and never catch up.
        with self._mutation_lock(base):
            with self._lock:
                engine = self._engines.get((base, name))
                if engine is None:
                    data = self._datasets[base]
                    engine_cls = (
                        MultiClassEngine
                        if isinstance(data, MultiClassDataset)
                        else QueryEngine
                    )
                    engine = engine_cls(data, name, backend=self.backend)
                    self._engines[(base, name)] = engine
                    # setdefault: a group solve may already hold a lock
                    # created for this key — never swap the object out
                    # from under it.
                    self._engine_locks.setdefault((base, name), threading.Lock())
        return engine

    def _engine_lock(self, fingerprint: str, metric_name: str) -> threading.Lock:
        """The mutex serializing work over one ``(dataset, metric)`` engine.

        Solver pipelines drive the single-query entry points, which
        mutate the engine's internal LRU caches; batch groups must not
        interleave with a streaming mutation (a half-mutated engine
        would tear the batch); and mutations take every engine lock of
        the dataset before bumping the version.  All three funnel
        through this lock.
        """
        with self._lock:
            return self._engine_locks.setdefault(
                (fingerprint, metric_name), threading.Lock()
            )

    def _mutation_lock(self, base: str) -> threading.Lock:
        """The per-dataset lock serializing streaming mutations."""
        with self._lock:
            return self._mutation_locks.setdefault(base, threading.Lock())

    @staticmethod
    def _metric_name(dataset, metric) -> str:
        """Resolve a request's metric (default: Hamming iff discrete)."""
        if metric is None:
            metric = default_metric_name(dataset.discrete)
        return get_metric(metric).name

    # -- request construction --------------------------------------------

    def make_request(
        self, fingerprint: str, method: str, instance, **params
    ) -> ExplanationRequest:
        """Validate and normalize one request into canonical form.

        Fills parameter defaults and resolves the metric so that
        equivalent requests produce equal cache keys; raises
        :class:`~repro.exceptions.ValidationError` on unknown methods,
        unknown params, or a dimension mismatch.  The request *pins the
        dataset version current at construction time* — its fingerprint
        and cache key carry the ``@vN`` suffix, so a mutation landing
        later can never serve it a stale cache hit (the superseded
        version's entries are invalidated wholesale).
        """
        base, current = self._resolve(fingerprint)
        with self._lock:
            data = self._datasets[base]
        if method not in METHODS:
            raise ValidationError(
                f"unknown method {method!r}; choose from {'|'.join(METHODS)}"
            )
        xv = as_vector(instance, name="instance")
        if xv.shape[0] != data.dimension:
            raise ValidationError(
                f"instance has dimension {xv.shape[0]}, "
                f"dataset has {data.dimension}"
            )
        xv = np.ascontiguousarray(xv)
        xv.setflags(write=False)
        norm = self._normalize_params(data, method, dict(params))
        key = request_key(current, method, xv, norm)
        return ExplanationRequest(current, method, xv, norm, key)

    def _normalize_params(self, dataset, method: str, params: dict) -> dict:
        """Canonical parameter dict for *method* (defaults made explicit).

        ``classify`` accepts ``vote`` (``uniform`` | ``distance``) on
        every dataset kind.  Multiclass lineages additionally accept
        ``target_label`` on ``margin``, ``radii`` and the solver
        methods — the one-vs-rest label the answer is scoped to
        (omitted: per-class payloads for margin/radii, the predicted
        label for solvers) — and restrict solver methods to ``k = 1``,
        the regime where the paper's merge reduction is exact.
        """
        multiclass = isinstance(dataset, MultiClassDataset)
        out = {
            "k": check_odd_k(params.pop("k", 1)),
            "metric": self._metric_name(dataset, params.pop("metric", None)),
        }
        if method == "classify":
            vote = str(params.pop("vote", "uniform"))
            if vote not in VOTES:
                raise ValidationError(
                    f"vote must be one of {'|'.join(VOTES)}, got {vote!r}"
                )
            out["vote"] = vote
        if multiclass and method in ("margin", "radii") + SOLVER_METHODS:
            target = params.pop("target_label", None)
            if target is not None:
                target = int(target)
                if target not in dataset.classes:
                    raise ValidationError(
                        f"unknown target_label {target}; dataset classes are "
                        f"{[int(c) for c in dataset.classes]}"
                    )
            out["target_label"] = target
        if multiclass and method in SOLVER_METHODS and out["k"] != 1:
            raise ValidationError(
                "multiclass explanations require k=1 (the paper's merge "
                "reduction is exact only there); got k="
                f"{out['k']}"
            )
        if method in ("minimum_sr", "counterfactual"):
            out["solver"] = str(params.pop("solver", "auto"))
            budget = params.pop("budget", None)
            out["budget"] = None if budget is None else float(budget)
        if params:
            raise ValidationError(
                f"unknown params for method {method!r}: {sorted(params)}"
            )
        return out

    # -- synchronous serving ---------------------------------------------

    def submit(self, fingerprint: str, method: str, instance, **params):
        """Serve one request (cache → solve); returns an ExplanationResponse."""
        return self.submit_requests(
            [self.make_request(fingerprint, method, instance, **params)]
        )[0]

    def explain(
        self, fingerprint: str, method: str, instances: Sequence,
        params: dict | None = None, request_id: str | None = None,
    ) -> list[dict]:
        """Serve a homogeneous instance batch as JSON-ready wire dicts.

        This is the ``/v2/explain`` envelope's programmatic twin — one
        ``(fingerprint, method, params)`` triple applied to a list of
        *instances* — and the call surface the cluster front scatters to
        workers (:class:`~repro.serve.cluster.ClusterService` exposes
        the same signature).  Validation errors raise; execution
        failures stay in-band per instance.  Returns one
        ``{"result", "cached", "elapsed_ms"}`` dict per instance, in
        order.  ``request_id`` is the provenance id threaded down from
        the HTTP front (stamped on the response as ``X-Request-ID``) —
        this layer's structured ``explain_served`` record carries it, so
        one grep reconstructs the request's path across processes.
        """
        params = dict(params or {})
        start = perf_counter()
        requests = [
            self.make_request(fingerprint, method, instance, **params)
            for instance in instances
        ]
        responses = self.submit_requests(requests)
        if self.log.enabled:
            self.log.log(
                "explain_served",
                request_id=request_id,
                base=split_fingerprint(fingerprint)[0][:16],
                method=method,
                instances=len(responses),
                cached=sum(1 for r in responses if r.cached),
                errors=sum(1 for r in responses if not r.ok),
                elapsed_ms=round((perf_counter() - start) * 1000.0, 3),
            )
        return [
            {
                "result": response.payload,
                "cached": response.cached,
                "elapsed_ms": response.elapsed_s * 1000.0,
            }
            for response in responses
        ]

    def submit_many(self, requests: Sequence) -> list[ExplanationResponse]:
        """Serve a batch of requests, micro-batching compatible ones.

        Accepts :class:`ExplanationRequest` objects or ``(fingerprint,
        method, instance)`` / ``(fingerprint, method, instance, params)``
        tuples.  Responses come back in request order.
        """
        normalized = []
        for req in requests:
            if isinstance(req, ExplanationRequest):
                normalized.append(req)
            else:
                fingerprint, method, instance, *rest = req
                params = rest[0] if rest else {}
                normalized.append(
                    self.make_request(fingerprint, method, instance, **params)
                )
        return self.submit_requests(normalized)

    def submit_requests(
        self, requests: Sequence[ExplanationRequest]
    ) -> list[ExplanationResponse]:
        """Serve normalized requests: cache hits, then grouped cold solves.

        Cold requests are grouped by ``(fingerprint, method, params)``;
        each batchable group runs through one vectorized engine call per
        ``max_batch`` block, duplicate keys within the batch are solved
        once, and every produced answer lands in the cache before the
        responses are assembled in request order.
        """
        start = perf_counter()
        with self._lock:
            self._requests += len(requests)
        answered: dict[int, ExplanationResponse] = {}
        cold: dict[bytes, list[int]] = {}
        for i, req in enumerate(requests):
            found, payload = self.cache.get(req.key)
            if found:
                answered[i] = ExplanationResponse(
                    req, payload, cached=True, elapsed_s=perf_counter() - start
                )
            else:
                cold.setdefault(req.key, []).append(i)
        groups: dict[tuple, list[bytes]] = {}
        for key, indices in cold.items():
            req = requests[indices[0]]
            group_id = (req.fingerprint, req.method, tuple(sorted(req.params.items())))
            groups.setdefault(group_id, []).append(key)
        for (fingerprint, method, _), keys in groups.items():
            reqs = [requests[cold[key][0]] for key in keys]
            params = reqs[0].params
            group_start = perf_counter()
            solved_keys, payloads = self._serve_group(fingerprint, method, params, reqs)
            self._latency_hist.observe(
                perf_counter() - group_start,
                **{"class": "batch" if method in BATCH_METHODS else "solver"},
            )
            self._occupancy_hist.observe(float(len(reqs)))
            with self._lock:
                self._batches += 1
                self._batched_requests += len(reqs)
                self._largest_batch = max(self._largest_batch, len(reqs))
            for key, solved_key, payload in zip(keys, solved_keys, payloads):
                if "error" not in payload:
                    self.cache.put(solved_key, payload)
                for i in cold[key]:
                    answered[i] = ExplanationResponse(
                        requests[i],
                        payload,
                        cached=False,
                        elapsed_s=perf_counter() - start,
                    )
        return [answered[i] for i in range(len(requests))]

    # -- evaluation ------------------------------------------------------

    def _serve_group(
        self,
        fingerprint: str,
        method: str,
        params: dict,
        reqs: Sequence[ExplanationRequest],
    ) -> tuple[list[bytes], list[dict]]:
        """Solve one compatible group under its engine lock.

        The lock is held for the whole group — solve *and* cache-key
        resolution — so a streaming mutation can never tear a batch:
        either the group completes against the version it started on,
        or (if a mutation landed between request construction and
        here) the whole group re-pins to the current version, answers
        against the mutated engine, and caches under the current
        versioned keys.  Returns ``(cache keys, payloads)`` aligned
        with *reqs*.
        """
        base, _ = split_fingerprint(fingerprint)
        with self._engine_lock(base, params["metric"]):
            try:
                _, current = self._resolve(base)
                if method in BATCH_METHODS:
                    payloads = self._solve_batched(base, method, params, reqs)
                else:
                    payloads = [
                        self._solve_one(base, method, params, req.instance)
                        for req in reqs
                    ]
            except ReproError as exc:
                # Dataset gone, or k outgrew a shrunken dataset: the whole
                # group fails in-band (errors are never cached).
                return [req.key for req in reqs], [error_payload(exc) for _ in reqs]
            keys = [
                req.key
                if req.fingerprint == current
                else request_key(current, method, req.instance, params)
                for req in reqs
            ]
        return keys, payloads

    def _solve_batched(
        self,
        fingerprint: str,
        method: str,
        params: dict,
        reqs: Sequence[ExplanationRequest],
    ) -> list[dict]:
        """Answer a compatible group through one engine batch call per block.

        Binary and multiclass lineages share the batching machinery; the
        payload shapes differ only where the question does — a
        multiclass ``margin``/``radii`` request without ``target_label``
        answers per class (``{"margins": {label: v}}`` /
        ``{"r_pos": {label: v}, "r_neg": {label: v}}``), with a target it
        answers the scalar one-vs-rest shape binary requests use.
        """
        engine = self.engine(fingerprint, params["metric"])
        k = params["k"]
        multiclass = isinstance(engine, MultiClassEngine)
        payloads: list[dict] = []
        for start in range(0, len(reqs), self.max_batch):
            block = np.vstack([r.instance for r in reqs[start : start + self.max_batch]])
            if method == "classify":
                labels = engine.classify_batch(block, k, vote=params["vote"])
                payloads.extend({"label": int(v)} for v in labels)
            elif method == "margin":
                if multiclass and params["target_label"] is None:
                    margins = engine.class_margins_batch(block, k)
                    payloads.extend(
                        {
                            "margins": {
                                str(c): float(row[j])
                                for j, c in enumerate(engine.classes)
                            }
                        }
                        for row in margins
                    )
                elif multiclass:
                    margins = engine.margins_batch(block, k, params["target_label"])
                    payloads.extend({"margin": float(v)} for v in margins)
                else:
                    margins = engine.margins_batch(block, k)
                    payloads.extend({"margin": float(v)} for v in margins)
            else:  # radii
                if multiclass and params["target_label"] is None:
                    radii, rest = engine.class_radii_batch(block, k)
                    payloads.extend(
                        {
                            "r_pos": {
                                str(c): float(radii[i, j])
                                for j, c in enumerate(engine.classes)
                            },
                            "r_neg": {
                                str(c): float(rest[i, j])
                                for j, c in enumerate(engine.classes)
                            },
                        }
                        for i in range(block.shape[0])
                    )
                elif multiclass:
                    r_pos, r_neg = engine.radii_batch(block, k, params["target_label"])
                    payloads.extend(
                        {"r_pos": float(p), "r_neg": float(n)}
                        for p, n in zip(r_pos, r_neg)
                    )
                else:
                    r_pos, r_neg = engine.radii_batch(block, k)
                    payloads.extend(
                        {"r_pos": float(p), "r_neg": float(n)}
                        for p, n in zip(r_pos, r_neg)
                    )
        return payloads

    def _solve_one(
        self, fingerprint: str, method: str, params: dict, x: np.ndarray
    ) -> dict:
        """Answer one solver-method request, reporting failures in-band.

        Runs under the group's engine lock (taken in
        :meth:`_serve_group`), which serializes the solver pipelines'
        single-query cache mutations and excludes streaming mutations.
        """
        try:
            return self._dispatch_solver(fingerprint, method, params, x)
        except ReproError as exc:
            return error_payload(exc)

    def _dispatch_solver(
        self, fingerprint: str, method: str, params: dict, x: np.ndarray
    ) -> dict:
        """Route a solver method to its pipeline over the shared engine.

        Binary lineages solve directly on their warm engine.  Multiclass
        lineages go through the paper's merge reduction: the engine's
        lazily cached one-vs-rest binary view of ``target_label`` (or of
        the predicted label when no target is given) answers the solve,
        and the payload echoes the resolved ``label`` (plus
        ``target_label`` when one was requested).  Merged views carry no
        ``@vN`` lineage fingerprint of their own, so multiclass solves
        skip the warm solver pool — correctness over reuse.
        """
        engine = self.engine(fingerprint, params["metric"])
        if isinstance(engine, MultiClassEngine):
            target = params.get("target_label")
            label = int(engine.classify(x, 1))
            if method == "counterfactual" and target is not None and target == label:
                raise ValidationError("x already has the target label")
            merged = engine.merged_engine(label if target is None else target)
            payload = self._run_solver(
                merged, method, params, x, pool_fingerprint=None, solver_pool=None
            )
            payload["label"] = label
            if target is not None:
                payload["target_label"] = int(target)
            return payload
        return self._run_solver(
            engine, method, params, x,
            pool_fingerprint=self._portfolio_fingerprint(fingerprint),
            solver_pool=self.solver_pool,
        )

    def _run_solver(
        self,
        engine: QueryEngine,
        method: str,
        params: dict,
        x: np.ndarray,
        *,
        pool_fingerprint: str | None,
        solver_pool,
    ) -> dict:
        """Run one solver pipeline on a warm binary *engine*."""
        from ..abductive import minimal_sufficient_reason, minimum_sufficient_reason
        from ..counterfactual import closest_counterfactual
        from ..portfolio import (
            portfolio_closest_counterfactual,
            portfolio_minimum_sufficient_reason,
        )

        # The engine's own snapshot, not the registry's: after a streaming
        # mutation the two are equal but not identical, and the pipeline
        # entry points check identity (as_engine).
        data = engine.dataset
        metric, k = params["metric"], params["k"]
        if method == "minimal_sr":
            X = minimal_sufficient_reason(data, k, metric, x, engine=engine)
            return {"X": sorted(int(i) for i in X), "size": len(X)}
        if method == "minimum_sr":
            if params["solver"] == "portfolio":
                race = portfolio_minimum_sufficient_reason(
                    data, k, metric, x, budget=params["budget"], engine=engine,
                    parallel=self.parallel_portfolio, racer=self.racer,
                    solver_pool=solver_pool,
                    fingerprint=pool_fingerprint,
                )
                self._note_race(race)
                answer = race.answer
                return {
                    "X": sorted(int(i) for i in answer.X),
                    "size": int(answer.size),
                    "method": race.method,
                    "exact": race.exact,
                    PROVENANCE_KEY: _race_provenance(race),
                }
            result = minimum_sufficient_reason(
                data, k, metric, x,
                method=params["solver"], engine=engine, time_limit=params["budget"],
            )
            return {
                "X": sorted(int(i) for i in result.X),
                "size": int(result.size),
                "method": result.method,
                "exact": True,
            }
        # counterfactual
        if params["solver"] == "portfolio":
            race = portfolio_closest_counterfactual(
                data, k, metric, x, budget=params["budget"], query_engine=engine,
                parallel=self.parallel_portfolio, racer=self.racer,
                solver_pool=solver_pool,
                fingerprint=pool_fingerprint,
            )
            self._note_race(race)
            payload = _counterfactual_payload(race.answer)
            payload["exact"] = race.exact
            payload[PROVENANCE_KEY] = _race_provenance(race)
            return payload
        result = closest_counterfactual(
            data, k, metric, x,
            method=params["solver"], query_engine=engine, time_limit=params["budget"],
        )
        payload = _counterfactual_payload(result)
        payload["exact"] = True
        return payload

    def _portfolio_fingerprint(self, fingerprint: str) -> str | None:
        """The versioned pool fingerprint for a portfolio request.

        Pool entries must key on the dataset *version*, not the lineage:
        a mutation bumps ``@vN`` and the superseded version's pooled
        solvers are swept alongside its cache entries.  Returns None
        when pooling is disabled (the portfolio then skips hashing).
        """
        if self.solver_pool is None:
            return None
        _, current = self._resolve(fingerprint)
        return current

    def _note_race(self, race) -> None:
        """Fold one portfolio result into the serving counters."""
        with self._lock:
            counters = self._portfolio
            counters["races"] += 1
            counters[race.mode] += 1
            if not race.exact:
                counters["anytime"] += 1
            elif race.canonical:
                counters["canonical"] += 1
            else:
                counters["fallback_witness"] += 1
            for attempt in race.attempts:
                self._portfolio_attempts[attempt.status] = (
                    self._portfolio_attempts.get(attempt.status, 0) + 1
                )

    # -- asynchronous serving --------------------------------------------

    async def asubmit(
        self, fingerprint: str, method: str, instance, **params
    ) -> ExplanationResponse:
        """Serve one request on the running asyncio loop, micro-batched.

        Cache hits are answered immediately.  Misses join the pending
        queue; a flush task lets further concurrent requests accumulate
        for up to ``max_wait_s`` and then serves the whole queue through
        :meth:`submit_requests` in a worker thread (so the loop stays
        responsive while numpy/solver code runs).  Concurrent callers on
        the same loop therefore share vectorized kernel calls.
        """
        request = self.make_request(fingerprint, method, instance, **params)
        found, payload = self.cache.get(request.key)
        if found:
            with self._lock:
                self._requests += 1
            return ExplanationResponse(request, payload, cached=True, elapsed_s=0.0)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_pending())
        return await future

    async def _flush_pending(self) -> None:
        """Drain the pending queue after each batching window elapses.

        Loops until a window closes with nothing pending: requests that
        arrive *while* a batch is solving in the executor (when
        ``asubmit`` sees a live flush task and schedules nothing) are
        picked up by the next iteration instead of being stranded.
        """
        while True:
            await asyncio.sleep(self.max_wait_s)
            pending, self._pending = self._pending, []
            if not pending:
                return
            loop = asyncio.get_running_loop()
            requests = [request for request, _ in pending]
            try:
                responses = await loop.run_in_executor(
                    None, self.submit_requests, requests
                )
            except Exception as exc:  # validation passed earlier; defensive
                for _, future in pending:
                    if not future.done():
                        future.set_exception(exc)
                continue  # stragglers may still be queued behind the failure
            for (_, future), response in zip(pending, responses):
                if not future.done():
                    future.set_result(response)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Service counters: datasets, engines, requests, batching, cache."""
        with self._lock:
            out = {
                "datasets": len(self._datasets),
                "engines": len(self._engines),
                "requests": self._requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "largest_batch": self._largest_batch,
                "mutations": self._mutations,
                "versions": {
                    base[:16]: version for base, version in self._versions.items()
                },
                "cache": self.cache.stats(),
                "portfolio": {
                    **self._portfolio,
                    "attempts": dict(self._portfolio_attempts),
                },
            }
        out["solver_pool"] = (
            self.solver_pool.stats()
            if self.solver_pool is not None
            else {
                "hits": 0, "misses": 0, "recycled": 0, "evictions": 0,
                "invalidated": 0, "entries": 0, "leases": 0,
            }
        )
        if self.racer is not None:
            out["portfolio"]["race_pool"] = self.racer.stats()
        if self.durability is not None:
            out["durability"] = self.durability.stats()
            out["restored"] = dict(self.restored)
        return out

    def _refresh_metrics(self) -> None:
        """Mirror the ``stats()`` counters into the metrics registry.

        The service counters stay the source of truth; right before a
        scrape their running totals are copied into Prometheus series
        (``set_total``), so ``stats()`` and ``/metrics`` can never
        disagree.  Derived values (hit *ratios*) are never exported —
        scrapers compute them from the raw totals, which also makes the
        series safely summable across cluster workers.
        """
        stats = self.stats()
        cache = stats["cache"]
        reg = self.metrics
        reg.counter(
            "repro_requests_total", "Requests accepted by the service."
        ).set_total(stats["requests"])
        reg.counter(
            "repro_mutations_total", "Streaming mutation batches applied."
        ).set_total(stats["mutations"])
        hits = reg.counter(
            "repro_cache_requests_total",
            "Result-cache lookups, split by outcome (hit rate = "
            "hit / (hit + miss)).",
            ("outcome",),
        )
        hits.set_total(cache["hits"], outcome="hit")
        hits.set_total(cache["misses"], outcome="miss")
        hits.set_total(cache["disk_hits"], outcome="disk_hit")
        reg.gauge(
            "repro_datasets", "Dataset lineages currently registered."
        ).set(stats["datasets"])
        reg.gauge(
            "repro_engines", "Warm (dataset, metric) engines currently held."
        ).set(stats["engines"])
        reg.gauge(
            "repro_cache_entries", "Result-cache entries currently in memory."
        ).set(cache["size"])
        pool = stats["solver_pool"]
        pool_events = reg.counter(
            "repro_solver_pool_requests_total",
            "Warm SAT-solver pool leases and lifecycle events, by outcome "
            "(hit rate = hit / (hit + miss)).",
            ("outcome",),
        )
        for outcome, key in (
            ("hit", "hits"), ("miss", "misses"), ("recycled", "recycled"),
            ("evicted", "evictions"), ("invalidated", "invalidated"),
        ):
            pool_events.set_total(pool[key], outcome=outcome)
        reg.gauge(
            "repro_solver_pool_entries", "Warm pooled SAT solvers currently held."
        ).set(pool["entries"])
        portfolio = stats["portfolio"]
        races = reg.counter(
            "repro_portfolio_races_total",
            "Portfolio races served, by execution mode.",
            ("mode",),
        )
        races.set_total(portfolio["parallel"], mode="parallel")
        races.set_total(portfolio["sequential"], mode="sequential")
        attempts = reg.counter(
            "repro_portfolio_attempts_total",
            "Portfolio attempt outcomes across all races.",
            ("status",),
        )
        for status, count in sorted(portfolio["attempts"].items()):
            attempts.set_total(count, status=status)
        race_pool = portfolio.get("race_pool")
        if race_pool is not None:
            events = reg.counter(
                "repro_race_events_total",
                "Process-racer lifecycle events (cancellations are "
                "cooperative; hard kills are the grace-window backstop).",
                ("event",),
            )
            for event in ("races", "cancelled", "hard_kills", "inline_fallbacks"):
                events.set_total(race_pool[event], event=event)
            reg.gauge(
                "repro_race_workers_alive", "Live race worker processes."
            ).set(race_pool["workers_alive"])

    def metrics_states(self) -> list:
        """Raw metric states for cross-process aggregation.

        The single-process service contributes one registry state; the
        cluster front concatenates the states of every worker plus its
        own and merges them with
        :func:`~repro.serve.metrics.render_states`.
        """
        self._refresh_metrics()
        return [self.metrics.state()]

    def metrics_text(self) -> str:
        """The ``GET /metrics`` page (Prometheus text exposition format)."""
        return render_states(self.metrics_states())

    def close(self) -> None:
        """Release serving resources (open WAL handles, for this service).

        Exists so callers can treat :class:`ExplanationService` and
        :class:`~repro.serve.cluster.ClusterService` uniformly — the
        cluster variant tears down its worker processes here.
        """
        if self.racer is not None:
            self.racer.close()
        if self.durability is not None:
            self.durability.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ExplanationService(datasets={len(self._datasets)}, "
                f"backend={self.backend!r}, cache={len(self.cache)})"
            )


def _dataset_kind(dataset) -> str:
    """``"multiclass"`` or ``"binary"`` — the wire tag of a dataset kind."""
    return "multiclass" if isinstance(dataset, MultiClassDataset) else "binary"


def _counts_payload(dataset) -> dict:
    """JSON-ready shape counts of either dataset kind.

    Binary lineages report ``n_positive``/``n_negative``; multiclass
    ones report the ascending ``classes`` list and a ``counts`` map of
    per-class sizes (multiplicities included, string keys for JSON).
    """
    if isinstance(dataset, MultiClassDataset):
        return {
            "classes": [int(c) for c in dataset.classes],
            "counts": {str(c): int(n) for c, n in dataset.counts.items()},
        }
    return {
        "n_positive": dataset.n_positive,
        "n_negative": dataset.n_negative,
    }


def _race_provenance(race) -> dict:
    """JSON-ready provenance of a :class:`~repro.portfolio.PortfolioResult`."""
    return {
        "winner": race.method,
        "exact": race.exact,
        "mode": race.mode,
        "canonical": race.canonical,
        "budget_s": race.budget_s,
        "elapsed_s": race.elapsed_s,
        "attempts": [
            {
                "method": attempt.method,
                "status": attempt.status,
                "budget_s": attempt.budget_s,
                "elapsed_s": attempt.elapsed_s,
                "detail": attempt.detail,
            }
            for attempt in race.attempts
        ],
    }


def _counterfactual_payload(result) -> dict:
    """JSON-ready payload of a CounterfactualResult (y as a plain list)."""
    return {
        "found": result.found,
        "y": None if result.y is None else [float(v) for v in result.y],
        "distance": float(result.distance),
        "infimum": float(result.infimum),
        "label_from": int(result.label_from),
        "method": result.method,
    }
