"""The long-lived explanation service: shared engines, batching, caching.

:class:`ExplanationService` is the serving layer the ROADMAP's
"millions of users" north star asks for.  A process holds **one**
service; the service holds, per registered dataset fingerprint, the
dataset and one warm :class:`~repro.knn.QueryEngine` per metric, so no
request ever pays index construction or dataset validation again.  On
top of that it adds:

* **micro-batching** — :meth:`ExplanationService.submit_many` (and the
  asyncio path, :meth:`ExplanationService.asubmit`) groups compatible
  requests (same dataset, method and params) and answers the batchable
  methods — ``classify``, ``margin``, ``radii`` — through the engine's
  vectorized paths (:meth:`~repro.knn.QueryEngine.classify_batch`,
  :meth:`~repro.knn.QueryEngine.margins_batch`,
  :meth:`~repro.knn.QueryEngine.radii_batch`), one kernel call per
  group instead of one per request;
* **result caching** — every answer is memoized in a
  :class:`~repro.serve.cache.ResultCache` keyed by
  ``(dataset fingerprint, instance bytes, method, params)``, so
  identical requests are served from memory (optionally disk) without
  re-solving; a cache hit returns a payload bit-identical to the cold
  solve that produced it (the deterministic part of the payload — see
  :data:`PROVENANCE_KEY`);
* **provenance** — portfolio-solved requests echo the
  :class:`~repro.portfolio.PortfolioResult` race record (which method
  won, per-attempt status and timing) under the payload's
  ``"provenance"`` key.

The solver methods — ``minimal_sr``, ``minimum_sr``,
``counterfactual`` — are not batchable (each is its own NP-hard solve),
but they share the warm engine and the result cache with everything
else, which is where a serving process beats one-shot CLI calls.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from .._validation import as_vector, check_odd_k
from ..exceptions import ReproError, ValidationError
from ..knn import Dataset, QueryEngine
from ..metrics import get_metric
from .cache import ResultCache, dataset_fingerprint, request_key

#: methods answered through the engine's vectorized batch paths.
BATCH_METHODS = ("classify", "margin", "radii")

#: per-instance solver methods (cached and engine-sharing, not batchable).
SOLVER_METHODS = ("minimal_sr", "minimum_sr", "counterfactual")

#: every method the service accepts.
METHODS = BATCH_METHODS + SOLVER_METHODS

#: payload key holding race/timing metadata; everything *outside* this
#: key is a deterministic function of (dataset, instance, method, params).
PROVENANCE_KEY = "provenance"


@dataclass(frozen=True, eq=False)
class ExplanationRequest:
    """One normalized explanation request (build via ``make_request``).

    ``params`` is the canonical parameter dict (defaults filled in,
    metric resolved), and ``key`` the resulting cache key — two
    requests are interchangeable iff their keys are equal.
    """

    fingerprint: str
    method: str
    instance: np.ndarray
    params: dict
    key: bytes


@dataclass(frozen=True, eq=False)
class ExplanationResponse:
    """An answered request: JSON-ready payload plus serving metadata.

    ``payload`` carries either the method's answer or an ``"error"`` /
    ``"error_type"`` pair (execution failures are reported in-band so
    one bad request cannot poison a batch).  ``cached`` tells whether
    the answer came from the result cache; ``elapsed_s`` is the serving
    time of this response (near zero for hits).
    """

    request: ExplanationRequest
    payload: dict
    cached: bool
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when the payload is an answer, not an in-band error."""
        return "error" not in self.payload


class ExplanationService:
    """Batched, cached serving front end over every explanation pipeline.

    Parameters
    ----------
    backend:
        :class:`~repro.knn.QueryEngine` index backend for every engine
        the service builds (default ``"auto"``).
    cache_size:
        memory entries of the result cache (0 disables caching).
    cache_dir:
        optional directory for persisted cache entries (entries survive
        process restarts; see :class:`~repro.serve.cache.ResultCache`).
    max_batch:
        largest query block stacked into one vectorized engine call.
    max_wait_s:
        how long the asyncio path lets concurrent requests accumulate
        before flushing a micro-batch (the batching window).
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        cache_size: int = 2048,
        cache_dir=None,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
    ):
        self.backend = backend
        self.cache = ResultCache(cache_size, cache_dir)
        self.max_batch = max(1, int(max_batch))
        self.max_wait_s = max(0.0, float(max_wait_s))
        self._datasets: dict[str, Dataset] = {}
        self._engines: dict[tuple[str, str], QueryEngine] = {}
        self._engine_locks: dict[tuple[str, str], threading.Lock] = {}
        self._lock = threading.RLock()
        self._pending: list[tuple[ExplanationRequest, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0

    # -- dataset registry ------------------------------------------------

    def add_dataset(self, dataset: Dataset) -> str:
        """Register *dataset* and return its fingerprint (idempotent).

        Re-registering bit-identical data returns the same fingerprint
        and keeps the warm engines; different data gets a different
        fingerprint, so answers can never leak across dataset versions.
        """
        fingerprint = dataset_fingerprint(dataset)
        with self._lock:
            self._datasets.setdefault(fingerprint, dataset)
        return fingerprint

    def dataset(self, fingerprint: str) -> Dataset:
        """The registered dataset behind *fingerprint* (raises if unknown)."""
        with self._lock:
            try:
                return self._datasets[fingerprint]
            except KeyError:
                raise ValidationError(
                    f"unknown dataset fingerprint {fingerprint[:16]!r}...; "
                    "register the dataset first (add_dataset / POST /v1/datasets)"
                ) from None

    def remove_dataset(self, fingerprint: str) -> int:
        """Drop a dataset, its warm engines, and every cached answer.

        Returns the number of cache entries invalidated.  This is the
        explicit invalidation hook for dataset change: remove the old
        fingerprint, register the new data (which gets its own
        fingerprint), and no stale answer can survive.
        """
        with self._lock:
            self._datasets.pop(fingerprint, None)
            for key in [k for k in self._engines if k[0] == fingerprint]:
                del self._engines[key]
                self._engine_locks.pop(key, None)
        return self.cache.invalidate(fingerprint)

    def invalidate(self, fingerprint: str) -> int:
        """Drop cached answers for *fingerprint*, keeping the dataset."""
        return self.cache.invalidate(fingerprint)

    def fingerprints(self) -> list[str]:
        """Fingerprints of every registered dataset."""
        with self._lock:
            return list(self._datasets)

    def engine(self, fingerprint: str, metric=None) -> QueryEngine:
        """The warm shared engine for ``(fingerprint, metric)``.

        Built on first use with the service's backend and reused by
        every subsequent request — this is the construction cost a
        long-lived service amortizes away.
        """
        data = self.dataset(fingerprint)
        name = self._metric_name(data, metric)
        with self._lock:
            engine = self._engines.get((fingerprint, name))
            if engine is None:
                engine = QueryEngine(data, name, backend=self.backend)
                self._engines[(fingerprint, name)] = engine
                self._engine_locks[(fingerprint, name)] = threading.Lock()
        return engine

    def _engine_lock(self, fingerprint: str, metric_name: str) -> threading.Lock:
        """The mutex serializing solver pipelines over one engine.

        The engine's batch paths are read-only and safe to share, but
        the solver pipelines drive the single-query entry points, which
        mutate the engine's internal LRU distance cache — concurrent
        solver requests on the same engine must not interleave there.
        """
        with self._lock:
            return self._engine_locks.setdefault(
                (fingerprint, metric_name), threading.Lock()
            )

    @staticmethod
    def _metric_name(dataset: Dataset, metric) -> str:
        """Resolve a request's metric (default: Hamming iff discrete)."""
        if metric is None:
            metric = "hamming" if dataset.discrete else "l2"
        return get_metric(metric).name

    # -- request construction --------------------------------------------

    def make_request(
        self, fingerprint: str, method: str, instance, **params
    ) -> ExplanationRequest:
        """Validate and normalize one request into canonical form.

        Fills parameter defaults and resolves the metric so that
        equivalent requests produce equal cache keys; raises
        :class:`~repro.exceptions.ValidationError` on unknown methods,
        unknown params, or a dimension mismatch.
        """
        data = self.dataset(fingerprint)
        if method not in METHODS:
            raise ValidationError(
                f"unknown method {method!r}; choose from {'|'.join(METHODS)}"
            )
        xv = as_vector(instance, name="instance")
        if xv.shape[0] != data.dimension:
            raise ValidationError(
                f"instance has dimension {xv.shape[0]}, "
                f"dataset has {data.dimension}"
            )
        xv = np.ascontiguousarray(xv)
        xv.setflags(write=False)
        norm = self._normalize_params(data, method, dict(params))
        key = request_key(fingerprint, method, xv, norm)
        return ExplanationRequest(fingerprint, method, xv, norm, key)

    def _normalize_params(self, dataset: Dataset, method: str, params: dict) -> dict:
        """Canonical parameter dict for *method* (defaults made explicit)."""
        out = {
            "k": check_odd_k(params.pop("k", 1)),
            "metric": self._metric_name(dataset, params.pop("metric", None)),
        }
        if method in ("minimum_sr", "counterfactual"):
            out["solver"] = str(params.pop("solver", "auto"))
            budget = params.pop("budget", None)
            out["budget"] = None if budget is None else float(budget)
        if params:
            raise ValidationError(
                f"unknown params for method {method!r}: {sorted(params)}"
            )
        return out

    # -- synchronous serving ---------------------------------------------

    def submit(self, fingerprint: str, method: str, instance, **params):
        """Serve one request (cache → solve); returns an ExplanationResponse."""
        return self.submit_requests(
            [self.make_request(fingerprint, method, instance, **params)]
        )[0]

    def submit_many(self, requests: Sequence) -> list[ExplanationResponse]:
        """Serve a batch of requests, micro-batching compatible ones.

        Accepts :class:`ExplanationRequest` objects or ``(fingerprint,
        method, instance)`` / ``(fingerprint, method, instance, params)``
        tuples.  Responses come back in request order.
        """
        normalized = []
        for req in requests:
            if isinstance(req, ExplanationRequest):
                normalized.append(req)
            else:
                fingerprint, method, instance, *rest = req
                params = rest[0] if rest else {}
                normalized.append(
                    self.make_request(fingerprint, method, instance, **params)
                )
        return self.submit_requests(normalized)

    def submit_requests(
        self, requests: Sequence[ExplanationRequest]
    ) -> list[ExplanationResponse]:
        """Serve normalized requests: cache hits, then grouped cold solves.

        Cold requests are grouped by ``(fingerprint, method, params)``;
        each batchable group runs through one vectorized engine call per
        ``max_batch`` block, duplicate keys within the batch are solved
        once, and every produced answer lands in the cache before the
        responses are assembled in request order.
        """
        start = perf_counter()
        with self._lock:
            self._requests += len(requests)
        answered: dict[int, ExplanationResponse] = {}
        cold: dict[bytes, list[int]] = {}
        for i, req in enumerate(requests):
            found, payload = self.cache.get(req.key)
            if found:
                answered[i] = ExplanationResponse(
                    req, payload, cached=True, elapsed_s=perf_counter() - start
                )
            else:
                cold.setdefault(req.key, []).append(i)
        groups: dict[tuple, list[bytes]] = {}
        for key, indices in cold.items():
            req = requests[indices[0]]
            group_id = (req.fingerprint, req.method, tuple(sorted(req.params.items())))
            groups.setdefault(group_id, []).append(key)
        for (fingerprint, method, _), keys in groups.items():
            reqs = [requests[cold[key][0]] for key in keys]
            params = reqs[0].params
            if method in BATCH_METHODS:
                payloads = self._solve_batched(fingerprint, method, params, reqs)
            else:
                payloads = [
                    self._solve_one(fingerprint, method, params, req.instance)
                    for req in reqs
                ]
            with self._lock:
                self._batches += 1
                self._batched_requests += len(reqs)
                self._largest_batch = max(self._largest_batch, len(reqs))
            for key, payload in zip(keys, payloads):
                if "error" not in payload:
                    self.cache.put(key, payload)
                for i in cold[key]:
                    answered[i] = ExplanationResponse(
                        requests[i],
                        payload,
                        cached=False,
                        elapsed_s=perf_counter() - start,
                    )
        return [answered[i] for i in range(len(requests))]

    # -- evaluation ------------------------------------------------------

    def _solve_batched(
        self,
        fingerprint: str,
        method: str,
        params: dict,
        reqs: Sequence[ExplanationRequest],
    ) -> list[dict]:
        """Answer a compatible group through one engine batch call per block."""
        engine = self.engine(fingerprint, params["metric"])
        k = params["k"]
        payloads: list[dict] = []
        for start in range(0, len(reqs), self.max_batch):
            block = np.vstack([r.instance for r in reqs[start : start + self.max_batch]])
            if method == "classify":
                labels = engine.classify_batch(block, k)
                payloads.extend({"label": int(v)} for v in labels)
            elif method == "margin":
                margins = engine.margins_batch(block, k)
                payloads.extend({"margin": float(v)} for v in margins)
            else:  # radii
                r_pos, r_neg = engine.radii_batch(block, k)
                payloads.extend(
                    {"r_pos": float(p), "r_neg": float(n)}
                    for p, n in zip(r_pos, r_neg)
                )
        return payloads

    def _solve_one(
        self, fingerprint: str, method: str, params: dict, x: np.ndarray
    ) -> dict:
        """Answer one solver-method request, reporting failures in-band."""
        try:
            with self._engine_lock(fingerprint, params["metric"]):
                return self._dispatch_solver(fingerprint, method, params, x)
        except ReproError as exc:
            return {"error": str(exc), "error_type": exc.__class__.__name__}

    def _dispatch_solver(
        self, fingerprint: str, method: str, params: dict, x: np.ndarray
    ) -> dict:
        """Route a solver method to its pipeline over the shared engine."""
        from ..abductive import minimal_sufficient_reason, minimum_sufficient_reason
        from ..counterfactual import closest_counterfactual
        from ..portfolio import (
            portfolio_closest_counterfactual,
            portfolio_minimum_sufficient_reason,
        )

        data = self.dataset(fingerprint)
        engine = self.engine(fingerprint, params["metric"])
        metric, k = params["metric"], params["k"]
        if method == "minimal_sr":
            X = minimal_sufficient_reason(data, k, metric, x, engine=engine)
            return {"X": sorted(int(i) for i in X), "size": len(X)}
        if method == "minimum_sr":
            if params["solver"] == "portfolio":
                race = portfolio_minimum_sufficient_reason(
                    data, k, metric, x, budget=params["budget"], engine=engine
                )
                answer = race.answer
                return {
                    "X": sorted(int(i) for i in answer.X),
                    "size": int(answer.size),
                    "method": race.method,
                    "exact": race.exact,
                    PROVENANCE_KEY: _race_provenance(race),
                }
            result = minimum_sufficient_reason(
                data, k, metric, x,
                method=params["solver"], engine=engine, time_limit=params["budget"],
            )
            return {
                "X": sorted(int(i) for i in result.X),
                "size": int(result.size),
                "method": result.method,
                "exact": True,
            }
        # counterfactual
        if params["solver"] == "portfolio":
            race = portfolio_closest_counterfactual(
                data, k, metric, x, budget=params["budget"], query_engine=engine
            )
            payload = _counterfactual_payload(race.answer)
            payload["exact"] = race.exact
            payload[PROVENANCE_KEY] = _race_provenance(race)
            return payload
        result = closest_counterfactual(
            data, k, metric, x,
            method=params["solver"], query_engine=engine, time_limit=params["budget"],
        )
        payload = _counterfactual_payload(result)
        payload["exact"] = True
        return payload

    # -- asynchronous serving --------------------------------------------

    async def asubmit(
        self, fingerprint: str, method: str, instance, **params
    ) -> ExplanationResponse:
        """Serve one request on the running asyncio loop, micro-batched.

        Cache hits are answered immediately.  Misses join the pending
        queue; a flush task lets further concurrent requests accumulate
        for up to ``max_wait_s`` and then serves the whole queue through
        :meth:`submit_requests` in a worker thread (so the loop stays
        responsive while numpy/solver code runs).  Concurrent callers on
        the same loop therefore share vectorized kernel calls.
        """
        request = self.make_request(fingerprint, method, instance, **params)
        found, payload = self.cache.get(request.key)
        if found:
            with self._lock:
                self._requests += 1
            return ExplanationResponse(request, payload, cached=True, elapsed_s=0.0)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_pending())
        return await future

    async def _flush_pending(self) -> None:
        """Drain the pending queue after each batching window elapses.

        Loops until a window closes with nothing pending: requests that
        arrive *while* a batch is solving in the executor (when
        ``asubmit`` sees a live flush task and schedules nothing) are
        picked up by the next iteration instead of being stranded.
        """
        while True:
            await asyncio.sleep(self.max_wait_s)
            pending, self._pending = self._pending, []
            if not pending:
                return
            loop = asyncio.get_running_loop()
            requests = [request for request, _ in pending]
            try:
                responses = await loop.run_in_executor(
                    None, self.submit_requests, requests
                )
            except Exception as exc:  # validation passed earlier; defensive
                for _, future in pending:
                    if not future.done():
                        future.set_exception(exc)
                continue  # stragglers may still be queued behind the failure
            for (_, future), response in zip(pending, responses):
                if not future.done():
                    future.set_result(response)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Service counters: datasets, engines, requests, batching, cache."""
        with self._lock:
            return {
                "datasets": len(self._datasets),
                "engines": len(self._engines),
                "requests": self._requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "largest_batch": self._largest_batch,
                "cache": self.cache.stats(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ExplanationService(datasets={len(self._datasets)}, "
                f"backend={self.backend!r}, cache={len(self.cache)})"
            )


def _race_provenance(race) -> dict:
    """JSON-ready provenance of a :class:`~repro.portfolio.PortfolioResult`."""
    return {
        "winner": race.method,
        "exact": race.exact,
        "budget_s": race.budget_s,
        "elapsed_s": race.elapsed_s,
        "attempts": [
            {
                "method": attempt.method,
                "status": attempt.status,
                "budget_s": attempt.budget_s,
                "elapsed_s": attempt.elapsed_s,
                "detail": attempt.detail,
            }
            for attempt in race.attempts
        ],
    }


def _counterfactual_payload(result) -> dict:
    """JSON-ready payload of a CounterfactualResult (y as a plain list)."""
    return {
        "found": result.found,
        "y": None if result.y is None else [float(v) for v in result.y],
        "distance": float(result.distance),
        "infimum": float(result.infimum),
        "label_from": int(result.label_from),
        "method": result.method,
    }
