"""Production observability: Prometheus metrics + structured JSON logs.

Stdlib-only implementations of the two observability primitives the
serving layer exposes:

* **metrics** — :class:`Counter`, :class:`Gauge` and :class:`Histogram`
  collected in a :class:`MetricsRegistry` and rendered in the
  Prometheus `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series, escaped label values).  A registry also exports its
  raw sample state as JSON-able dicts (:meth:`MetricsRegistry.state`),
  and :func:`render_states` merges any number of such states — this is
  how the cluster front aggregates its workers' registries into one
  ``GET /metrics`` page without sharing memory.  Every series the
  service exposes is documented in ``docs/metrics.md``.

* **structured logs** — :class:`StructuredLogger` writes one JSON
  object per line (timestamp, level, component, event, free-form
  fields) to any stream.  Serving code threads a **provenance id**
  (:func:`new_request_id`) through every hop — the HTTP front stamps
  it on the response as ``X-Request-ID``, the single-process service
  and each cluster worker log their share of the work under the same
  id — so one grep over the logs reconstructs a request's whole path.

Nothing here depends on the rest of the serving layer, so solvers and
benchmarks can reuse the registry directly.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time

#: default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: the content type Prometheus scrapers expect from a /metrics page.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict) -> str:
    """The ``{k="v",...}`` suffix of one series (empty for no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Metric:
    """Shared base: name, help text, declared label names, sample store."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames=()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        """Canonical series key for one label-value assignment."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_dict(self, key: tuple) -> dict:
        """The label mapping behind one series key."""
        return dict(zip(self.labelnames, key))

    def state(self) -> dict:
        """JSON-able snapshot of this metric (mergeable via render_states)."""
        with self._lock:
            series = {json.dumps(key): value for key, value in self._series.items()}
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }


class Counter(_Metric):
    """A monotonically increasing sample (requests served, records appended)."""

    kind = "counter"

    def labels(self, **labels) -> "_CounterChild":
        """The child series for one label assignment."""
        return _CounterChild(self, self._key(labels))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self.labels().inc(amount)

    def set_total(self, value: float, **labels) -> None:
        """Overwrite a series with an externally tracked running total.

        Used for counters that mirror an existing ``stats()`` field
        (cache hits, requests) instead of being incremented in line —
        the source of truth stays the service counters.
        """
        with self._lock:
            self._series[self._key(labels)] = float(value)


class _CounterChild:
    """One labeled series of a :class:`Counter`."""

    def __init__(self, parent: Counter, key: tuple):
        self._parent = parent
        self._key_tuple = key

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to this series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._parent._lock:
            current = self._parent._series.get(self._key_tuple, 0.0)
            self._parent._series[self._key_tuple] = current + float(amount)


class Gauge(_Metric):
    """A sample that can go both ways (queue depth, registered datasets)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set one series to *value*."""
        with self._lock:
            self._series[self._key(labels)] = float(value)


class Histogram(_Metric):
    """Cumulative-bucket latency/size distribution plus sum and count."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the right buckets."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "buckets": [0] * len(self.buckets), "sum": 0.0, "count": 0,
                }
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][i] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def state(self) -> dict:
        """JSON-able snapshot including the bucket bounds."""
        payload = super().state()
        payload["buckets"] = list(self.buckets)
        return payload


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name was registered before (so independent modules can
    share series), and :meth:`render` emits the whole registry in the
    Prometheus text format.  :meth:`state` exports the raw samples for
    cross-process merging (see :func:`render_states`).
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs) -> _Metric:
        """Return the registered metric *name*, creating it on first use."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help_text, labelnames, **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name, help_text="", labelnames=()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name, help_text="", labelnames=(), buckets=DEFAULT_BUCKETS):
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def state(self) -> list[dict]:
        """JSON-able snapshot of every registered metric (name-sorted)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [metric.state() for metric in metrics]

    def render(self) -> str:
        """This registry alone, in the Prometheus text format."""
        return render_states([self.state()])


def _merge_series(kind: str, into: dict, state: dict) -> None:
    """Fold one metric state's series into the accumulated *into* dict."""
    for key_json, value in state["series"].items():
        key = tuple(json.loads(key_json))
        if kind == "histogram":
            slot = into.get(key)
            if slot is None:
                into[key] = {
                    "buckets": list(value["buckets"]),
                    "sum": value["sum"],
                    "count": value["count"],
                }
            else:
                for i, count in enumerate(value["buckets"]):
                    slot["buckets"][i] += count
                slot["sum"] += value["sum"]
                slot["count"] += value["count"]
        else:
            # Counters sum across processes; gauges do too because every
            # cross-process gauge series carries a disambiguating label
            # (e.g. worker="3") — document new gauges accordingly.
            into[key] = into.get(key, 0.0) + float(value)


def render_states(states: list[list[dict]]) -> str:
    """Merge metric states from N registries into one exposition page.

    Same-name metrics are summed series-wise (histogram buckets
    bucket-wise).  This is what lets each cluster worker keep a plain
    local registry while ``GET /metrics`` serves one fleet-wide page.
    """
    merged: dict[str, dict] = {}
    for state in states:
        for metric in state:
            slot = merged.setdefault(metric["name"], {
                "kind": metric["kind"],
                "help": metric["help"],
                "labelnames": metric["labelnames"],
                "buckets": metric.get("buckets"),
                "series": {},
            })
            _merge_series(metric["kind"], slot["series"], metric)
    lines: list[str] = []
    for name in sorted(merged):
        slot = merged[name]
        if slot["help"]:
            lines.append(f"# HELP {name} {slot['help']}")
        lines.append(f"# TYPE {name} {slot['kind']}")
        for key in sorted(slot["series"]):
            labels = dict(zip(slot["labelnames"], key))
            value = slot["series"][key]
            if slot["kind"] == "histogram":
                # Bucket counts are stored cumulatively (observe() adds to
                # every bucket whose bound covers the value), matching the
                # exposition format's le= semantics directly.
                for bound, count in zip(slot["buckets"], value["buckets"]):
                    bucket_labels = dict(labels, le=_format_value(float(bound)))
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {count}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{name}_bucket{_labels_text(inf_labels)} {value['count']}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_format_value(value['sum'])}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {value['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- structured logging ---------------------------------------------------

_REQUEST_COUNTER = iter(range(1, 1 << 62))
_REQUEST_PREFIX = os.urandom(4).hex()
_REQUEST_LOCK = threading.Lock()


def new_request_id() -> str:
    """A process-unique provenance id (``<boot hex>-<seq>``).

    Stamped on every HTTP request as ``X-Request-ID`` and threaded
    through the structured logs of every layer that touches the
    request — front, worker, solver dispatch.
    """
    with _REQUEST_LOCK:
        return f"{_REQUEST_PREFIX}-{next(_REQUEST_COUNTER):06d}"


class StructuredLogger:
    """One-JSON-object-per-line logger for the serving layer.

    Parameters
    ----------
    stream:
        writable text stream, or ``None`` for a silent logger (the
        default inside libraries; the ``repro serve`` CLI wires
        ``sys.stderr``).
    component:
        stamped on every record (``"http"``, ``"service"``,
        ``"worker"``, ``"durability"``...).

    Every record carries ``ts`` (unix seconds), ``level``,
    ``component`` and ``event``; all other fields are caller-supplied
    and JSON-serialized with ``default=str`` so a log call can never
    raise.  ``docs/metrics.md`` documents the field vocabulary.
    """

    def __init__(self, stream=None, *, component: str = "serve"):
        self.stream = stream
        self.component = component
        self._lock = threading.Lock()

    def child(self, component: str) -> "StructuredLogger":
        """A logger for a sub-component sharing this logger's stream."""
        return StructuredLogger(self.stream, component=component)

    @property
    def enabled(self) -> bool:
        """Whether records go anywhere (False for the silent logger)."""
        return self.stream is not None

    def log(self, event: str, *, level: str = "info", **fields) -> None:
        """Emit one structured record (a no-op when no stream is bound)."""
        if self.stream is None:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError):  # closed stream: logging never raises
                pass


def stderr_logger(component: str = "serve") -> StructuredLogger:
    """A :class:`StructuredLogger` bound to ``sys.stderr`` (the CLI default)."""
    return StructuredLogger(sys.stderr, component=component)
