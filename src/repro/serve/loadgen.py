"""Open-loop load generation against a serving target (single or cluster).

The harness models "many users" the way serving papers do: arrivals are
an **open-loop** Poisson process (exponential interarrivals at a fixed
rate), so a slow server does not slow the offered load down — queueing
delay shows up in the measured latency instead of being hidden by a
closed loop that politely waits.  Traffic is a deterministic mix of
cheap batchable ``classify`` calls and expensive ``minimum_sr`` /
``counterfactual`` solves (the head-of-line blockers), optionally with
background **mutation noise** exercising the ``<fp>@vN``
version-bump/invalidation path while queries are in flight.

Everything is seeded: :func:`build_workload` produces the identical
request schedule for the same :class:`LoadSpec`, which is what lets the
``serve_scaleout`` benchmark assert bit-parity between a single-process
reference and the cluster on the *same* requests before timing either.

The *target* is duck-typed — anything with the
:meth:`~repro.serve.service.ExplanationService.explain` /
``add_points`` / ``remove_points`` / ``stats`` verbs works, so
:class:`~repro.serve.service.ExplanationService` and
:class:`~repro.serve.cluster.ClusterService` are driven identically.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter, sleep

import numpy as np

from ..exceptions import OverloadedError, ReproError

#: payload key whose presence marks a well-formed answer, per method.
_ANSWER_KEYS = {
    "classify": "label",
    "margin": "margin",
    "radii": "r_pos",
    "minimal_sr": "X",
    "minimum_sr": "X",
    "counterfactual": "found",
}

#: methods timed as the cheap batchable class (vs the solver class).
BATCH_CLASS = ("classify", "margin", "radii")


@dataclass(frozen=True)
class LoadSpec:
    """Parameters of one deterministic open-loop run.

    ``rate`` is offered requests/second; ``requests`` the total count.
    The ``*_weight`` fields set the traffic mix (normalized internally).
    ``mutation_every_s > 0`` starts a background thread that adds and
    then removes a random point on a rotating dataset at that period —
    version-bump noise, not measured traffic.  ``concurrency`` bounds
    the in-flight requests the generator itself will hold open.
    """

    rate: float = 100.0
    requests: int = 200
    classify_weight: float = 0.95
    minimum_sr_weight: float = 0.03
    counterfactual_weight: float = 0.02
    k: int = 3
    solver_k: int = 1
    sr_solver: str = "sat"
    cf_solver: str = "hamming-sat"
    mutation_every_s: float = 0.0
    concurrency: int = 32
    seed: int = 0
    discrete: bool = True


@dataclass(frozen=True)
class _Item:
    """One scheduled request of a workload (arrival offset in seconds)."""

    arrival_s: float
    fingerprint: str
    method: str
    instance: np.ndarray
    params: dict


@dataclass
class LoadReport:
    """What one :func:`run_load` measured.

    ``latency_ms`` maps ``"all"`` / ``"batch"`` / ``"solver"`` to
    ``{"p50", "p95", "p99", "mean"}`` dictionaries (milliseconds,
    measured from each request's *scheduled* arrival, so queueing delay
    counts).  ``stats_before`` / ``stats_after`` are the target's own
    counters around the run, for monotonicity checks.
    """

    requests: int = 0
    ok: int = 0
    overloaded: int = 0
    errors: int = 0
    malformed: int = 0
    mutations: int = 0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    stats_before: dict = field(default_factory=dict)
    stats_after: dict = field(default_factory=dict)


def build_workload(
    fingerprints: list[str], dimension: int, spec: LoadSpec
) -> list[_Item]:
    """The deterministic request schedule for *spec* (same seed, same list).

    Arrivals are cumulative exponential interarrivals at ``spec.rate``;
    each request draws a dataset lineage, a method from the weighted
    mix, and a fresh random instance of the right kind (0/1 vectors
    when ``spec.discrete``).
    """
    rng = np.random.default_rng(spec.seed)
    weights = np.array(
        [spec.classify_weight, spec.minimum_sr_weight, spec.counterfactual_weight],
        dtype=float,
    )
    weights /= weights.sum()
    methods = ("classify", "minimum_sr", "counterfactual")
    params_by_method = {
        "classify": {"k": spec.k},
        "minimum_sr": {"k": spec.solver_k, "solver": spec.sr_solver},
        "counterfactual": {"k": spec.solver_k, "solver": spec.cf_solver},
    }
    arrivals = np.cumsum(rng.exponential(1.0 / spec.rate, size=spec.requests))
    items = []
    for arrival in arrivals:
        method = methods[int(rng.choice(len(methods), p=weights))]
        fingerprint = fingerprints[int(rng.integers(len(fingerprints)))]
        if spec.discrete:
            instance = rng.integers(0, 2, size=dimension).astype(float)
        else:
            instance = rng.normal(size=dimension)
        items.append(
            _Item(float(arrival), fingerprint, method, instance,
                  params_by_method[method])
        )
    return items


def _serve_one(target, item: _Item, t0: float) -> tuple[str, str, float]:
    """Serve one scheduled request; returns ``(method, status, latency_s)``.

    Latency runs from the request's *scheduled* arrival to completion
    (open-loop convention), so time spent queueing behind a saturated
    server is charged to the server.
    """
    try:
        answers = target.explain(item.fingerprint, item.method,
                                 [item.instance], item.params)
        payload = answers[0]["result"]
    except OverloadedError:
        status = "overloaded"
    except ReproError:
        status = "error"
    except Exception:
        status = "malformed"
    else:
        if not isinstance(payload, dict):
            status = "malformed"
        elif "error" in payload:
            status = "error"
        elif _ANSWER_KEYS[item.method] not in payload:
            status = "malformed"
        else:
            status = "ok"
    return item.method, status, (perf_counter() - t0) - item.arrival_s


def _mutation_noise(target, fingerprints, dimension, spec, stop, counter):
    """Background thread body: periodic add+remove of one random point."""
    rng = np.random.default_rng(spec.seed + 1)
    index = 0
    while not stop.wait(spec.mutation_every_s):
        fingerprint = fingerprints[index % len(fingerprints)]
        index += 1
        point = (
            rng.integers(0, 2, size=dimension).astype(float)
            if spec.discrete
            else rng.normal(size=dimension)
        )
        try:
            target.add_points(fingerprint, [point], [True])
            target.remove_points(fingerprint, [point], [True])
            counter.append(2)
        except ReproError:  # e.g. duplicate point; noise is best-effort
            continue


def _percentiles(latencies_s: list[float]) -> dict:
    """``{"p50","p95","p99","mean"}`` in milliseconds (zeros when empty)."""
    if not latencies_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}
    arr = np.asarray(latencies_s) * 1000.0
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
    }


def run_load(target, fingerprints: list[str], dimension: int,
             spec: LoadSpec) -> LoadReport:
    """Drive *target* with the workload of *spec* and measure it.

    Dispatches each scheduled request at its arrival time into a bounded
    thread pool (open loop up to ``spec.concurrency`` in flight),
    optionally running the mutation-noise thread, and aggregates
    statuses, throughput, and per-class latency percentiles into a
    :class:`LoadReport`.
    """
    workload = build_workload(fingerprints, dimension, spec)
    stats_before = target.stats()
    stop = threading.Event()
    mutation_counter: list[int] = []
    mutator = None
    if spec.mutation_every_s > 0:
        mutator = threading.Thread(
            target=_mutation_noise,
            args=(target, fingerprints, dimension, spec, stop, mutation_counter),
            daemon=True,
        )
    pool = ThreadPoolExecutor(max_workers=max(1, spec.concurrency))
    t0 = perf_counter()
    if mutator is not None:
        mutator.start()
    futures = []
    for item in workload:
        lag = item.arrival_s - (perf_counter() - t0)
        if lag > 0:
            sleep(lag)
        futures.append(pool.submit(_serve_one, target, item, t0))
    outcomes = [future.result() for future in futures]
    duration = perf_counter() - t0
    stop.set()
    if mutator is not None:
        mutator.join(timeout=10.0)
    pool.shutdown(wait=True)
    stats_after = target.stats()

    report = LoadReport(
        requests=len(outcomes),
        mutations=sum(mutation_counter),
        duration_s=duration,
        stats_before=stats_before,
        stats_after=stats_after,
    )
    by_class: dict[str, list[float]] = {"all": [], "batch": [], "solver": []}
    for method, status, latency in outcomes:
        if status == "ok":
            report.ok += 1
            by_class["all"].append(latency)
            kind = "batch" if method in BATCH_CLASS else "solver"
            by_class[kind].append(latency)
        elif status == "overloaded":
            report.overloaded += 1
        elif status == "error":
            report.errors += 1
        else:
            report.malformed += 1
    report.throughput_rps = report.ok / duration if duration > 0 else 0.0
    report.latency_ms = {k: _percentiles(v) for k, v in by_class.items()}
    return report
