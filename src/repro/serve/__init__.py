"""``repro.serve`` — the batched, cached explanation serving layer.

Where the rest of the library is one-shot ("build an engine, answer a
question, exit"), this package is the long-lived process the ROADMAP's
scaling north star calls for:

* :class:`ExplanationService` owns warm
  :class:`~repro.knn.QueryEngine` instances per registered dataset
  fingerprint, micro-batches compatible requests through the engine's
  vectorized paths, and memoizes every answer in a
  :class:`ResultCache` keyed by
  ``(dataset fingerprint, instance bytes, method, params)``;
* :func:`serve_http` / :class:`~repro.serve.http.ExplanationHTTPServer`
  expose the service over a stdlib-only JSON HTTP endpoint
  (``repro-knn serve --port``);
* :func:`dataset_fingerprint` is the content hash that keys both the
  engine registry and the cache, making dataset-change invalidation
  exact.

See ``docs/architecture.md`` ("how a request flows") and the README's
"Serving explanations" quickstart.  Throughput of the batched path over
a sequential per-request loop is the ``serve_throughput`` benchmark
headline (``benchmarks/bench_serve_throughput.py``, gated ≥ 3× in CI).
"""

from __future__ import annotations

from .cache import (
    ResultCache,
    dataset_fingerprint,
    request_key,
    split_fingerprint,
    versioned_fingerprint,
)
from .http import ExplanationHTTPServer, serve_http
from .service import (
    BATCH_METHODS,
    METHODS,
    SOLVER_METHODS,
    ExplanationRequest,
    ExplanationResponse,
    ExplanationService,
)

__all__ = [
    "BATCH_METHODS",
    "SOLVER_METHODS",
    "METHODS",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationService",
    "ExplanationHTTPServer",
    "ResultCache",
    "dataset_fingerprint",
    "request_key",
    "serve_http",
    "split_fingerprint",
    "versioned_fingerprint",
]
