"""``repro.serve`` — the batched, cached, sharded explanation serving layer.

Where the rest of the library is one-shot ("build an engine, answer a
question, exit"), this package is the long-lived process the ROADMAP's
scaling north star calls for:

* :class:`ExplanationService` owns warm
  :class:`~repro.knn.QueryEngine` instances per registered dataset
  fingerprint, micro-batches compatible requests through the engine's
  vectorized paths, and memoizes every answer in a
  :class:`ResultCache` keyed by
  ``(dataset fingerprint, instance bytes, method, params)``;
* :class:`ClusterService` scales that out horizontally: dataset
  lineages are sharded over worker processes by content fingerprint,
  hot lineages get read replicas, and bounded per-worker queues shed
  overload as structured :class:`OverloadedError` (HTTP 429) instead
  of stalling — see :mod:`repro.serve.cluster`;
* :func:`serve_http` / :class:`~repro.serve.http.ExplanationHTTPServer`
  expose either target over a stdlib-only JSON HTTP endpoint speaking
  the ``/v2`` resource scheme (``/v1`` kept as a delegating alias) with
  one documented error envelope (:mod:`repro.serve.errors`);
* :func:`run_load` / :class:`LoadSpec` generate deterministic open-loop
  mixed traffic against either target — the measurement harness behind
  the ``serve_scaleout`` benchmark headline;
* :func:`dataset_fingerprint` is the content hash that keys the engine
  registry, the cache, *and* cluster shard placement, making
  dataset-change invalidation and routing exact;
* :class:`DurableStore` (see :mod:`repro.serve.durability`) makes
  dataset lineages survive crashes — an fsync'd mutation WAL plus
  periodic snapshots, replayed on boot by either service when given a
  ``state_dir`` — and :class:`MetricsRegistry` /
  :class:`StructuredLogger` (see :mod:`repro.serve.metrics`) provide
  the ``GET /metrics`` Prometheus page and provenance-id structured
  logging documented in ``docs/metrics.md`` / ``docs/operations.md``.

See ``docs/api.md`` for the HTTP surface, ``docs/architecture.md`` for
the request flow and cluster topology, and the README's "Serving
explanations" quickstart.  The batched path's throughput is the
``serve_throughput`` headline and the cluster's tail latency the
``serve_scaleout`` headline (both gated ≥ 3× in CI).

This module's ``__all__`` is the **frozen public API** of the serving
layer — ``tests/test_api_surface.py`` asserts it never silently
shrinks.
"""

from __future__ import annotations

from ..exceptions import DurabilityError, OverloadedError, UnknownDatasetError
from .cache import (
    ResultCache,
    dataset_fingerprint,
    request_key,
    split_fingerprint,
    versioned_fingerprint,
)
from .cluster import ClusterService
from .durability import DurableStore, RestoredLineage
from .errors import error_envelope, status_for
from .http import ExplanationHTTPServer, serve_http
from .loadgen import LoadReport, LoadSpec, build_workload, run_load
from .metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    StructuredLogger,
    new_request_id,
    render_states,
    stderr_logger,
)
from .service import (
    BATCH_METHODS,
    METHODS,
    SOLVER_METHODS,
    ExplanationRequest,
    ExplanationResponse,
    ExplanationService,
)

__all__ = [
    "BATCH_METHODS",
    "SOLVER_METHODS",
    "METHODS",
    "PROMETHEUS_CONTENT_TYPE",
    "ClusterService",
    "DurabilityError",
    "DurableStore",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationService",
    "ExplanationHTTPServer",
    "LoadReport",
    "LoadSpec",
    "MetricsRegistry",
    "OverloadedError",
    "RestoredLineage",
    "ResultCache",
    "StructuredLogger",
    "UnknownDatasetError",
    "build_workload",
    "dataset_fingerprint",
    "error_envelope",
    "new_request_id",
    "render_states",
    "request_key",
    "run_load",
    "serve_http",
    "split_fingerprint",
    "status_for",
    "stderr_logger",
    "versioned_fingerprint",
]
