"""One error surface for the serving layer: envelope shape + status map.

Every error the HTTP front end (or an in-band batch answer) reports is
rendered through :func:`error_envelope`, so clients parse exactly one
shape::

    {"error": {"type": "<ExceptionClassName>", "message": "<human text>",
               "detail": <JSON or null>}}

plus two **one-release compatibility fields** mirroring the pre-v2 flat
shape (``error_type`` and ``error_message``, the string that used to
live directly under ``"error"``).  HTTP replies carrying the compat
fields also carry a ``Deprecation`` response header
(:data:`DEPRECATION_HEADER`); the fields and the header go away
together one release after the ``/v2`` surface landed.

The HTTP status mapping is a documented table (:data:`STATUS_BY_ERROR`,
resolved by :func:`status_for`):

===============================  ======
exception                        status
===============================  ======
``OverloadedError``              429
``UnknownDatasetError``          404
``ValidationError`` (and the
stdlib ``ValueError`` /
``KeyError`` / ``TypeError``)    400
any other ``ReproError``         422
anything else (internal)         500
===============================  ======

``docs/api.md`` renders the same table for clients.
"""

from __future__ import annotations

from ..exceptions import (
    OverloadedError,
    ReproError,
    UnknownDatasetError,
    ValidationError,
)

#: header name/value sent with every reply that carries the pre-v2
#: compatibility fields (RFC 8594-style deprecation signal).
DEPRECATION_HEADER = ("Deprecation", 'version="pre-v2-error-shape"')

#: the documented exception → HTTP status table, most specific first.
#: :func:`status_for` walks it in order, so subclasses must precede
#: their bases.
STATUS_BY_ERROR: tuple[tuple[type, int], ...] = (
    (OverloadedError, 429),
    (UnknownDatasetError, 404),
    (ValidationError, 400),
    (ValueError, 400),
    (KeyError, 400),
    (TypeError, 400),
    (ReproError, 422),
)

#: status of an exception no row matches (internal server error).
INTERNAL_STATUS = 500


def status_for(exc: BaseException) -> int:
    """The HTTP status of *exc* per the documented mapping table."""
    for exc_type, status in STATUS_BY_ERROR:
        if isinstance(exc, exc_type):
            return status
    return INTERNAL_STATUS


def error_envelope(type_name: str, message: str, detail=None) -> dict:
    """The canonical error body: envelope plus one-release compat fields.

    ``detail`` is optional structured context (e.g. the current dataset
    version a superseded pin should re-resolve to); it must already be
    JSON-serializable.
    """
    return {
        "error": {"type": type_name, "message": message, "detail": detail},
        # Pre-v2 compatibility (one release): the flat shape exposed
        # "error_type" and the message string; readable until clients
        # migrate to the envelope.  Mirrored by DEPRECATION_HEADER.
        "error_type": type_name,
        "error_message": message,
    }


def error_payload(exc: BaseException, detail=None) -> dict:
    """Render an exception as the canonical in-band error envelope."""
    message = str(exc) or exc.__class__.__name__
    return error_envelope(exc.__class__.__name__, message, detail)
