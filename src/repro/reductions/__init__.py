"""Executable versions of every hardness reduction in the paper.

Hardness proofs are constructive: each one maps instances of a known
hard problem to explanation-problem instances whose answers coincide.
This package implements those constructions as code, for three reasons:

* they are the paper's main technical artifacts, so reproducing the
  paper means reproducing them;
* they are *testable* — running the source problem's exact solver and
  the explanation machinery on both sides of a reduction checks the
  paper's correctness arguments on concrete instances;
* they generate structured hard instances for the benchmark suite.

Modules (paper result → module):

* Theorem 1 (Vertex Cover → Minimum-SR, discrete & continuous) —
  :mod:`vertex_cover`;
* Theorem 3 / Lemmas 1–3 (k-clique → counterfactual, l2) — :mod:`clique`;
* Theorem 4 (half-value knapsack → counterfactual, l1) — :mod:`knapsack`;
* Theorem 5 (partition → Check-SR, l1, k >= 3) — :mod:`partition`;
* Theorem 6 / Proposition 5 (p-BMCF → counterfactual, Hamming) —
  :mod:`bmcf`;
* Theorem 7 (Vertex Cover → Check-SR, Hamming, k >= 3) —
  :mod:`check_sr_discrete`;
* Theorems 8–9 (interdiction → Minimum-SR, Hamming, k >= 3) —
  :mod:`interdiction`;
* exact solvers for the source problems — :mod:`oracles`.
"""

from __future__ import annotations

from . import (
    bmcf,
    check_sr_discrete,
    clique,
    interdiction,
    knapsack,
    oracles,
    partition,
    vertex_cover,
)

__all__ = [
    "vertex_cover",
    "clique",
    "knapsack",
    "partition",
    "bmcf",
    "check_sr_discrete",
    "interdiction",
    "oracles",
]
