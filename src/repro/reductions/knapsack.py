"""Theorem 4: half-value knapsack → 1-Counterfactual Explanation(R, D_1).

Given items with weights ``w_i``, values ``v_i`` and capacity ``W``, the
construction uses singleton classes

    S+ = { g },  g_i = w_i
    S- = { h },  h_i = w_i - gamma * v_i,   gamma = 1 / (2 max v_i)

with ``x = 0`` and radius ``W``.  Then some subset of total weight <= W
reaches half the total value iff x admits a counterfactual within l1
distance W.

The module also provides the padding that lifts the instance from k = 1
to any odd k with ``|S+| = |S-| = (k+1)/2`` (the collinear padding
points plus one extra coordinate at height ``M = 10 (l + k)``), and the
classic partition → half-value-knapsack step the paper cites for
hardness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset


@dataclass(frozen=True)
class CounterfactualInstance:
    """A Counterfactual-Explanation decision instance from a reduction."""

    dataset: Dataset
    x: np.ndarray
    k: int
    metric: str
    radius: float


def _validate_items(weights, values):
    weights = [int(w) for w in weights]
    values = [int(v) for v in values]
    if len(weights) != len(values) or not weights:
        raise ValidationError("need equal-length, non-empty weight/value lists")
    if any(w <= 0 for w in weights) or any(v <= 0 for v in values):
        raise ValidationError("weights and values must be positive integers")
    return weights, values


def knapsack_to_cf_l1(weights, values, capacity: int) -> CounterfactualInstance:
    """The Theorem 4 construction for k = 1 (singleton classes)."""
    weights, values = _validate_items(weights, values)
    capacity = int(capacity)
    if capacity <= 0:
        raise ValidationError("capacity must be positive")
    gamma = 1.0 / (2.0 * max(values))
    g = np.array(weights, dtype=float)
    h = g - gamma * np.array(values, dtype=float)
    dataset = Dataset([g], [h])
    return CounterfactualInstance(
        dataset=dataset,
        x=np.zeros(len(weights)),
        k=1,
        metric="l1",
        radius=float(capacity),
    )


def knapsack_to_cf_l1_general_k(
    weights, values, capacity: int, k: int
) -> CounterfactualInstance:
    """Theorem 4's lift to odd k with ``|S+| = |S-| = (k+1)/2``.

    Padding points ``p_j = (j, 0, ..., 0)`` for ``j = 1..k-1`` (first
    half positive, second half negative) sit so close to the radius-W
    ball that they always fill the first ``k-1`` neighbor slots with a
    balanced vote; a final coordinate at height ``M = 10 (l + k)`` for
    ``g`` and ``h`` keeps the original comparison decisive.
    """
    k = check_odd_k(k)
    base = knapsack_to_cf_l1(weights, values, capacity)
    if k == 1:
        return base
    n = len(weights)
    M = 10.0 * (base.radius + k)
    g = np.append(base.dataset.positives[0], M)
    h = np.append(base.dataset.negatives[0], M)
    positives = [g]
    negatives = [h]
    for j in range(1, k):
        pad = np.zeros(n + 1)
        pad[0] = float(j)
        if j <= (k - 1) // 2:
            positives.append(pad)
        else:
            negatives.append(pad)
    dataset = Dataset(positives, negatives)
    return CounterfactualInstance(
        dataset=dataset,
        x=np.zeros(n + 1),
        k=k,
        metric="l1",
        radius=base.radius,
    )


def knapsack_solution_to_counterfactual(weights, values, capacity, subset) -> np.ndarray:
    """The forward map of Theorem 4: put chosen items at their weights."""
    weights, values = _validate_items(weights, values)
    subset = set(int(i) for i in subset)
    y = np.zeros(len(weights))
    for i in subset:
        y[i] = float(weights[i])
    return y


def partition_to_half_value_knapsack(values):
    """The classic step the paper cites: partition → half-value knapsack.

    With weights = values and capacity = total // 2, at least half the
    value fits iff the values split evenly: any subset within the weight
    budget has value <= floor(total / 2), with equality exactly at a
    perfect split.
    """
    values = [int(v) for v in values]
    if any(v <= 0 for v in values):
        raise ValidationError("partition uses positive integers")
    total = sum(values)
    if total < 2:
        raise ValidationError("partition needs total value >= 2")
    return values, values, total // 2
