"""Theorem 3 / Lemmas 1–3: k-clique in regular graphs → CF(R, D_2).

The reduction shows W[1]-hardness of ``k``-Counterfactual Explanation
under the l2 metric with k as the parameter:

* **Lemma 2** embeds a d-regular graph on n nodes into ``{0,1}^m`` with
  ``m = n^2 + n + d - 5`` such that every vector has Hamming weight
  ``2(n + d - 3)``, adjacent nodes sit at Hamming distance
  ``2(n + d - 3)`` and non-adjacent ones at ``2(n + d - 1)``;
* **Lemma 3** pins the minimum radius ``r(x_1..x_k)`` at which a point
  can be weakly closer to k chosen dataset points than to the origin:
  ``alpha * sqrt(k / (2(k+1)))`` for a perfect simplex (a clique),
  strictly more otherwise;
* **Theorem 3** finishes with the all-zero query point x = 0 carrying
  multiplicity k as S-, the embedded nodes as S+, and the rational
  radius ``R = (n + d - 3) k`` obtained by duplicating every coordinate
  ``T = (n + d - 3) k (k + 1)`` times.

Our :class:`~repro.knn.Dataset` supports multiplicities natively, so
the construction is implemented in the paper's cleaner multiplicity
form (the paper's extra de-multiplication gadget exists only because
its model forbids repeated points).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

import networkx as nx
import numpy as np

from ..exceptions import ValidationError
from ..knn import Dataset
from .knapsack import CounterfactualInstance
from .oracles import check_graph


def embed_regular_graph(graph: nx.Graph) -> np.ndarray:
    """The Lemma 2 embedding of a d-regular graph into ``{0,1}^m``.

    Returns an ``(n, m)`` 0/1 matrix, one row per node, with
    ``m = n^2 + n + d - 5``.  Requires ``n + d >= 5``.
    """
    check_graph(graph)
    n = graph.number_of_nodes()
    degrees = {deg for _, deg in graph.degree}
    if len(degrees) != 1:
        raise ValidationError("the Lemma 2 embedding needs a regular graph")
    d = degrees.pop()
    if n + d < 5:
        raise ValidationError(f"need n + d >= 5 for the padding; got n={n}, d={d}")
    m = n * n + n + d - 5
    vectors = np.zeros((n, m))
    for u in range(n):
        for block in range(n):
            base = block * n
            if block == u:
                for neighbor in graph.neighbors(u):
                    vectors[u, base + neighbor] = 1.0
            else:
                vectors[u, base + u] = 1.0
        vectors[u, n * n :] = 1.0  # n + d - 5 shared padding ones
    return vectors


@dataclass(frozen=True)
class CliqueCFInstance(CounterfactualInstance):
    """The Theorem 3 instance, with the source parameters attached."""

    clique_size: int = 0
    duplication: int = 1


def clique_to_cf_l2(graph: nx.Graph, k: int) -> CliqueCFInstance:
    """Theorem 3: does G have a k-clique?  ⟺  CF within R for (2k-1)-NN.

    Every coordinate of the Lemma 2 embedding is repeated
    ``T = (n + d - 3) k (k + 1)`` times so that the critical radius
    ``R = (n + d - 3) k`` is an integer, making the decision threshold
    exact.
    """
    check_graph(graph)
    k = int(k)
    if k < 2:
        raise ValidationError("the reduction is stated for clique size k >= 2")
    vectors = embed_regular_graph(graph)
    n = graph.number_of_nodes()
    d = next(deg for _, deg in graph.degree)
    T = (n + d - 3) * k * (k + 1)
    expanded = np.repeat(vectors, T, axis=1)
    dim = expanded.shape[1]
    dataset = Dataset(
        positives=expanded,
        negatives=[np.zeros(dim)],
        negative_multiplicities=[k],
    )
    return CliqueCFInstance(
        dataset=dataset,
        x=np.zeros(dim),
        k=2 * k - 1,
        metric="l2",
        radius=float((n + d - 3) * k),
        clique_size=k,
        duplication=T,
    )


def clique_to_counterfactual(instance: CliqueCFInstance, clique) -> np.ndarray:
    """The forward map (Lemma 3a): the simplex center of mass.

    For a k-clique ``x_1..x_k`` the point ``(x_1 + ... + x_k) / (k + 1)``
    is equidistant from 0 and every clique vector, at distance exactly
    ``alpha * sqrt(k / (2(k+1)))`` = the instance radius.
    """
    clique = sorted(set(int(v) for v in clique))
    if len(clique) != instance.clique_size:
        raise ValidationError(
            f"expected a clique of size {instance.clique_size}, got {len(clique)}"
        )
    points = instance.dataset.positives[clique]
    return points.sum(axis=0) / (instance.clique_size + 1)


def simplex_radius(alpha: float, k: int) -> float:
    """Lemma 3a's value ``alpha * sqrt(k / (2(k+1)))``."""
    return float(alpha) * sqrt(k / (2.0 * (k + 1)))


def non_clique_radius_lower_bound(alpha: float, beta: float, k: int) -> float:
    """Lemma 3b's bound ``alpha * sqrt(k / (2 (k + 1 - delta)))``.

    ``delta = (beta^2 - alpha^2) / (k alpha^2)`` accounts for at least
    one pair sitting at the larger distance beta.
    """
    delta = (beta * beta - alpha * alpha) / (k * alpha * alpha)
    return float(alpha) * sqrt(k / (2.0 * (k + 1 - delta)))
