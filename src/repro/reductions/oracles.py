"""Exact solvers for the source problems of the hardness reductions.

Each oracle is deliberately implemented with a *different* technique
from the reduction target it validates (dynamic programming, MILP,
networkx enumeration), so agreement across a reduction is meaningful
evidence of correctness rather than the same code agreeing with itself.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx
import numpy as np

from ..exceptions import ValidationError
from ..solvers.milp import MILPModel


def check_graph(graph: nx.Graph) -> nx.Graph:
    """Validate a simple undirected graph with integer nodes 0..n-1."""
    if not isinstance(graph, nx.Graph) or graph.is_directed():
        raise ValidationError("expected an undirected networkx Graph")
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ValidationError("graph nodes must be exactly 0..n-1")
    return graph


def minimum_vertex_cover_size(graph: nx.Graph) -> int:
    """Exact minimum vertex cover via MILP."""
    check_graph(graph)
    if graph.number_of_edges() == 0:
        return 0
    model = MILPModel("vertex-cover")
    pick = {v: model.add_binary(f"v{v}") for v in graph.nodes}
    for u, v in graph.edges:
        model.add_constraint({pick[u]: 1, pick[v]: 1}, ">=", 1)
    model.set_objective({p: 1 for p in pick.values()})
    result = model.solve()
    return int(round(result.objective))


def has_vertex_cover(graph: nx.Graph, size: int) -> bool:
    """Is there a vertex cover of at most *size* nodes?"""
    return minimum_vertex_cover_size(graph) <= size


def maximum_clique_size(graph: nx.Graph) -> int:
    """Exact maximum clique by complement vertex cover duality."""
    check_graph(graph)
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    complement = nx.complement(graph)
    complement.add_nodes_from(range(n))
    # max clique = n - min vertex cover of the complement.
    return n - minimum_vertex_cover_size(complement)


def has_k_clique(graph: nx.Graph, k: int) -> bool:
    """Whether *graph* contains a clique on *k* vertices (exhaustive check)."""
    return maximum_clique_size(graph) >= int(k)


def partition_exists(values) -> bool:
    """Is there T with sum(T) == sum(not T)?  Subset-sum DP."""
    values = [int(v) for v in values]
    if any(v <= 0 for v in values):
        raise ValidationError("partition instances use positive integers")
    total = sum(values)
    if total % 2:
        return False
    target = total // 2
    reachable = np.zeros(target + 1, dtype=bool)
    reachable[0] = True
    for v in values:
        if v <= target:
            reachable[v:] = reachable[v:] | reachable[:-v]
    return bool(reachable[target])


def half_value_knapsack_exists(weights, values, capacity) -> bool:
    """Can items of total weight <= capacity reach half the total value?

    The variant of knapsack Theorem 4 reduces from: maximize value under
    the weight budget (classic DP over weights) and compare with half
    the total value.
    """
    weights = [int(w) for w in weights]
    values = [int(v) for v in values]
    capacity = int(capacity)
    if len(weights) != len(values):
        raise ValidationError("weights and values must have equal length")
    if any(w <= 0 for w in weights) or any(v <= 0 for v in values):
        raise ValidationError("knapsack instances use positive integers")
    if capacity <= 0:
        raise ValidationError("knapsack capacity must be positive")
    best = np.full(capacity + 1, -1, dtype=np.int64)
    best[0] = 0
    for w, v in zip(weights, values):
        w = min(w, capacity + 1)
        if w <= capacity:
            shifted = best[:-w] + v
            improved = np.maximum(best[w:], np.where(best[:-w] >= 0, shifted, -1))
            best[w:] = improved
    total = sum(values)
    return bool(2 * best.max() >= total)


def bmcf_exists(matrix: np.ndarray, budget: int, p: int) -> bool:
    """Brute-force p-Boolean-Matrix-Column-Flipping decision.

    Is there a column set T, |T| <= budget, such that after flipping the
    columns of T at least ``rows - p`` rows have weight <= |T| - 1?
    Exponential in the number of columns; used only on tiny instances.
    """
    matrix = np.asarray(matrix)
    m, n = matrix.shape
    budget = int(budget)
    for size in range(0, min(budget, n) + 1):
        for T in combinations(range(n), size):
            flipped = matrix.copy()
            for col in T:
                flipped[:, col] = 1 - flipped[:, col]
            light_rows = int((flipped.sum(axis=1) <= size - 1).sum())
            if light_rows >= m - p:
                return True
    return False


def independent_set_interdiction_exists(graph: nx.Graph, p: int, q: int) -> bool:
    """Brute force: is there S, |S| <= p, meeting every independent set of size >= q?

    Equivalently alpha(G[V \\ S]) < q.  Exponential; tiny instances only.
    """
    check_graph(graph)
    nodes = list(graph.nodes)
    for size in range(min(p, len(nodes)) + 1):
        for S in combinations(nodes, size):
            rest = graph.subgraph([v for v in nodes if v not in S])
            # alpha(H) = |V(H)| - tau(H): independent sets complement covers.
            alpha = (
                rest.number_of_nodes() - minimum_vertex_cover_size(_relabel(rest))
                if rest.number_of_nodes()
                else 0
            )
            if alpha < q:
                return True
    return False


def exists_forall_vertex_cover(graph: nx.Graph, p: int, q: int) -> bool:
    """Brute force for the paper's ∃∀-Vertex-Cover problem (Theorem 9).

    Is there S, |S| <= p, such that *no* superset of S of size <= q is a
    vertex cover?
    """
    check_graph(graph)
    nodes = list(graph.nodes)
    for size in range(min(p, len(nodes)) + 1):
        for S in combinations(nodes, size):
            S = set(S)
            # tau(G, S) = |S| + tau(G[V \ S]) (observation 2 in Thm 9).
            rest = graph.subgraph([v for v in nodes if v not in S])
            tau_rest = minimum_vertex_cover_size(_relabel(rest))
            if len(S) + tau_rest > q:
                return True
    return False


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel arbitrary nodes to 0..n-1 (the oracles' input convention)."""
    return nx.convert_node_labels_to_integers(graph)


def weak_bmcf_exists(matrix: np.ndarray, budget: int, p: int) -> bool:
    """The <=|T| variant of p-BMCF (see the reproduction note in bmcf.py).

    Identical to :func:`bmcf_exists` except rows must reach weight at
    most ``|T|`` instead of ``|T| - 1``.  This is the condition the
    Theorem 6 dataset actually decides; the two variants coincide on
    matrices whose row weights are all odd (a parity argument), which
    the Proposition 5 output always satisfies.
    """
    matrix = np.asarray(matrix)
    m, n = matrix.shape
    budget = int(budget)
    for size in range(0, min(budget, n) + 1):
        for T in combinations(range(n), size):
            flipped = matrix.copy()
            for col in T:
                flipped[:, col] = 1 - flipped[:, col]
            light_rows = int((flipped.sum(axis=1) <= size).sum())
            if light_rows >= m - p:
                return True
    return False
