"""Theorem 5: partition → complement of k-Check-SR(R, D_1), k >= 3.

Given positive integers ``v_1..v_n``, the multiplicity form of the
construction uses the three points

    alpha = 0            labeled 1, multiplicity 1
    beta  = 2v           labeled 1, multiplicity (k-1)/2
    gamma = v            labeled 0, multiplicity (k+1)/2

where ``v = (v_1, ..., v_n)``; then the *empty* coordinate set fails to
be a sufficient reason for ``x = 0`` exactly when the partition
instance is solvable.

The multiplicity-free form appends ``k + 1`` one-hot auxiliary
coordinates (one per dataset point, including clones) and asks about
the coordinate set ``X = {auxiliary coordinates}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset


@dataclass(frozen=True)
class CheckSRInstance:
    """A Check-Sufficient-Reason decision instance from a reduction.

    The reduction answers are *complemented*: X is a sufficient reason
    iff the source partition instance has **no** solution.
    """

    dataset: Dataset
    x: np.ndarray
    X: frozenset[int]
    k: int
    metric: str


def _validate_values(values):
    values = [int(v) for v in values]
    if not values or any(v <= 0 for v in values):
        raise ValidationError("partition instances use positive integers")
    return values


def partition_to_check_sr_l1_multiplicity(values, k: int = 3) -> CheckSRInstance:
    """The multiplicity form (X = empty set)."""
    values = _validate_values(values)
    k = check_odd_k(k)
    if k < 3:
        raise ValidationError("the Theorem 5 construction needs k >= 3")
    v = np.array(values, dtype=float)
    dataset = Dataset(
        positives=[np.zeros(len(values)), 2.0 * v],
        negatives=[v],
        positive_multiplicities=[1, (k - 1) // 2],
        negative_multiplicities=[(k + 1) // 2],
    )
    return CheckSRInstance(
        dataset=dataset,
        x=np.zeros(len(values)),
        X=frozenset(),
        k=k,
        metric="l1",
    )


def partition_to_check_sr_l1(values, k: int = 3) -> CheckSRInstance:
    """The multiplicity-free form with one-hot auxiliary coordinates.

    Point ``i`` of the dataset (in the order alpha, beta-clones,
    gamma-clones) gets a 1 in auxiliary coordinate ``i``; the question
    is whether the auxiliary coordinate set is a sufficient reason for
    the all-zero vector.
    """
    values = _validate_values(values)
    k = check_odd_k(k)
    if k < 3:
        raise ValidationError("the Theorem 5 construction needs k >= 3")
    v = np.array(values, dtype=float)
    n = len(values)
    total_points = k + 1
    positives = []
    negatives = []
    body = [("pos", np.zeros(n))]
    body += [("pos", 2.0 * v)] * ((k - 1) // 2)
    body += [("neg", v)] * ((k + 1) // 2)
    for index, (side, payload) in enumerate(body):
        point = np.zeros(total_points + n)
        point[index] = 1.0
        point[total_points:] = payload
        if side == "pos":
            positives.append(point)
        else:
            negatives.append(point)
    dataset = Dataset(positives, negatives)
    return CheckSRInstance(
        dataset=dataset,
        x=np.zeros(total_points + n),
        X=frozenset(range(total_points)),
        k=k,
        metric="l1",
    )


def partition_solution_to_counterexample(values, subset, instance: CheckSRInstance) -> np.ndarray:
    """The forward map: a perfect split T gives the flipping point y.

    ``y_i = 2 v_i`` for ``i`` in T, else 0 (auxiliary coordinates stay
    0); the proof shows f(y) = 1 while f(x) = 0.
    """
    values = _validate_values(values)
    subset = set(int(i) for i in subset)
    y = np.array(instance.x, dtype=float)
    offset = y.shape[0] - len(values)
    for i in subset:
        y[offset + i] = 2.0 * values[i]
    return y
