"""Theorems 8–9: interdiction problems → k-Minimum-SR({0,1}, D_H), k >= 3.

Theorem 9 reduces Independent-Set-Interdiction (Rutenburg 1994,
Sigma2p-complete) to the paper's ∃∀-Vertex-Cover problem: "is there
S, |S| <= p, such that no superset of S of size <= q covers G?" — the
map is simply ``(G, p, q) -> (G, p, |V| - q)``.

Theorem 8 then reduces ∃∀-Vertex-Cover (with ``n/2 <= q <= n - 2``) to
Minimum Sufficient Reason over the Theorem 7 dataset: a sufficient
reason of size <= p exists iff the ∃∀ instance is a yes-instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .._validation import check_odd_k
from ..exceptions import ValidationError
from .check_sr_discrete import vertex_cover_to_check_sr_hamming
from .oracles import check_graph
from .vertex_cover import MSRInstance


@dataclass(frozen=True)
class ExistsForallVCInstance:
    """An ∃∀-Vertex-Cover instance (Theorem 9's target problem)."""

    graph: nx.Graph
    p: int
    q: int


def interdiction_to_exists_forall_vc(
    graph: nx.Graph, p: int, q: int
) -> ExistsForallVCInstance:
    """Theorem 9: Independent-Set-Interdiction (G, p, q) → ∃∀-VC (G, p, n - q).

    Correctness rests on tau(G, S) = |S| + tau(G - S) and
    alpha + tau = n on the induced subgraph.
    """
    check_graph(graph)
    n = graph.number_of_nodes()
    p, q = int(p), int(q)
    if not (0 < p and 0 < q):
        raise ValidationError("p and q must be positive")
    return ExistsForallVCInstance(graph=graph, p=p, q=n - q)


def exists_forall_vc_to_msr(instance: ExistsForallVCInstance, k: int = 3) -> MSRInstance:
    """Theorem 8: ∃∀-VC (with n/2 <= q <= n - 2) → k-Minimum-SR (k >= 3).

    The dataset is exactly the Theorem 7 construction for (G, q); the
    budget becomes p.
    """
    k = check_odd_k(k)
    if k < 3:
        raise ValidationError("the Theorem 8 construction needs k >= 3")
    check = vertex_cover_to_check_sr_hamming(instance.graph, instance.q, k=k)
    return MSRInstance(
        dataset=check.dataset,
        x=check.x,
        k=k,
        metric="hamming",
        budget=int(instance.p),
    )


def blocking_set_to_sufficient_reason(S) -> frozenset[int]:
    """The forward map of Theorem 8: the blocking vertex set *is* the SR.

    Vertex i of G corresponds to coordinate i of the dataset, so the
    set S itself (as coordinate indices) is the claimed sufficient
    reason for x = 0.
    """
    return frozenset(int(i) for i in S)
