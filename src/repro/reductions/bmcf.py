"""Theorem 6 / Proposition 5: the p-BMCF chain to Hamming counterfactuals.

``p-Boolean Matrix Column Flipping`` (p-BMCF): given an ``m x n``
Boolean matrix B and a budget ``l``, is there a column set T with
``|T| <= l`` such that after flipping the columns of T at least
``m - p`` rows have weight at most ``|T| - 1``?

* Proposition 5 reduces (relaxed) Vertex Cover to p-BMCF: B is the
  transposed incidence matrix extended with an all-ones column, and the
  budget becomes ``l + 1``.
* Theorem 6 reduces p-BMCF to ``k``-Counterfactual Explanation over the
  Hamming cube with ``k = 2p + 1``: rows of B (padded with ``p + 1``
  zeros) become S+, the ``p + 1`` shifted unit vectors become S-, and
  ``x`` is the all-ones vector.

Reproduction note (off-by-one in the paper's Theorem 6).  Working out
the distances of the construction exactly, a flip set ``T`` changes the
classification iff at least ``m - p`` rows reach weight ``<= |T|`` —
not ``<= |T| - 1`` as the paper's backward direction claims (its final
display drops a unit).  The counterfactual instance therefore decides
the *weak* BMCF variant (:func:`repro.reductions.oracles.weak_bmcf_exists`).
The end-to-end hardness chain is unaffected: every matrix produced by
the Proposition 5 reduction has all row weights odd (two incidence 1s
plus the all-ones column), and since ``weight_T(row) ≡ weight(row) +
|T| (mod 2)``, the boundary case ``weight_T = |T|`` can never occur, so
the weak and strict variants coincide on exactly the instances the
hardness proof uses.  :func:`bmcf_to_cf_hamming` checks this parity
precondition and exposes ``strict_equivalent`` on the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import ValidationError
from ..knn import Dataset
from .knapsack import CounterfactualInstance
from .oracles import check_graph


@dataclass(frozen=True)
class BMCFInstance:
    """A p-BMCF decision instance."""

    matrix: np.ndarray
    budget: int
    p: int


def vertex_cover_to_bmcf(graph: nx.Graph, budget: int, p: int = 0) -> BMCFInstance:
    """Proposition 5: (relaxed) Vertex Cover → p-BMCF.

    For ``p = 0`` this encodes plain Vertex Cover; for ``p > 0`` the
    relaxed variant "cover all but p edges", which Proposition 5 makes
    hard by padding the graph with p isolated edges (the caller can use
    :func:`pad_graph_with_isolated_edges`).
    """
    check_graph(graph)
    if graph.number_of_edges() == 0:
        raise ValidationError("the construction needs at least one edge")
    n = graph.number_of_nodes()
    edges = list(graph.edges)
    incidence = np.zeros((len(edges), n), dtype=np.int64)
    for row, (u, v) in enumerate(edges):
        incidence[row, [u, v]] = 1
    matrix = np.hstack([incidence, np.ones((len(edges), 1), dtype=np.int64)])
    return BMCFInstance(matrix=matrix, budget=int(budget) + 1, p=int(p))


def pad_graph_with_isolated_edges(graph: nx.Graph, p: int) -> nx.Graph:
    """Append p fresh disjoint edges (the Prop. 5 hardness padding)."""
    check_graph(graph)
    padded = graph.copy()
    base = graph.number_of_nodes()
    for i in range(int(p)):
        padded.add_edge(base + 2 * i, base + 2 * i + 1)
    return padded


def rows_all_odd(matrix) -> bool:
    """True when every row weight is odd (the parity precondition)."""
    return bool(np.all(np.asarray(matrix).sum(axis=1) % 2 == 1))


def bmcf_to_cf_hamming(
    instance: BMCFInstance, *, require_odd_rows: bool = True
) -> CounterfactualInstance:
    """Theorem 6: p-BMCF → (2p+1)-Counterfactual Explanation({0,1}, D_H).

    Preconditions from the proof (checked): no repeated rows, every row
    has at least two 0s, and at least ``p + 1`` rows.  By default the
    parity precondition (all row weights odd) is enforced too, under
    which the counterfactual answer equals the strict p-BMCF answer;
    pass ``require_odd_rows=False`` to build the instance anyway, in
    which case it decides the weak variant (see the module docstring).
    """
    B = np.asarray(instance.matrix, dtype=np.int64)
    m, n = B.shape
    p = int(instance.p)
    if m <= p:
        raise ValidationError(f"need more than p={p} rows, have {m}")
    if len({tuple(row) for row in B}) != m:
        raise ValidationError("the construction requires distinct rows")
    if np.any((B == 0).sum(axis=1) < 2):
        raise ValidationError("every row must contain at least two 0s")
    if require_odd_rows and not rows_all_odd(B):
        raise ValidationError(
            "even row weights make the instance decide only the weak BMCF "
            "variant (see the module docstring); pass require_odd_rows=False "
            "to accept that"
        )
    dim = n + p + 1
    positives = [np.concatenate([row, np.zeros(p + 1)]) for row in B.astype(float)]
    negatives = []
    for j in range(1, p + 2):
        point = np.zeros(dim)
        point[n + j - 1] = 1.0
        negatives.append(point)
    dataset = Dataset(positives, negatives, discrete=True)
    return CounterfactualInstance(
        dataset=dataset,
        x=np.ones(dim),
        k=2 * p + 1,
        metric="hamming",
        radius=float(instance.budget),
    )


def bmcf_solution_to_counterfactual(
    instance: BMCFInstance, T, cf_instance: CounterfactualInstance
) -> np.ndarray:
    """The forward map of Theorem 6: clear the flipped columns of x."""
    T = sorted(set(int(i) for i in T))
    n = instance.matrix.shape[1]
    if any(not 0 <= i < n for i in T):
        raise ValidationError("T must index columns of the matrix")
    y = np.array(cf_instance.x, dtype=float)
    y[T] = 0.0
    return y
