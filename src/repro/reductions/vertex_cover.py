"""Theorem 1: Vertex Cover → k-Minimum Sufficient Reason.

Discrete construction (k = 1): over ``{0,1}^n`` with one coordinate per
vertex, take ``x = 0``; each edge contributes its incidence vector to
``S-``, and the two vectors obtained by clearing one endpoint ("guards")
to ``S+``.  Then vertex covers of size <= l correspond exactly to
sufficient reasons of size <= l.

Continuous construction (every odd k, every lp): each edge vector is
cloned ``(k+1)/2`` times at heights ``1 + eps_h`` with
``1/2 > eps_1 > ... > eps_(k+1)/2 > 0``, and the guards are cloned
accordingly (endpoint lowered from ``1 + eps_h`` to ``eps_h``).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset
from .oracles import check_graph


@dataclass(frozen=True)
class MSRInstance:
    """A Minimum-SR instance produced by a reduction.

    ``budget`` is the size bound carried over from the source instance
    (the reduction is answer-preserving: SR of size <= budget exists iff
    the source was a yes-instance).
    """

    dataset: Dataset
    x: np.ndarray
    k: int
    metric: str
    budget: int


def vertex_cover_to_msr_discrete(graph: nx.Graph, budget: int) -> MSRInstance:
    """The Theorem 1(1) construction for k = 1 over the Hamming cube."""
    check_graph(graph)
    n = graph.number_of_nodes()
    edges = list(graph.edges)
    if not edges:
        raise ValidationError("the construction needs at least one edge")
    negatives = []
    positives = []
    for u, v in edges:
        y = np.zeros(n)
        y[[u, v]] = 1.0
        negatives.append(y)
        for endpoint in sorted((u, v)):
            guard = y.copy()
            guard[endpoint] = 0.0
            positives.append(guard)
    dataset = Dataset(positives, negatives, discrete=True)
    return MSRInstance(
        dataset=dataset,
        x=np.zeros(n),
        k=1,
        metric="hamming",
        budget=int(budget),
    )


def vertex_cover_to_msr_continuous(
    graph: nx.Graph, budget: int, k: int = 1, p: int = 2
) -> MSRInstance:
    """The Theorem 1(2) construction for any odd k and lp metric.

    The epsilon ladder is ``eps_h = 1 / (2 * (h + 1))``, which satisfies
    the proof's requirement ``1/2 > eps_1 > ... > eps_(k+1)/2 > 0``.
    """
    check_graph(graph)
    k = check_odd_k(k)
    if p < 1:
        raise ValidationError(f"lp metric needs p >= 1, got {p}")
    n = graph.number_of_nodes()
    edges = list(graph.edges)
    if not edges:
        raise ValidationError("the construction needs at least one edge")
    levels = (k + 1) // 2
    eps = [1.0 / (2.0 * (h + 2)) for h in range(levels)]  # eps_1 = 1/4 > ...
    negatives = []
    positives = []
    for u, v in edges:
        for h in range(levels):
            y = np.zeros(n)
            y[[u, v]] = 1.0 + eps[h]
            negatives.append(y)
            for endpoint in sorted((u, v)):
                guard = y.copy()
                guard[endpoint] = eps[h]
                positives.append(guard)
    dataset = Dataset(positives, negatives)
    return MSRInstance(
        dataset=dataset,
        x=np.zeros(n),
        k=k,
        metric=f"l{p}",
        budget=int(budget),
    )


def sufficient_reason_is_vertex_cover(graph: nx.Graph, X) -> bool:
    """The backward direction of Theorem 1: does X cover every edge?"""
    check_graph(graph)
    X = set(int(i) for i in X)
    return all(u in X or v in X for u, v in graph.edges)
