"""Theorem 7: Vertex Cover → complement of k-Check-SR({0,1}, D_H), k >= 3.

For a graph G with n vertices and a cover budget q constrained to
``n/2 <= q <= n - 2``, the construction works over dimension
``n + (k+1)/2 + (2q - n)``, writing vectors as concatenations
``(w, gamma, t)``:

    S- = { (y_j, beta, 1...1) : edge j, beta in {0,1}^(k+1)/2 \\ {0} }
    S+ = { (0...0, alpha_1, 1...1) } ∪
         { (1...1, alpha_h, 0...0) : h = 2..(k+1)/2 }

with ``alpha_h`` the one-hot vectors.  Then the *empty* set fails to be
a sufficient reason for ``x = 0`` iff G has a vertex cover of size <= q.

The budget normalizations the proof allows (q >= n/2 via the join-nodes
padding, q <= n - 2 trivially) are provided as helpers.
"""

from __future__ import annotations

from itertools import product

import networkx as nx
import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset
from .oracles import check_graph
from .partition import CheckSRInstance


def normalize_cover_budget(graph: nx.Graph, q: int) -> tuple[nx.Graph, int]:
    """Transform (G, q) so that ``n/2 <= q <= n - 2`` preserving the answer.

    If ``q < n/2``: add ``n - 2q`` fresh nodes joined to every original
    node and ask for covers of size ``n - q`` (the proof of Theorem 7).
    Instances with ``q > n - 2`` are trivial yes-instances and rejected
    here — callers should special-case them.
    """
    check_graph(graph)
    n = graph.number_of_nodes()
    q = int(q)
    if q >= n - 1:
        raise ValidationError(
            f"q={q} >= n-1={n - 1} is a trivial yes-instance; no construction needed"
        )
    if 2 * q >= n:
        return graph, q
    padded = graph.copy()
    fresh = range(n, n + (n - 2 * q))
    for new in fresh:
        for old in range(n):
            padded.add_edge(new, old)
    return padded, n - q


def vertex_cover_to_check_sr_hamming(graph: nx.Graph, q: int, k: int = 3) -> CheckSRInstance:
    """The Theorem 7 construction (requires ``n/2 <= q <= n - 2``)."""
    check_graph(graph)
    k = check_odd_k(k)
    if k < 3:
        raise ValidationError("the Theorem 7 construction needs k >= 3")
    n = graph.number_of_nodes()
    q = int(q)
    if not (n / 2 <= q <= n - 2):
        raise ValidationError(
            f"q={q} outside [n/2, n-2] = [{n / 2}, {n - 2}]; "
            "use normalize_cover_budget first"
        )
    edges = list(graph.edges)
    if not edges:
        raise ValidationError("the construction needs at least one edge")
    half = (k + 1) // 2
    tail = 2 * q - n
    dim = n + half + tail
    negatives = []
    for u, v in edges:
        y = np.zeros(n)
        y[[u, v]] = 1.0
        for beta in product((0.0, 1.0), repeat=half):
            if not any(beta):
                continue
            negatives.append(np.concatenate([y, beta, np.ones(tail)]))
    positives = []
    alpha = np.zeros(half)
    alpha[0] = 1.0
    positives.append(np.concatenate([np.zeros(n), alpha, np.ones(tail)]))
    for h in range(1, half):
        alpha = np.zeros(half)
        alpha[h] = 1.0
        positives.append(np.concatenate([np.ones(n), alpha, np.zeros(tail)]))
    dataset = Dataset(positives, negatives, discrete=True)
    return CheckSRInstance(
        dataset=dataset,
        x=np.zeros(dim),
        X=frozenset(),
        k=k,
        metric="hamming",
    )


def cover_to_counterexample(graph: nx.Graph, cover, instance: CheckSRInstance) -> np.ndarray:
    """The forward map (property 1 in the proof): covers flip the label.

    A vertex cover C of size exactly q yields ``z = (w_C, 0, 0)`` with
    ``w_C[i] = 0`` iff ``i in C``, classified 1 although ``f(x) = 0``.
    """
    check_graph(graph)
    cover = set(int(i) for i in cover)
    n = graph.number_of_nodes()
    z = np.zeros(instance.x.shape[0])
    for i in range(n):
        if i not in cover:
            z[i] = 1.0
    return z
