"""Counterfactual explanations for k-NN classifiers.

A counterfactual explanation for ``x`` is any input ``y`` with
``f(y) != f(x)``; one looks for the closest such ``y`` (Section 3.1).
Complexity landscape (paper's Table 1):

* ``(R, D_2)`` — polynomial for every fixed k (Theorem 2), via convex
  QP over the Proposition-1 polyhedra: :mod:`repro.counterfactual.l2`;
* ``(R, D_1)`` — NP-complete already for ``|S+| = |S-| = 1`` (Theorem
  4); solved in practice with a big-M MILP: :mod:`repro.counterfactual.l1`;
* ``({0,1}, D_H)`` — NP-complete (Theorem 6); solved with the paper's
  Section-9 pipelines: a linearized IQP → MILP
  (:mod:`repro.counterfactual.hamming_milp`) and the guarded-cardinality
  SAT encoding (:mod:`repro.counterfactual.hamming_sat`), plus an
  exhaustive baseline (:mod:`repro.counterfactual.brute`).

:func:`closest_counterfactual` and :func:`exists_counterfactual`
dispatch on the metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_vector, check_odd_k, check_positive
from ..exceptions import UnsupportedSettingError, ValidationError
from ..knn import Dataset
from ..metrics import get_metric


@dataclass(frozen=True)
class CounterfactualResult:
    """A counterfactual explanation.

    Attributes
    ----------
    y:
        the counterfactual point (``f(y) != f(x)``), or None when no
        counterfactual exists (one-class data).
    distance:
        ``d(x, y)``; for open target regions (flipping into class 0
        under l2) this can sit slightly above the reported infimum.
    infimum:
        the greatest lower bound of counterfactual distances; equals
        ``distance`` whenever the optimum is attained.
    label_from:
        the classification of x (the counterfactual has ``1 - label_from``).
    method:
        which solver produced the result.
    """

    y: np.ndarray | None
    distance: float
    infimum: float
    label_from: int
    method: str

    @property
    def found(self) -> bool:
        """True when a counterfactual point was produced."""
        return self.y is not None


def closest_counterfactual(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    method: str = "auto",
    query_engine=None,
    **kwargs,
) -> CounterfactualResult:
    """Compute a (near-)closest counterfactual explanation for *x*.

    ``method``: ``"auto"`` dispatches on the metric (l2 → QP, l1 → MILP,
    hamming → MILP); ``"l2-qp"``, ``"l1-milp"``, ``"hamming-milp"``,
    ``"hamming-sat"``, ``"hamming-brute"`` force a pipeline;
    ``"portfolio"`` races every applicable pipeline under per-method
    time budgets via :mod:`repro.portfolio` (pass ``budget=`` seconds)
    and returns the winner's result — call the portfolio module
    directly for the provenance record.

    ``query_engine`` optionally shares a :class:`~repro.knn.QueryEngine`
    over (dataset, metric) so repeated calls reuse its distance cache
    (``engine=`` in the kwargs still selects the MILP backend).  Most
    pipelines also accept ``time_limit=`` seconds (best-effort,
    raising :class:`~repro.exceptions.ResourceLimitError` on expiry).
    """
    from . import brute, hamming_milp, hamming_sat, l1, l2, lp_general

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    if method == "portfolio":
        from ..portfolio import portfolio_closest_counterfactual

        # Single-method callers say time_limit=; for the portfolio that
        # budget applies per raced method (mirrors minimum_sufficient_reason).
        kwargs.setdefault("budget", kwargs.pop("time_limit", None))
        return portfolio_closest_counterfactual(
            dataset, k, metric, xv, query_engine=query_engine, **kwargs
        ).answer
    if query_engine is not None:
        kwargs["query_engine"] = query_engine
    if method == "auto":
        method = {
            "l2": "l2-qp",
            "l1": "l1-milp",
            "hamming": "hamming-milp",
        }.get(metric.name)
        if method is None:
            raise UnsupportedSettingError(
                f"no exact counterfactual pipeline for metric {metric.name}; "
                "for lp with p >= 3 (the paper's open problem) pass "
                "method='lp-heuristic' to get a verified upper bound"
            )
    if method == "lp-heuristic":
        import numpy as _np

        from ..metrics import LpMetric

        if (
            not isinstance(metric, LpMetric)
            or metric.p in (1, 2)
            or metric.p is _np.inf
        ):
            raise ValidationError(
                "method 'lp-heuristic' requires an lp metric with finite p >= 3"
            )
        return lp_general.closest_counterfactual_lp_heuristic(
            dataset, k, int(metric.p), xv, **kwargs
        )
    if method == "l2-qp":
        if metric.name != "l2":
            raise ValidationError("method 'l2-qp' requires the l2 metric")
        return l2.closest_counterfactual_l2(dataset, k, xv, **kwargs)
    if method == "l1-milp":
        if metric.name != "l1":
            raise ValidationError("method 'l1-milp' requires the l1 metric")
        return l1.closest_counterfactual_l1(dataset, k, xv, **kwargs)
    if method in ("hamming-milp", "hamming-sat", "hamming-brute"):
        if metric.name != "hamming":
            raise ValidationError(f"method {method!r} requires the Hamming metric")
        if method == "hamming-milp":
            return hamming_milp.closest_counterfactual_hamming_milp(dataset, k, xv, **kwargs)
        if method == "hamming-sat":
            return hamming_sat.closest_counterfactual_hamming_sat(dataset, k, xv, **kwargs)
        return brute.closest_counterfactual_hamming_brute(dataset, k, xv, **kwargs)
    raise ValidationError(f"unknown method {method!r}")


def exists_counterfactual(
    dataset: Dataset,
    k: int,
    metric,
    x,
    radius: float,
    *,
    method: str = "auto",
    rtol: float = 1e-9,
    **kwargs,
) -> bool:
    """``k-Counterfactual Explanation``: is there a counterfactual within *radius*?

    Decided through the closest-counterfactual computation; for open
    target regions the decision uses the strict-infimum rule of
    Theorem 2 (Yes iff the infimum is strictly below the radius or is
    attained within it).

    ``rtol`` absorbs solver roundoff in the attained-distance branch:
    MILP/QP engines work to ~1e-7 feasibility, so an optimum that is
    *exactly* the radius (the generic case for reduction instances) can
    come back a few ulps above it.  Set ``rtol=0`` for the raw
    comparison.
    """
    radius = check_positive(radius, name="radius")
    result = closest_counterfactual(dataset, k, metric, x, method=method, **kwargs)
    if not result.found:
        return False
    if result.distance <= radius + rtol * max(1.0, abs(radius)):
        return True
    return result.infimum < radius


__all__ = [
    "CounterfactualResult",
    "closest_counterfactual",
    "exists_counterfactual",
]
