"""The paper's SAT encoding for closest Hamming counterfactuals (§9.2).

Boolean variables ``y_1..y_n`` describe the counterfactual; a selector
variable ``c_t`` per target-class point ``t`` asserts that ``t`` will be
(weakly/strictly) closer to ``y`` than every point of the other class.
For a pair ``(t, r)`` with difference set ``Delta = {i : t_i != r_i}``,

    d_H(y, t) - d_H(y, r) = |Delta| - 2 * #{i in Delta : y_i = t_i}

so ``d_H(y, t) <= d_H(y, r) - margin`` becomes the cardinality
constraint

    #{i in Delta : y_i = t_i}  >=  ceil((|Delta| + margin) / 2)

guarded by ``c_t`` — for ``margin = 1`` exactly the paper's
``floor(|Delta|/2) + 1`` bound.  The distance bound
``d_H(x, y) <= t`` is one more cardinality constraint, and the closest
counterfactual is found by searching the smallest feasible bound
(binary or linear, Section 9.2's closing remark).

The sweep is incremental by default: the flip encoding is built once,
each probed distance bound becomes a guarded cardinality constraint on
the same solver, and the bound search activates one guard per probe
through the assumption interface — rebuilding encoding and solver per
bound (``incremental=False``) is kept as the measurable baseline.
"""

from __future__ import annotations

import math

import numpy as np

from .._budget import remaining_budget, start_deadline
from .._validation import check_odd_k
from ..exceptions import UnsupportedSettingError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..solvers.sat import CNFBuilder, minimize_bound, minimize_bound_assumptions
from ..solvers.sat.pool import SATSolverPool, lease_or_build
from . import CounterfactualResult


def build_flip_encoding(
    x: np.ndarray, winning: np.ndarray, losing: np.ndarray, margin: int
) -> tuple[CNFBuilder, list[int]]:
    """CNF + cardinality encoding of ``f(y) = target`` (without the bound).

    Returns the builder and the list of the ``y`` variables.  *winning*
    is the class that must supply the nearest neighbor of ``y``;
    ``margin`` is 1 when that win must be strict (target label 0), else
    0.
    """
    n = x.shape[0]
    builder = CNFBuilder()
    y = builder.new_vars(n, prefix="y")
    selectors = builder.new_vars(winning.shape[0], prefix="c")
    builder.add_clause(selectors)
    for j, t in enumerate(winning):
        for r in losing:
            delta = np.flatnonzero(t != r)
            bound = math.ceil((len(delta) + margin) / 2)
            if bound == 0:
                continue
            lits = [y[i] if t[i] == 1 else -y[i] for i in delta]
            if bound > len(lits):
                builder.add_clause([-selectors[j]])
                break
            builder.add_at_least(lits, bound, guard=selectors[j])
    return builder, y


def add_distance_bound(builder: CNFBuilder, y: list[int], x: np.ndarray, t: int) -> None:
    """Append ``d_H(x, y) <= t`` as an at-least cardinality constraint."""
    n = x.shape[0]
    agree_lits = [y[i] if x[i] == 1 else -y[i] for i in range(n)]
    builder.add_at_least(agree_lits, n - t)


def closest_counterfactual_hamming_sat(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    strategy: str = "binary",
    conflict_limit: int | None = None,
    query_engine: QueryEngine | None = None,
    incremental: bool = True,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Closest Hamming counterfactual by SAT + bound search (k = 1).

    ``incremental`` (default) encodes the flipped-classification formula
    once and sweeps the distance bound through guard assumptions on one
    solver; ``incremental=False`` rebuilds encoding and solver per bound
    (the benchmark baseline).  ``time_limit`` caps the whole search in
    wall-clock seconds.
    """
    check_odd_k(k)
    if k != 1:
        raise UnsupportedSettingError(
            "the Section 9.2 SAT encoding targets k = 1; use hamming-milp "
            "with the enumerated formulation for k >= 3"
        )
    knn = as_engine(dataset, "hamming", query_engine)
    label = knn.classify(x, 1)
    expanded = dataset.expanded()
    if label == 1:
        winning, losing, margin = expanded.negatives, expanded.positives, 1
    else:
        winning, losing, margin = expanded.positives, expanded.negatives, 0
    if winning.shape[0] == 0:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-sat"
        )
    n = dataset.dimension

    def decode(model) -> np.ndarray:
        return np.array([1.0 if model[v] else 0.0 for v in y_vars])

    if incremental:
        builder, y_vars = build_flip_encoding(x, winning, losing, margin)
        solver = builder.build_solver(conflict_limit=conflict_limit)
        agree_lits = [y_vars[i] if x[i] == 1 else -y_vars[i] for i in range(n)]

        def encode_bound(t: int) -> int:
            guard = solver.new_var()
            # d_H(x, y) <= t  ==  at least n - t coordinates agree with x.
            solver.add_cardinality(agree_lits, n - t, guard=guard)
            return guard

        found = minimize_bound_assumptions(
            solver, encode_bound, decode, 1, n,
            strategy=strategy, time_limit=time_limit,
        )
    else:
        deadline = start_deadline(time_limit)

        def feasible(t: int):
            nonlocal y_vars
            remaining = remaining_budget(deadline, "hamming counterfactual SAT search")
            builder, y_vars = build_flip_encoding(x, winning, losing, margin)
            add_distance_bound(builder, y_vars, x, t)
            solver = builder.build_solver(conflict_limit=conflict_limit)
            model = solver.solve(time_limit=remaining)
            if model is None:
                return None
            return decode(model)

        y_vars: list[int] = []
        found = minimize_bound(feasible, 1, n, strategy=strategy)
    if found is None:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-sat"
        )
    t, y_val = found
    distance = float(np.abs(y_val - x).sum())
    return CounterfactualResult(
        y=y_val,
        distance=distance,
        infimum=distance,
        label_from=label,
        method="hamming-sat",
    )


# ---------------------------------------------------------------------------
# Warm-pool variants and the canonical (lex-min) witness
# ---------------------------------------------------------------------------


def _cf_facts(dataset: Dataset, x: np.ndarray, query_engine: QueryEngine | None):
    """Classify *x* and group the flip-encoding inputs for its label."""
    knn = as_engine(dataset, "hamming", query_engine)
    label = knn.classify(x, 1)
    expanded = dataset.expanded()
    if label == 1:
        winning, losing, margin = expanded.negatives, expanded.positives, 1
    else:
        winning, losing, margin = expanded.positives, expanded.negatives, 0
    return knn, label, winning, losing, margin


def _build_cf_entry(x: np.ndarray, winning, losing, margin: int):
    """Build a pooled counterfactual entry: flip encoding on a live solver.

    The flip constraints only mention the dataset points (``x`` supplies
    the dimension), so one entry serves every query with this label on
    this dataset version; the per-query distance bounds are added later
    as guarded cardinality constraints.
    """
    builder, y = build_flip_encoding(x, winning, losing, margin)
    return builder.build_solver(), {"y": y, "bounds": {}}


def _ensure_cf_bound(entry, x: np.ndarray, t: int) -> int:
    """Guarded ``d_H(x, y) <= t`` constraint, cached per (query, bound)."""
    key = (x.tobytes(), t)
    guard = entry.state["bounds"].get(key)
    if guard is None:
        y = entry.state["y"]
        n = x.shape[0]
        agree = [y[i] if x[i] == 1 else -y[i] for i in range(n)]
        guard = entry.solver.new_var()
        entry.solver.add_cardinality(agree, n - t, guard=guard)
        entry.state["bounds"][key] = guard
    return guard


def closest_counterfactual_hamming_sat_pooled(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    strategy: str = "binary",
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Incremental counterfactual sweep over a warm pooled solver.

    Same optimal distance as :func:`closest_counterfactual_hamming_sat`
    — feasibility verdicts do not depend on warm solver state — but the
    flip encoding shared by every query with this label on this dataset
    version is built once and reused.  ``solver_pool=None`` degrades to
    an ephemeral (cold) entry.
    """
    check_odd_k(k)
    if k != 1:
        raise UnsupportedSettingError(
            "the Section 9.2 SAT encoding targets k = 1; use hamming-milp "
            "with the enumerated formulation for k >= 3"
        )
    _, label, winning, losing, margin = _cf_facts(dataset, x, query_engine)
    if winning.shape[0] == 0:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-sat"
        )
    n = dataset.dimension
    key = (fingerprint or "", "cf", 1, label, n)
    with lease_or_build(
        solver_pool, key, lambda: _build_cf_entry(x, winning, losing, margin)
    ) as entry:
        y_vars = entry.state["y"]
        found = minimize_bound_assumptions(
            entry.solver,
            lambda t: _ensure_cf_bound(entry, x, t),
            lambda model: np.array([1.0 if model[v] else 0.0 for v in y_vars]),
            1,
            n,
            strategy=strategy,
            time_limit=time_limit,
        )
    if found is None:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-sat"
        )
    _t, y_val = found
    distance = float(np.abs(y_val - x).sum())
    return CounterfactualResult(
        y=y_val,
        distance=distance,
        infimum=distance,
        label_from=label,
        method="hamming-sat",
    )


def counterfactual_canonical_witness(
    dataset: Dataset,
    x: np.ndarray,
    distance: float,
    *,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> np.ndarray:
    """The lex-smallest counterfactual at the optimal Hamming *distance*.

    Among all points flipping the classification at distance exactly
    ``t = distance``, this returns the one whose *flip set* (sorted
    component indices) is lexicographically smallest — exactly the
    first point the brute pipeline's ``combinations`` enumeration would
    hit, so every portfolio winner canonicalizes to the same array.
    The walk prefers flipping each ascending index, settling each
    preference with a feasibility probe under the ``d_H(x, y) <= t``
    guard (the current model short-circuits probes it already
    witnesses; every model under the guard sits at exactly the optimal
    distance, so prefixes stay feasible).
    """
    knn, label, winning, losing, margin = _cf_facts(dataset, x, query_engine)
    n = dataset.dimension
    t = int(distance)
    key = (fingerprint or "", "cf", 1, label, n)
    deadline = start_deadline(time_limit)
    with lease_or_build(
        solver_pool, key, lambda: _build_cf_entry(x, winning, losing, margin)
    ) as entry:
        solver, y = entry.solver, entry.state["y"]
        guard = _ensure_cf_bound(entry, x, t)
        decided: list[int] = []
        flips: set[int] = set()
        model = None
        for i in range(n):
            # "Flip i" as a literal: y_i takes the value opposite x_i.
            flip_lit = -y[i] if x[i] == 1 else y[i]
            if model is not None and (model[y[i]] != (x[i] == 1)):
                decided.append(flip_lit)
                flips.add(i)
            else:
                remaining = remaining_budget(deadline, "canonical-witness extraction")
                probe = solver.solve([guard, *decided, flip_lit], time_limit=remaining)
                if probe is not None:
                    model = probe
                    decided.append(flip_lit)
                    flips.add(i)
                else:
                    decided.append(-flip_lit)
            if len(flips) == t:
                break  # every model under the guard flips exactly t bits
    y_val = np.array(x, dtype=float)
    for i in flips:
        y_val[i] = 1.0 - y_val[i]
    if knn.classify(y_val, 1) == label:  # pragma: no cover - encoding bug guard
        raise AssertionError("canonical counterfactual fails to flip the label")
    return y_val
