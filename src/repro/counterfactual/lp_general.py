"""Heuristic counterfactuals for general lp metrics (p >= 3).

The paper leaves the complexity of ``k-Counterfactual Explanation`` for
lp, p > 2, open ("is l2 the only metric for which this problem is
tractable?").  This module contributes the practical side: an upper-
bound solver usable for experimentation with the open problem.

For a witness pair ``(A, B)`` of the target label, the feasible region
is ``{y : d_p(y,a)^p <= d_p(y,c)^p for all a in A, c in losing \\ B}``
— smooth (for even p) or piecewise-smooth constraints that are not
convex in general, so we run a local constrained minimizer (SLSQP) from
several starts (each dataset point of the winning side, plus the query
pushed across each constraint) and keep the best *verified* result.
Verification is exact: every candidate is re-classified by the k-NN
classifier before being accepted, so the output is always a genuine
counterfactual — only its optimality is heuristic.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..metrics import LpMetric, get_metric
from . import CounterfactualResult
from .l1 import _witness_pairs


def closest_counterfactual_lp_heuristic(
    dataset: Dataset,
    k: int,
    p: int,
    x: np.ndarray,
    *,
    margin: float = 1e-7,
    max_pairs: int = 200,
    query_engine: QueryEngine | None = None,
) -> CounterfactualResult:
    """Best verified counterfactual found by multi-start local search.

    Returns an *upper bound* on the optimal lp counterfactual distance
    (the ``infimum`` field repeats the verified distance; exactness is
    open — the very question the paper poses).
    """
    check_odd_k(k)
    metric = get_metric(f"lp:{p}")
    if not isinstance(metric, LpMetric) or metric.p in (1, 2):
        raise ValidationError("use the exact l1/l2 pipelines for p in {1, 2}")
    knn = as_engine(dataset, metric, query_engine)
    x = np.asarray(x, dtype=float)
    label = knn.classify(x, k)
    target = 1 - label
    expanded = dataset.expanded()
    if target == 1:
        winning, losing = expanded.positives, expanded.negatives
    else:
        winning, losing = expanded.negatives, expanded.positives
    if winning.shape[0] == 0:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label,
            method=f"l{p}-heuristic",
        )
    pw = metric.p
    best_y, best_d = None, np.inf
    pairs = list(_witness_pairs(winning.shape[0], losing.shape[0], k))
    if len(pairs) > max_pairs:
        pairs = pairs[:max_pairs]
    for A, B in pairs:
        rest = [c for c in range(losing.shape[0]) if c not in B]
        near = winning[list(A)]
        far = losing[rest]

        def constraint(y, near=near, far=far):
            y = np.asarray(y)
            d_near = np.power(np.abs(near - y), pw).sum(axis=1)
            d_far = np.power(np.abs(far - y), pw).sum(axis=1)
            # Every (a, c) comparison as one vector: far - near - margin >= 0.
            return (d_far[None, :] - d_near[:, None]).ravel() - margin

        starts = [w for w in near]
        starts.append(near.mean(axis=0))
        starts.append(0.5 * (x + near.mean(axis=0)))
        for y0 in starts:
            res = minimize(
                lambda y: np.power(np.abs(y - x), pw).sum(),
                x0=np.asarray(y0, dtype=float),
                constraints=[{"type": "ineq", "fun": constraint}],
                method="SLSQP",
                options={"maxiter": 200, "ftol": 1e-12},
            )
            if not res.success:
                continue
            candidate = np.asarray(res.x)
            if knn.classify(candidate, k) != target:
                continue  # verification failed: reject silently
            d = float(metric.distance(candidate, x))
            if d < best_d:
                best_y, best_d = candidate, d
    if best_y is None:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label,
            method=f"l{p}-heuristic",
        )
    return CounterfactualResult(
        y=best_y,
        distance=best_d,
        infimum=best_d,
        label_from=label,
        method=f"l{p}-heuristic",
    )
