"""Closest counterfactuals under the l2 metric (Theorem 2 / Corollary 2).

The target region ``{y : f(y) = 1 - f(x)}`` is a union of polynomially
many Proposition-1 polyhedra.  For each piece we project ``x`` onto it
with the active-set QP; the closest counterfactual is the best
projection over all pieces.

Open pieces (flipping into class 0, whose region is open because ties
favor class 1) need the two-step treatment from the paper: the piece is
non-empty iff its *strict* system is feasible (max-epsilon LP); the
infimum of distances is the projection onto the piece's *closure*; and
an actual counterfactual is obtained by sliding the projection slightly
toward a strict interior point (the segment stays in the open piece by
convexity), as in Corollary 2.

Closed pieces (flipping into class 1) contain their boundary
mathematically, but a projection landing *exactly on* the boundary can
fall on the wrong side in floating point.  Every candidate is therefore
verified against the classifier and nudged toward a strict interior
point when needed; candidates that cannot be certified are discarded in
favor of the next-closest piece.
"""

from __future__ import annotations

import numpy as np

from .._budget import remaining_budget, start_deadline
from ..exceptions import InfeasibleError
from ..geometry import decision_region_polyhedra
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..solvers.lp import feasible_point_strict
from ..solvers.qp import project_onto_polyhedron
from . import CounterfactualResult

_NUDGE_STEPS = 60


def closest_counterfactual_l2(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Closest l2 counterfactual via per-piece convex QP.

    ``time_limit`` caps the piece sweep in wall-clock seconds
    (checked between pieces, so it is best-effort).
    """
    knn = as_engine(dataset, "l2", query_engine)
    label = knn.classify(x, k)
    target = 1 - label
    deadline = start_deadline(time_limit)
    candidates: list[tuple[float, np.ndarray, np.ndarray | None]] = []
    for piece in decision_region_polyhedra(dataset, k, target):
        remaining_budget(deadline, "l2 counterfactual piece sweep")
        closure = piece.closure()
        # A strictly interior point doubles as the non-emptiness witness
        # for open pieces and as the nudge anchor for all pieces.
        interior = feasible_point_strict(
            A_strict=closure.A, b_strict=closure.b, n=piece.dimension
        )
        if piece.has_strict and interior is None:
            continue  # the open piece is empty even if its closure is not
        try:
            y, sq = project_onto_polyhedron(x, closure.A, closure.b)
        except InfeasibleError:
            continue
        candidates.append((float(sq), y, interior))
    candidates.sort(key=lambda item: item[0])
    for sq, y, interior in candidates:
        infimum = float(np.sqrt(sq))
        if knn.classify(y, k) == target:
            return CounterfactualResult(
                y=y,
                distance=float(np.linalg.norm(y - x)),
                infimum=infimum,
                label_from=label,
                method="l2-qp",
            )
        if interior is None:
            continue  # boundary-only piece that float arithmetic rejects
        nudged = _nudge_toward_interior(knn, k, target, y, interior)
        if nudged is not None:
            return CounterfactualResult(
                y=nudged,
                distance=float(np.linalg.norm(nudged - x)),
                infimum=infimum,
                label_from=label,
                method="l2-qp",
            )
    return CounterfactualResult(
        y=None, distance=np.inf, infimum=np.inf, label_from=label, method="l2-qp"
    )


def _nudge_toward_interior(
    knn: QueryEngine, k: int, target: int, boundary: np.ndarray, interior: np.ndarray
) -> np.ndarray | None:
    """Slide from the boundary projection toward a strict interior point.

    Every point ``(1 - t) * boundary + t * interior`` with ``t > 0`` lies
    in the piece's relative interior (a segment from a closure point to
    a strict point is strict except possibly at its start), so the
    smallest ``t`` the classifier confirms gives a genuine counterfactual
    at distance as close to the infimum as float arithmetic allows.
    ``t = 1`` is the interior point itself, which always verifies.
    """
    t = 1e-9
    for _ in range(_NUDGE_STEPS):
        candidate = (1.0 - t) * boundary + t * interior
        if knn.classify(candidate, k) == target:
            return candidate
        if t >= 1.0:
            break
        t = min(1.0, t * 4.0)
    return None  # pragma: no cover - t=1 verifies whenever interior does
