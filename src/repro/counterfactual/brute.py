"""Exhaustive closest-counterfactual baseline over the Boolean hypercube.

Enumerates flip sets in order of increasing size, so the first hit *is*
the closest counterfactual.  Exponential — usable up to roughly n = 20
with small answers — and therefore the ground-truth oracle for the MILP
and SAT pipelines in tests and benchmark sanity checks.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset, KNNClassifier
from . import CounterfactualResult


def closest_counterfactual_hamming_brute(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    max_distance: int | None = None,
    max_enumeration: int = 2_000_000,
) -> CounterfactualResult:
    """Closest Hamming counterfactual by distance-ordered enumeration."""
    check_odd_k(k)
    clf = KNNClassifier(dataset, k=k, metric="hamming")
    label = clf.classify(x)
    n = dataset.dimension
    hi = n if max_distance is None else min(n, int(max_distance))
    enumerated = 0
    candidate = x.copy()
    for t in range(1, hi + 1):
        for flips in combinations(range(n), t):
            enumerated += 1
            if enumerated > max_enumeration:
                raise ValidationError(
                    f"brute-force enumeration exceeded {max_enumeration} candidates; "
                    "lower max_distance or use the MILP/SAT pipelines"
                )
            flips = list(flips)
            candidate[flips] = 1.0 - candidate[flips]
            flipped = clf.classify(candidate) != label
            if flipped:
                y = candidate.copy()
                candidate[flips] = 1.0 - candidate[flips]
                return CounterfactualResult(
                    y=y,
                    distance=float(t),
                    infimum=float(t),
                    label_from=label,
                    method="hamming-brute",
                )
            candidate[flips] = 1.0 - candidate[flips]
    return CounterfactualResult(
        y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-brute"
    )
