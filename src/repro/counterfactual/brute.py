"""Exhaustive closest-counterfactual baseline over the Boolean hypercube.

Enumerates flip sets in order of increasing size, so the first hit *is*
the closest counterfactual.  Exponential — usable up to roughly n = 20
with small answers — and therefore the ground-truth oracle for the MILP
and SAT pipelines in tests and benchmark sanity checks.

Candidates are classified in batched blocks through the shared
:class:`~repro.knn.QueryEngine`, preserving the sequential enumeration
order (the first flipped candidate returned is the one the per-point
scan would have found).
"""

from __future__ import annotations

from itertools import combinations, islice

import numpy as np

from .._budget import remaining_budget, start_deadline
from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from . import CounterfactualResult

#: how many flip sets are materialized and classified per batch
_BATCH = 4096


def closest_counterfactual_hamming_brute(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    max_distance: int | None = None,
    max_enumeration: int = 2_000_000,
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Closest Hamming counterfactual by distance-ordered enumeration.

    ``time_limit`` caps the enumeration in wall-clock seconds (checked
    between candidate batches).
    """
    check_odd_k(k)
    engine = as_engine(dataset, "hamming", query_engine)
    label = engine.classify(x, k)
    n = dataset.dimension
    hi = n if max_distance is None else min(n, int(max_distance))
    deadline = start_deadline(time_limit)
    enumerated = 0
    for t in range(1, hi + 1):
        combos = combinations(range(n), t)
        while True:
            remaining_budget(deadline, "brute-force counterfactual enumeration")
            block = list(islice(combos, _BATCH))
            if not block:
                break
            # Enforce the enumeration budget exactly: candidates past the
            # limit are never classified, and the limit trips only if no
            # earlier candidate flipped.
            allowed = max_enumeration - enumerated
            over_budget = len(block) > allowed
            if over_budget:
                block = block[:allowed]
            enumerated += len(block)
            if block:
                flips = np.array(block, dtype=np.int64)
                candidates = np.broadcast_to(x, (flips.shape[0], n)).copy()
                rows = np.arange(flips.shape[0])[:, None]
                candidates[rows, flips] = 1.0 - candidates[rows, flips]
                hit = np.flatnonzero(engine.classify_batch(candidates, k) != label)
                if hit.size:
                    return CounterfactualResult(
                        y=candidates[hit[0]].copy(),
                        distance=float(t),
                        infimum=float(t),
                        label_from=label,
                        method="hamming-brute",
                    )
            if over_budget:
                raise ValidationError(
                    f"brute-force enumeration exceeded {max_enumeration} candidates; "
                    "lower max_distance or use the MILP/SAT pipelines"
                )
    return CounterfactualResult(
        y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-brute"
    )
