"""Closest Hamming counterfactuals via linearized IQP → MILP (Section 9).

The paper's IQP formulation minimizes ``sum_i (x_i - y_i)^2`` over
binary ``y`` subject to the flipped-classification constraint.  Over
binaries ``(x_i - y_i)^2`` is linear (``y_i^2 = y_i``) and so is every
Hamming distance:

    d_H(y, z) = sum_{i : z_i = 0} y_i + sum_{i : z_i = 1} (1 - y_i)

so the whole program is an exact MILP.  Two formulations are provided:

* ``guarded`` (k = 1, the paper's shape): one model with an indicator
  ``g_j`` per opposite-class point asserting "point j is the nearest
  neighbor of y", enforced with big-M implications;
* ``enumerated`` (any odd k): one small model per Proposition-1 witness
  pair ``(A, B)``, whose constraints need no indicators at all.

All comparisons are between integer distances, so the optimistic
strictness (< when flipping to class 0) is the exact ``<= -1`` offset —
no epsilons anywhere.
"""

from __future__ import annotations

import numpy as np

from .._budget import remaining_budget, start_deadline
from .._validation import check_odd_k
from ..exceptions import ValidationError
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..solvers.milp import MILPModel
from . import CounterfactualResult
from .l1 import _witness_pairs


def _hamming_terms(z: np.ndarray):
    """``d_H(y, z) = constant + sum coeff_i y_i`` with coeff in {-1, +1}."""
    coeff = np.where(z == 0, 1.0, -1.0)
    constant = float((z == 1).sum())
    return constant, coeff


def closest_counterfactual_hamming_milp(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    formulation: str = "auto",
    engine: str = "scipy",
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Closest Hamming counterfactual through the linearized IQP.

    ``engine`` names the MILP backend; ``query_engine`` optionally
    shares a :class:`~repro.knn.QueryEngine` for the k-NN side.
    ``time_limit`` caps the solve in wall-clock seconds.
    """
    check_odd_k(k)
    if formulation == "auto":
        formulation = "guarded" if k == 1 else "enumerated"
    if formulation == "guarded" and k != 1:
        raise ValidationError("the guarded formulation covers k = 1 only")
    if formulation not in ("guarded", "enumerated"):
        raise ValidationError(f"unknown formulation {formulation!r}")
    knn = as_engine(dataset, "hamming", query_engine)
    label = knn.classify(x, k)
    target = 1 - label
    expanded = dataset.expanded()
    if target == 1:
        winning, losing = expanded.positives, expanded.negatives
        margin = 0  # weak inequality: ties favor class 1
    else:
        winning, losing = expanded.negatives, expanded.positives
        margin = 1  # strict inequality
    if formulation == "guarded":
        y_val = _solve_guarded(x, winning, losing, margin, engine, time_limit=time_limit)
    else:
        y_val = _solve_enumerated(
            x, winning, losing, margin, k, engine, time_limit=time_limit
        )
    if y_val is None:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="hamming-milp"
        )
    distance = float(np.abs(y_val - x).sum())
    return CounterfactualResult(
        y=y_val,
        distance=distance,
        infimum=distance,
        label_from=label,
        method="hamming-milp",
    )


def _objective_terms(x: np.ndarray, y_vars):
    """Linearized ``sum (x_i - y_i)^2``: coefficients and constant."""
    coeffs = {}
    constant = 0.0
    for i, yv in enumerate(y_vars):
        if x[i] == 0:
            coeffs[yv] = 1.0
        else:
            coeffs[yv] = -1.0
            constant += 1.0
    return coeffs, constant


def _solve_guarded(x, winning, losing, margin, engine, *, time_limit=None):
    """One MILP: indicator g_j selects the winning witness point (k = 1)."""
    n = x.shape[0]
    if winning.shape[0] == 0:
        return None  # no point of the target class exists: f is constant
    big_m = float(2 * n + 2)
    model = MILPModel("hamming-counterfactual")
    y = [model.add_binary(f"y[{i}]") for i in range(n)]
    guards = [model.add_binary(f"g[{j}]") for j in range(winning.shape[0])]
    model.add_constraint({g: 1 for g in guards}, ">=", 1)
    for j, w in enumerate(winning):
        const_w, coef_w = _hamming_terms(w)
        for c in losing:
            const_c, coef_c = _hamming_terms(c)
            # g_j  =>  d(y, w) - d(y, c) <= -margin
            coeffs = {y[i]: float(coef_w[i] - coef_c[i]) for i in range(n)}
            coeffs[guards[j]] = big_m
            model.add_constraint(coeffs, "<=", big_m - margin - (const_w - const_c))
    obj, const = _objective_terms(x, y)
    model.set_objective(obj, constant=const)
    result = model.solve(engine=engine, time_limit=time_limit)
    if not result.optimal:
        return None
    return np.array([round(result.value(v)) for v in y], dtype=float)


def _solve_enumerated(x, winning, losing, margin, k, engine, *, time_limit=None):
    """One MILP per Proposition-1 witness pair (any odd k)."""
    n = x.shape[0]
    best_y, best_d = None, np.inf
    deadline = start_deadline(time_limit)
    for A, B in _witness_pairs(winning.shape[0], losing.shape[0], k):
        pair_limit = remaining_budget(deadline, "hamming counterfactual MILP sweep")
        rest = [c for c in range(losing.shape[0]) if c not in B]
        model = MILPModel("hamming-counterfactual-pair")
        y = [model.add_binary(f"y[{i}]") for i in range(n)]
        for a_idx in A:
            const_w, coef_w = _hamming_terms(winning[a_idx])
            for c_idx in rest:
                const_c, coef_c = _hamming_terms(losing[c_idx])
                coeffs = {y[i]: float(coef_w[i] - coef_c[i]) for i in range(n)}
                model.add_constraint(coeffs, "<=", -margin - (const_w - const_c))
        obj, const = _objective_terms(x, y)
        model.set_objective(obj, constant=const)
        result = model.solve(engine=engine, time_limit=pair_limit)
        if result.optimal and result.objective < best_d:
            best_d = result.objective
            best_y = np.array([round(result.value(v)) for v in y], dtype=float)
    return best_y
