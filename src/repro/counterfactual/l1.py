"""Closest counterfactuals under the l1 metric via big-M MILP.

``k-Counterfactual Explanation(R, D_1)`` is NP-complete even for
singleton classes (Theorem 4), so no polynomial algorithm is expected.
Following the operational route of the paper's Section 9 (which defers
to the mixed-integer model of Contardo et al.), we solve a MILP per
Proposition-1 witness pair ``(A, B)`` of the target label:

    minimize  sum_i t_i                        (t_i >= |y_i - x_i|)
    s.t.      d1(y, a) <= d1(y, c) - margin    for a in A, c in losing \\ B

where ``d1(y, a)`` is over-approximated by auxiliary variables
``u >= |y - a|`` (safe on the small side of the inequality) and
``d1(y, c)`` is under-approximated by ``l <= |y - c|`` made tight with
big-M side-selection binaries (safe on the large side).  All optimal
``y`` can be clamped into the coordinate-wise bounding box of the data
and x (clamping shifts both sides of every comparison equally), which
bounds the big-M constants.

Strict comparisons (flipping into class 0) use a small epsilon margin;
like the paper's implementation we accept that hairline ties are
resolved approximately in the continuous setting.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._budget import remaining_budget, start_deadline
from .._validation import check_odd_k
from ..knn import Dataset, QueryEngine
from ..knn.engine import as_engine
from ..solvers.milp import MILPModel
from . import CounterfactualResult

_STRICT_EPS = 1e-6


def _witness_pairs(n_win: int, n_lose: int, k: int):
    """Yield Proposition-1 pairs (A indices, B indices) for the target label."""
    need = (k + 1) // 2
    slack = (k - 1) // 2
    if n_win < need:
        return
    for A in combinations(range(n_win), need):
        for b_size in range(min(slack, n_lose) + 1):
            for B in combinations(range(n_lose), b_size):
                yield A, B


def closest_counterfactual_l1(
    dataset: Dataset,
    k: int,
    x: np.ndarray,
    *,
    engine: str = "scipy",
    query_engine: QueryEngine | None = None,
    time_limit: float | None = None,
) -> CounterfactualResult:
    """Closest l1 counterfactual by a MILP per witness pair.

    ``engine`` names the MILP backend; ``query_engine`` optionally
    shares a :class:`~repro.knn.QueryEngine` for the k-NN side.
    ``time_limit`` caps the whole pair sweep in wall-clock seconds.
    """
    check_odd_k(k)
    deadline = start_deadline(time_limit)
    knn = as_engine(dataset, "l1", query_engine)
    label = knn.classify(x, k)
    target = 1 - label
    expanded = dataset.expanded()
    if target == 1:
        winning, losing = expanded.positives, expanded.negatives
        strict = False
    else:
        winning, losing = expanded.negatives, expanded.positives
        strict = True
    n = dataset.dimension
    all_points = np.vstack([expanded.positives, expanded.negatives, x.reshape(1, -1)])
    lo = all_points.min(axis=0)
    hi = all_points.max(axis=0)
    span = hi - lo
    big_m = 2.0 * span + 1.0
    scale = max(1.0, float(span.max(initial=1.0)))

    # Strict comparisons use an epsilon margin; MILP engines themselves
    # work to ~1e-7 feasibility, so an unverified hairline win can be a
    # numerical mirage.  Grow the margin until the classifier confirms
    # the flip (each growth moves the answer further from the infimum by
    # at most the margin, which stays tiny relative to the data scale).
    margins = [m * scale for m in (_STRICT_EPS, 1e-4, 1e-2)] if strict else [0.0]
    best_y, best_d = None, np.inf
    for margin in margins:
        best_y, best_d = None, np.inf
        for A, B in _witness_pairs(winning.shape[0], losing.shape[0], k):
            rest = [c for c in range(losing.shape[0]) if c not in B]
            y_val, d_val = _solve_pair(
                x, winning[list(A)], losing[rest], lo, hi, big_m, margin, engine,
                time_limit=remaining_budget(deadline, "l1 counterfactual MILP sweep"),
            )
            if y_val is not None and d_val < best_d:
                best_y, best_d = y_val, d_val
        if best_y is None or knn.classify(best_y, k) == target:
            break
    if best_y is None:
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label, method="l1-milp"
        )
    # The epsilon margin makes strict-target optima sit within eps of the
    # true infimum; report the solved distance for both fields.
    return CounterfactualResult(
        y=best_y,
        distance=best_d,
        infimum=best_d,
        label_from=label,
        method="l1-milp",
    )


def _solve_pair(x, near_pts, far_pts, lo, hi, big_m, margin, engine, *, time_limit=None):
    """MILP: min ||y - x||_1 s.t. d1(y, a) <= d1(y, c) - margin for all a, c."""
    n = x.shape[0]
    model = MILPModel("l1-counterfactual")
    y = [model.add_var(f"y[{i}]", lb=lo[i], ub=hi[i]) for i in range(n)]
    t = [model.add_var(f"t[{i}]", lb=0.0) for i in range(n)]
    for i in range(n):
        model.add_constraint({t[i]: 1, y[i]: -1}, ">=", -x[i])
        model.add_constraint({t[i]: 1, y[i]: 1}, ">=", x[i])
    near_dist_vars = []
    for a_idx, a in enumerate(near_pts):
        u = [model.add_var(f"u[{a_idx},{i}]", lb=0.0) for i in range(n)]
        for i in range(n):
            model.add_constraint({u[i]: 1, y[i]: -1}, ">=", -a[i])
            model.add_constraint({u[i]: 1, y[i]: 1}, ">=", a[i])
        near_dist_vars.append(u)
    far_dist_vars = []
    for c_idx, c in enumerate(far_pts):
        l = [model.add_var(f"l[{c_idx},{i}]", lb=0.0) for i in range(n)]
        side = [model.add_binary(f"b[{c_idx},{i}]") for i in range(n)]
        for i in range(n):
            # l_i <= (y_i - c_i) + M (1 - side_i)  and  l_i <= (c_i - y_i) + M side_i
            model.add_constraint(
                {l[i]: 1, y[i]: -1, side[i]: big_m[i]}, "<=", -c[i] + big_m[i]
            )
            model.add_constraint({l[i]: 1, y[i]: 1, side[i]: -big_m[i]}, "<=", c[i])
        far_dist_vars.append(l)
    for u in near_dist_vars:
        for l in far_dist_vars:
            coeffs = {ui: 1.0 for ui in u}
            for li in l:
                coeffs[li] = coeffs.get(li, 0.0) - 1.0
            model.add_constraint(coeffs, "<=", -margin)
    model.set_objective({ti: 1 for ti in t})
    result = model.solve(engine=engine, time_limit=time_limit)
    if not result.optimal:
        return None, np.inf
    y_val = np.array([result.value(v) for v in y])
    return y_val, float(np.abs(y_val - x).sum())
