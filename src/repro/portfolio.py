"""Budgeted solver portfolio over the hard explanation pipelines.

The paper's Table 1 makes Minimum-SR and the Hamming/l1 counterfactual
problems NP-complete, and the repo ships several exact pipelines for
the same instances (SAT, MILP, brute force — Section 9).  No single
pipeline dominates: MILP usually leads on the random workloads, SAT
wins when the optimum is small, brute force wins at tiny dimension.
This module races them:

* every *applicable* method for the instance runs in a fixed order
  under a **per-method wall-clock budget** (``budget`` seconds),
  sharing one :class:`~repro.knn.QueryEngine` so distance work is never
  repeated;
* the first method to finish inside its budget supplies the exact
  answer, stamped with a provenance record (which method won, what the
  budget was, how long each attempt ran);
* if **every** exact method runs out of budget, the portfolio degrades
  to a polynomial *anytime* answer instead of failing: the
  Proposition-2 greedy for Minimum-SR (a genuine, just not necessarily
  minimum, sufficient reason) and the nearest training point of the
  opposite predicted class for counterfactuals (a genuine, just not
  necessarily closest, counterfactual).

Budgets are enforced cooperatively through the ``time_limit`` plumbing
of the underlying solvers (SAT conflict loop, HiGHS ``time_limit``,
enumeration batch checks), surfacing as
:class:`~repro.exceptions.ResourceLimitError` — best-effort rather than
preemptive, which keeps the racer deterministic and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ._validation import as_vector, check_odd_k
from .exceptions import (
    ResourceLimitError,
    UnsupportedSettingError,
    ValidationError,
)
from .knn import Dataset, QueryEngine
from .knn.engine import as_engine
from .metrics import get_metric

#: exact Minimum-SR methods raced on the discrete k = 1 cell, in order.
MSR_PORTFOLIO = ("milp", "sat", "brute")

#: exact closest-counterfactual methods raced per metric, in order.
CF_PORTFOLIO = {
    "hamming": ("hamming-milp", "hamming-sat", "hamming-brute"),
    "l1": ("l1-milp",),
    "l2": ("l2-qp",),
}


@dataclass(frozen=True)
class PortfolioAttempt:
    """One raced method: what ran, for how long, and how it ended."""

    method: str
    budget_s: float | None
    elapsed_s: float
    status: str  # "exact" | "timeout" | "unsupported" | "anytime"
    detail: str = ""


@dataclass(frozen=True)
class PortfolioResult:
    """The winning answer plus the race's provenance record.

    ``answer`` is the underlying pipeline's result object
    (:class:`~repro.abductive.MinimumSRResult` or
    :class:`~repro.counterfactual.CounterfactualResult`); ``exact`` is
    False only when every exact method timed out and the anytime
    fallback supplied the answer.
    """

    answer: object
    method: str
    budget_s: float | None
    elapsed_s: float
    exact: bool
    attempts: tuple[PortfolioAttempt, ...]


def portfolio_minimum_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    budget: float | None = None,
    methods: tuple[str, ...] | None = None,
    engine: QueryEngine | None = None,
    max_brute_dimension: int = 18,
    restarts: int = 8,
    seed: int | None = 0,
) -> PortfolioResult:
    """Race the exact Minimum-SR pipelines under per-method budgets.

    ``methods`` defaults to every pipeline applicable to the instance's
    (metric, k) cell; ``budget`` is seconds *per method* (None = no
    cap, so the first applicable method simply wins).  On all-timeout
    the Proposition-2 greedy (``restarts`` shuffled orders) provides
    the anytime answer.  All attempts share one query engine.
    """
    from .abductive.approximate import approximate_minimum_sufficient_reason
    from .abductive.minimum import MinimumSRResult, minimum_sufficient_reason

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    engine = as_engine(dataset, metric, engine)
    if methods is None:
        methods = (
            MSR_PORTFOLIO if (metric.name == "hamming" and k == 1) else ("brute",)
        )
    start = perf_counter()
    attempts: list[PortfolioAttempt] = []
    last_unsupported: Exception | None = None
    for method in methods:
        if budget is not None and budget <= 0:
            attempts.append(PortfolioAttempt(
                method, budget, 0.0, "timeout", "per-method budget is zero"
            ))
            continue
        t0 = perf_counter()
        try:
            result = minimum_sufficient_reason(
                dataset, k, metric, xv,
                method=method, engine=engine, time_limit=budget,
                max_brute_dimension=max_brute_dimension,
            )
        except ResourceLimitError as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "timeout", str(exc)
            ))
            continue
        except (UnsupportedSettingError, ValidationError) as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "unsupported", str(exc)
            ))
            last_unsupported = exc
            continue
        attempts.append(PortfolioAttempt(method, budget, perf_counter() - t0, "exact"))
        return PortfolioResult(
            answer=result,
            method=result.method,
            budget_s=budget,
            elapsed_s=perf_counter() - start,
            exact=True,
            attempts=tuple(attempts),
        )
    if last_unsupported is not None and not any(
        a.status == "timeout" for a in attempts
    ):
        # Nothing timed out — every member was inapplicable.  That is an
        # input problem, not budget pressure, so fail like the
        # single-method entry points instead of degrading silently.
        raise last_unsupported
    # Anytime degradation: the greedy always returns a genuine
    # (minimal) sufficient reason in polynomial time; only its
    # *cardinality minimality* is approximate.
    t0 = perf_counter()
    approx = approximate_minimum_sufficient_reason(
        dataset, k, metric, xv, engine=engine, restarts=restarts, seed=seed
    )
    answer = MinimumSRResult(X=approx.X, size=approx.size, method="greedy-anytime")
    attempts.append(PortfolioAttempt(
        "greedy-anytime", None, perf_counter() - t0, "anytime",
        f"upper bound after {approx.restarts_used} greedy restarts",
    ))
    return PortfolioResult(
        answer=answer,
        method="greedy-anytime",
        budget_s=budget,
        elapsed_s=perf_counter() - start,
        exact=False,
        attempts=tuple(attempts),
    )


def portfolio_closest_counterfactual(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    budget: float | None = None,
    methods: tuple[str, ...] | None = None,
    query_engine: QueryEngine | None = None,
) -> PortfolioResult:
    """Race the exact closest-counterfactual pipelines under budgets.

    Applicable methods come from :data:`CF_PORTFOLIO` keyed by the
    metric.  On all-timeout the anytime fallback returns the nearest
    *training* point whose prediction differs from ``f(x)`` — a
    genuine counterfactual whose distance upper-bounds the optimum.
    """
    from .counterfactual import closest_counterfactual

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    engine = as_engine(dataset, metric, query_engine)
    if methods is None:
        methods = CF_PORTFOLIO.get(metric.name)
        if methods is None:
            raise UnsupportedSettingError(
                f"no portfolio members for metric {metric.name!r}; pass methods="
            )
    start = perf_counter()
    attempts: list[PortfolioAttempt] = []
    last_unsupported: Exception | None = None
    for method in methods:
        if budget is not None and budget <= 0:
            attempts.append(PortfolioAttempt(
                method, budget, 0.0, "timeout", "per-method budget is zero"
            ))
            continue
        t0 = perf_counter()
        try:
            result = closest_counterfactual(
                dataset, k, metric, xv,
                method=method, query_engine=engine, time_limit=budget,
            )
        except ResourceLimitError as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "timeout", str(exc)
            ))
            continue
        except (UnsupportedSettingError, ValidationError) as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "unsupported", str(exc)
            ))
            last_unsupported = exc
            continue
        attempts.append(PortfolioAttempt(method, budget, perf_counter() - t0, "exact"))
        return PortfolioResult(
            answer=result,
            method=result.method,
            budget_s=budget,
            elapsed_s=perf_counter() - start,
            exact=True,
            attempts=tuple(attempts),
        )
    if last_unsupported is not None and not any(
        a.status == "timeout" for a in attempts
    ):
        raise last_unsupported  # all members inapplicable: an input problem
    t0 = perf_counter()
    answer = _anytime_counterfactual(dataset, k, metric, xv, engine)
    attempts.append(PortfolioAttempt(
        "nearest-training-anytime", None, perf_counter() - t0, "anytime",
        "nearest opposite-predicted training point (distance upper bound)",
    ))
    return PortfolioResult(
        answer=answer,
        method="nearest-training-anytime",
        budget_s=budget,
        elapsed_s=perf_counter() - start,
        exact=False,
        attempts=tuple(attempts),
    )


def _anytime_counterfactual(
    dataset: Dataset, k: int, metric, x: np.ndarray, engine: QueryEngine
):
    """Nearest training point classified unlike ``x`` — a polynomial fallback.

    Any point the classifier itself sends to the other class is a
    counterfactual; among the training points we take the one closest
    to ``x``, so the reported distance is an honest upper bound on the
    optimum (tight whenever the closest counterfactual region contains
    a training point).
    """
    from .counterfactual import CounterfactualResult

    label = engine.classify(x, k)
    expanded = dataset.expanded()
    blocks = [p for p in (expanded.positives, expanded.negatives) if p.shape[0]]
    points = np.vstack(blocks)
    flipped = np.flatnonzero(engine.classify_batch(points, k) != label)
    if flipped.size == 0:
        # One-class predictions everywhere: no counterfactual exists
        # among training points (matches the exact solvers on constant f).
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label,
            method="nearest-training-anytime",
        )
    candidates = points[flipped]
    powers = metric.powers_to(candidates, x)  # monotone surrogate of distance
    y = candidates[int(np.argmin(powers))].astype(float)
    distance = float(metric.distance(x, y))
    return CounterfactualResult(
        y=y,
        distance=distance,
        infimum=distance,
        label_from=label,
        method="nearest-training-anytime",
    )


__all__ = [
    "MSR_PORTFOLIO",
    "CF_PORTFOLIO",
    "PortfolioAttempt",
    "PortfolioResult",
    "portfolio_minimum_sufficient_reason",
    "portfolio_closest_counterfactual",
]
