"""Budgeted solver portfolio over the hard explanation pipelines.

The paper's Table 1 makes Minimum-SR and the Hamming/l1 counterfactual
problems NP-complete, and the repo ships several exact pipelines for
the same instances (SAT, MILP, brute force — Section 9).  No single
pipeline dominates: MILP usually leads on the random workloads, SAT
wins when the optimum is small, brute force wins at tiny dimension.
This module races them:

* every *applicable* method for the instance runs under a
  **per-method wall-clock budget** (``budget`` seconds) — sequentially
  in a fixed order by default, or **concurrently in a process pool**
  (``parallel=True``, via :class:`~repro.solvers.race.ProcessRacer`)
  where the first exact answer cancels the losers cooperatively
  through the shared budget/cancel plumbing, with a hard-kill backstop;
* the first method to finish inside its budget supplies the exact
  answer, stamped with a provenance record (which method won, which
  were cancelled, what the budget was, how long each attempt ran);
* the winner's *witness* is then replaced by the **canonical witness**
  — the lexicographically smallest optimal reason set / flip set,
  exactly what the brute pipeline's enumeration order returns — so the
  portfolio's answer is bit-identical no matter which method won or
  how a parallel race was scheduled (``canonical`` records the rare
  budget-pressed fallback to the winner's own witness);
* if **every** exact method runs out of budget, the portfolio degrades
  to a polynomial *anytime* answer instead of failing: the
  Proposition-2 greedy for Minimum-SR (a genuine, just not necessarily
  minimum, sufficient reason) and the nearest training point of the
  opposite predicted class for counterfactuals (a genuine, just not
  necessarily closest, counterfactual).

A warm :class:`~repro.solvers.sat.pool.SATSolverPool` may be passed so
the SAT sweeps and the canonicalization probes reuse one incremental
solver per (dataset version, label) across related queries —
mutations must invalidate by fingerprint exactly like result caches
(the serve layer wires this up automatically).

Budgets are enforced cooperatively through the ``time_limit`` plumbing
of the underlying solvers (SAT conflict loop, HiGHS ``time_limit``,
enumeration batch checks), surfacing as
:class:`~repro.exceptions.ResourceLimitError` — best-effort rather than
preemptive, which keeps the racer deterministic and dependency-free.
Every attempt's budget starts when the attempt does (in its own worker
for parallel races), so a cancelled or timed-out attempt never burns
the next attempt's budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ._validation import as_vector, check_odd_k
from .exceptions import (
    ResourceLimitError,
    UnsupportedSettingError,
    ValidationError,
)
from .knn import Dataset, QueryEngine
from .knn.engine import as_engine
from .metrics import get_metric
from .solvers.sat.pool import SATSolverPool

#: exact Minimum-SR methods raced on the discrete k = 1 cell, in order.
MSR_PORTFOLIO = ("milp", "sat", "brute")

#: exact closest-counterfactual methods raced per metric, in order.
CF_PORTFOLIO = {
    "hamming": ("hamming-milp", "hamming-sat", "hamming-brute"),
    "l1": ("l1-milp",),
    "l2": ("l2-qp",),
}

#: exception types a race worker may report for an "unsupported" attempt.
_UNSUPPORTED_TYPES = {
    "UnsupportedSettingError": UnsupportedSettingError,
    "ValidationError": ValidationError,
}


@dataclass(frozen=True)
class PortfolioAttempt:
    """One raced method: what ran, for how long, and how it ended."""

    method: str
    budget_s: float | None
    elapsed_s: float
    status: str  # "exact" | "timeout" | "cancelled" | "unsupported" | "error" | "anytime"
    detail: str = ""


@dataclass(frozen=True)
class PortfolioResult:
    """The winning answer plus the race's provenance record.

    ``answer`` is the underlying pipeline's result object
    (:class:`~repro.abductive.MinimumSRResult` or
    :class:`~repro.counterfactual.CounterfactualResult`); ``exact`` is
    False only when every exact method timed out and the anytime
    fallback supplied the answer.  ``mode`` records whether the
    attempts raced sequentially or in the process pool; ``canonical``
    whether the witness is the canonical (lex-min) one — it is False
    only for anytime answers and for exact answers whose
    canonicalization was cut short by budget pressure.
    """

    answer: object
    method: str
    budget_s: float | None
    elapsed_s: float
    exact: bool
    attempts: tuple[PortfolioAttempt, ...]
    mode: str = "sequential"
    canonical: bool = False


def _pool_fingerprint(
    dataset: Dataset, solver_pool: SATSolverPool | None, fingerprint: str | None
) -> str | None:
    """The pool key fingerprint: caller-supplied, else content-addressed.

    A shared pool must never mix datasets under one key, so when the
    caller passes a pool without a fingerprint we fall back to the
    exact content hash (the serve layer passes its versioned ``@vN``
    fingerprints instead, which is what makes mutation-driven pool
    invalidation line up with result-cache invalidation).
    """
    if solver_pool is None or fingerprint is not None:
        return fingerprint
    from .serve.cache import dataset_fingerprint  # local: avoids an import cycle

    return dataset_fingerprint(dataset)


def _canonical_msr(
    result,
    dataset: Dataset,
    k: int,
    metric,
    x: np.ndarray,
    engine: QueryEngine,
    solver_pool: SATSolverPool | None,
    fingerprint: str | None,
    budget: float | None,
):
    """Replace an exact Minimum-SR winner's witness by the canonical one.

    Returns ``(result, canonical)``.  Brute answers are canonical by
    construction (size-ascending lexicographic enumeration); the MILP
    and SAT winners are re-anchored by the lex-leader extraction, which
    agrees with brute bit-for-bit.  Budget pressure keeps the winner's
    own witness and reports ``canonical=False``.
    """
    from .abductive.minimum import MinimumSRResult, minimum_sr_canonical_witness

    if metric.name != "hamming" or k != 1 or result.method == "brute":
        return result, True
    try:
        X = minimum_sr_canonical_witness(
            dataset,
            x,
            engine,
            result.size,
            solver_pool=solver_pool,
            fingerprint=fingerprint,
            time_limit=budget,
        )
    except ResourceLimitError:
        return result, False
    return MinimumSRResult(X=X, size=result.size, method=result.method), True


def _canonical_cf(
    result,
    dataset: Dataset,
    k: int,
    metric,
    x: np.ndarray,
    engine: QueryEngine,
    solver_pool: SATSolverPool | None,
    fingerprint: str | None,
    budget: float | None,
):
    """Replace an exact counterfactual winner's point by the canonical one.

    Returns ``(result, canonical)``.  Non-Hamming cells have a single
    deterministic member; Hamming brute is canonical by construction.
    For k = 1 the lex-min flip set comes from the SAT extraction; for
    k >= 3 (no SAT member) from a brute re-enumeration capped at the
    known optimal distance — if that enumeration is too large or the
    budget runs out, the winner's own point stands with
    ``canonical=False``.
    """
    from .counterfactual import CounterfactualResult
    from .counterfactual.brute import closest_counterfactual_hamming_brute
    from .counterfactual.hamming_sat import counterfactual_canonical_witness

    if metric.name != "hamming" or result.y is None or result.method == "hamming-brute":
        return result, True
    if k == 1:
        try:
            y = counterfactual_canonical_witness(
                dataset,
                x,
                result.distance,
                solver_pool=solver_pool,
                fingerprint=fingerprint,
                query_engine=engine,
                time_limit=budget,
            )
        except ResourceLimitError:
            return result, False
    else:
        try:
            redo = closest_counterfactual_hamming_brute(
                dataset,
                k,
                x,
                max_distance=int(result.distance),
                query_engine=engine,
                time_limit=budget,
            )
        except (ResourceLimitError, ValidationError):
            return result, False
        if redo.y is None:  # pragma: no cover - the winner's y witnesses feasibility
            return result, False
        y = redo.y
    canonical = CounterfactualResult(
        y=y,
        distance=result.distance,
        infimum=result.infimum,
        label_from=result.label_from,
        method=result.method,
    )
    return canonical, True


def _race_parallel(
    kind: str,
    dataset: Dataset,
    k: int,
    metric,
    x: np.ndarray,
    methods: tuple[str, ...],
    budget: float | None,
    stagger: dict[str, float] | None,
    racer,
    extra: dict | None,
):
    """Run the process race; returns the outcome or None to go sequential."""
    from .solvers.race import default_racer

    racer = racer if racer is not None else default_racer()
    return racer.race(
        kind,
        dataset,
        k,
        metric.name,
        x,
        tuple(methods),
        budget=budget,
        stagger=stagger,
        extra=extra,
    )


def _attempts_from_race(outcome, budget: float | None) -> list[PortfolioAttempt]:
    """Convert race attempts to provenance records, winner last."""
    records = [
        PortfolioAttempt(a.method, budget, a.elapsed_s, a.status, a.detail)
        for a in outcome.attempts
    ]
    if outcome.winner is not None:
        records.sort(key=lambda a: a.status == "exact")
    return records


def _raise_race_failure(outcome, methods: tuple[str, ...]) -> None:
    """Re-raise all-inapplicable or worker-error races like the sequential path."""
    by_status = {a.status for a in outcome.attempts}
    if by_status <= {"unsupported"}:
        last = next(a for a in reversed(outcome.attempts) if a.status == "unsupported")
        raise _UNSUPPORTED_TYPES.get(last.exc_type, UnsupportedSettingError)(last.detail)
    if "timeout" not in by_status and "cancelled" not in by_status and "error" in by_status:
        bad = next(a for a in outcome.attempts if a.status == "error")
        raise RuntimeError(f"race worker failed on {bad.method}: {bad.detail}")


def portfolio_minimum_sufficient_reason(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    budget: float | None = None,
    methods: tuple[str, ...] | None = None,
    engine: QueryEngine | None = None,
    max_brute_dimension: int = 18,
    restarts: int = 8,
    seed: int | None = 0,
    parallel: bool = False,
    racer=None,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    stagger: dict[str, float] | None = None,
) -> PortfolioResult:
    """Race the exact Minimum-SR pipelines under per-method budgets.

    ``methods`` defaults to every pipeline applicable to the instance's
    (metric, k) cell; ``budget`` is seconds *per method* (None = no
    cap).  ``parallel=True`` races the methods concurrently in the
    process pool (``racer`` or the shared default); ``stagger`` adds
    artificial per-method start delays (the determinism harness forces
    arbitrary winners with it).  ``solver_pool`` warms the SAT sweeps
    and canonicalization across related queries; ``fingerprint``
    identifies the dataset version in that pool (content hash when
    omitted).  On all-timeout the Proposition-2 greedy (``restarts``
    shuffled orders) provides the anytime answer.  Exact answers carry
    the canonical lex-min witness, so they are bit-identical across
    modes, method subsets and race schedules.
    """
    from .abductive.minimum import (
        minimum_sat_hamming_k1_pooled,
        minimum_sufficient_reason,
    )

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    engine = as_engine(dataset, metric, engine)
    if methods is None:
        methods = (
            MSR_PORTFOLIO if (metric.name == "hamming" and k == 1) else ("brute",)
        )
    fingerprint = _pool_fingerprint(dataset, solver_pool, fingerprint)
    start = perf_counter()
    attempts: list[PortfolioAttempt] = []
    last_unsupported: Exception | None = None
    mode = "sequential"
    if parallel and not (budget is not None and budget <= 0):
        outcome = _race_parallel(
            "msr", dataset, k, metric, xv, methods, budget, stagger, racer,
            {"max_brute_dimension": max_brute_dimension},
        )
        if outcome is not None:
            mode = "parallel"
            attempts = _attempts_from_race(outcome, budget)
            if outcome.winner is not None:
                answer, canonical = _canonical_msr(
                    outcome.winner.answer, dataset, k, metric, xv, engine,
                    solver_pool, fingerprint, budget,
                )
                return PortfolioResult(
                    answer=answer,
                    method=answer.method,
                    budget_s=budget,
                    elapsed_s=perf_counter() - start,
                    exact=True,
                    attempts=tuple(attempts),
                    mode=mode,
                    canonical=canonical,
                )
            _raise_race_failure(outcome, methods)
            return _msr_anytime(
                dataset, k, metric, xv, engine, budget, restarts, seed,
                attempts, start, mode,
            )
    for method in methods:
        if budget is not None and budget <= 0:
            attempts.append(PortfolioAttempt(
                method, budget, 0.0, "timeout", "per-method budget is zero"
            ))
            continue
        t0 = perf_counter()
        try:
            if method == "sat" and solver_pool is not None and (
                metric.name == "hamming" and k == 1
            ):
                result = minimum_sat_hamming_k1_pooled(
                    dataset, xv, engine,
                    solver_pool=solver_pool, fingerprint=fingerprint,
                    time_limit=budget,
                )
            else:
                result = minimum_sufficient_reason(
                    dataset, k, metric, xv,
                    method=method, engine=engine, time_limit=budget,
                    max_brute_dimension=max_brute_dimension,
                )
        except ResourceLimitError as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "timeout", str(exc)
            ))
            continue
        except (UnsupportedSettingError, ValidationError) as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "unsupported", str(exc)
            ))
            last_unsupported = exc
            continue
        attempts.append(PortfolioAttempt(method, budget, perf_counter() - t0, "exact"))
        answer, canonical = _canonical_msr(
            result, dataset, k, metric, xv, engine, solver_pool, fingerprint, budget
        )
        return PortfolioResult(
            answer=answer,
            method=answer.method,
            budget_s=budget,
            elapsed_s=perf_counter() - start,
            exact=True,
            attempts=tuple(attempts),
            mode=mode,
            canonical=canonical,
        )
    if last_unsupported is not None and not any(
        a.status in ("timeout", "cancelled") for a in attempts
    ):
        # Nothing timed out — every member was inapplicable.  That is an
        # input problem, not budget pressure, so fail like the
        # single-method entry points instead of degrading silently.
        raise last_unsupported
    return _msr_anytime(
        dataset, k, metric, xv, engine, budget, restarts, seed, attempts, start, mode
    )


def _msr_anytime(
    dataset, k, metric, xv, engine, budget, restarts, seed, attempts, start, mode
) -> PortfolioResult:
    """The Proposition-2 greedy degradation shared by both race modes."""
    from .abductive.approximate import approximate_minimum_sufficient_reason
    from .abductive.minimum import MinimumSRResult

    t0 = perf_counter()
    approx = approximate_minimum_sufficient_reason(
        dataset, k, metric, xv, engine=engine, restarts=restarts, seed=seed
    )
    answer = MinimumSRResult(X=approx.X, size=approx.size, method="greedy-anytime")
    attempts = list(attempts)
    attempts.append(PortfolioAttempt(
        "greedy-anytime", None, perf_counter() - t0, "anytime",
        f"upper bound after {approx.restarts_used} greedy restarts",
    ))
    return PortfolioResult(
        answer=answer,
        method="greedy-anytime",
        budget_s=budget,
        elapsed_s=perf_counter() - start,
        exact=False,
        attempts=tuple(attempts),
        mode=mode,
        canonical=False,
    )


def portfolio_closest_counterfactual(
    dataset: Dataset,
    k: int,
    metric,
    x,
    *,
    budget: float | None = None,
    methods: tuple[str, ...] | None = None,
    query_engine: QueryEngine | None = None,
    parallel: bool = False,
    racer=None,
    solver_pool: SATSolverPool | None = None,
    fingerprint: str | None = None,
    stagger: dict[str, float] | None = None,
) -> PortfolioResult:
    """Race the exact closest-counterfactual pipelines under budgets.

    Applicable methods come from :data:`CF_PORTFOLIO` keyed by the
    metric.  ``parallel``, ``racer``, ``solver_pool``, ``fingerprint``
    and ``stagger`` behave exactly as in
    :func:`portfolio_minimum_sufficient_reason`; exact answers carry
    the canonical lex-min flip set.  On all-timeout the anytime
    fallback returns the nearest *training* point whose prediction
    differs from ``f(x)`` — a genuine counterfactual whose distance
    upper-bounds the optimum.
    """
    from .counterfactual import closest_counterfactual
    from .counterfactual.hamming_sat import closest_counterfactual_hamming_sat_pooled

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    if xv.shape[0] != dataset.dimension:
        raise ValidationError(
            f"x has dimension {xv.shape[0]}, dataset has {dataset.dimension}"
        )
    engine = as_engine(dataset, metric, query_engine)
    if methods is None:
        methods = CF_PORTFOLIO.get(metric.name)
        if methods is None:
            raise UnsupportedSettingError(
                f"no portfolio members for metric {metric.name!r}; pass methods="
            )
    fingerprint = _pool_fingerprint(dataset, solver_pool, fingerprint)
    start = perf_counter()
    attempts: list[PortfolioAttempt] = []
    last_unsupported: Exception | None = None
    mode = "sequential"
    if parallel and not (budget is not None and budget <= 0):
        outcome = _race_parallel(
            "cf", dataset, k, metric, xv, methods, budget, stagger, racer, None
        )
        if outcome is not None:
            mode = "parallel"
            attempts = _attempts_from_race(outcome, budget)
            if outcome.winner is not None:
                answer, canonical = _canonical_cf(
                    outcome.winner.answer, dataset, k, metric, xv, engine,
                    solver_pool, fingerprint, budget,
                )
                return PortfolioResult(
                    answer=answer,
                    method=answer.method,
                    budget_s=budget,
                    elapsed_s=perf_counter() - start,
                    exact=True,
                    attempts=tuple(attempts),
                    mode=mode,
                    canonical=canonical,
                )
            _raise_race_failure(outcome, methods)
            return _cf_anytime(dataset, k, metric, xv, engine, budget, attempts, start, mode)
    for method in methods:
        if budget is not None and budget <= 0:
            attempts.append(PortfolioAttempt(
                method, budget, 0.0, "timeout", "per-method budget is zero"
            ))
            continue
        t0 = perf_counter()
        try:
            if method == "hamming-sat" and solver_pool is not None and k == 1:
                result = closest_counterfactual_hamming_sat_pooled(
                    dataset, k, xv,
                    solver_pool=solver_pool, fingerprint=fingerprint,
                    query_engine=engine, time_limit=budget,
                )
            else:
                result = closest_counterfactual(
                    dataset, k, metric, xv,
                    method=method, query_engine=engine, time_limit=budget,
                )
        except ResourceLimitError as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "timeout", str(exc)
            ))
            continue
        except (UnsupportedSettingError, ValidationError) as exc:
            attempts.append(PortfolioAttempt(
                method, budget, perf_counter() - t0, "unsupported", str(exc)
            ))
            last_unsupported = exc
            continue
        attempts.append(PortfolioAttempt(method, budget, perf_counter() - t0, "exact"))
        answer, canonical = _canonical_cf(
            result, dataset, k, metric, xv, engine, solver_pool, fingerprint, budget
        )
        return PortfolioResult(
            answer=answer,
            method=answer.method,
            budget_s=budget,
            elapsed_s=perf_counter() - start,
            exact=True,
            attempts=tuple(attempts),
            mode=mode,
            canonical=canonical,
        )
    if last_unsupported is not None and not any(
        a.status in ("timeout", "cancelled") for a in attempts
    ):
        raise last_unsupported  # all members inapplicable: an input problem
    return _cf_anytime(dataset, k, metric, xv, engine, budget, attempts, start, mode)


def _cf_anytime(
    dataset, k, metric, xv, engine, budget, attempts, start, mode
) -> PortfolioResult:
    """The nearest-training degradation shared by both race modes."""
    t0 = perf_counter()
    answer = _anytime_counterfactual(dataset, k, metric, xv, engine)
    attempts = list(attempts)
    attempts.append(PortfolioAttempt(
        "nearest-training-anytime", None, perf_counter() - t0, "anytime",
        "nearest opposite-predicted training point (distance upper bound)",
    ))
    return PortfolioResult(
        answer=answer,
        method="nearest-training-anytime",
        budget_s=budget,
        elapsed_s=perf_counter() - start,
        exact=False,
        attempts=tuple(attempts),
        mode=mode,
        canonical=False,
    )


def _anytime_counterfactual(
    dataset: Dataset, k: int, metric, x: np.ndarray, engine: QueryEngine
):
    """Nearest training point classified unlike ``x`` — a polynomial fallback.

    Any point the classifier itself sends to the other class is a
    counterfactual; among the training points we take the one closest
    to ``x``, so the reported distance is an honest upper bound on the
    optimum (tight whenever the closest counterfactual region contains
    a training point).
    """
    from .counterfactual import CounterfactualResult

    label = engine.classify(x, k)
    expanded = dataset.expanded()
    blocks = [p for p in (expanded.positives, expanded.negatives) if p.shape[0]]
    points = np.vstack(blocks)
    flipped = np.flatnonzero(engine.classify_batch(points, k) != label)
    if flipped.size == 0:
        # One-class predictions everywhere: no counterfactual exists
        # among training points (matches the exact solvers on constant f).
        return CounterfactualResult(
            y=None, distance=np.inf, infimum=np.inf, label_from=label,
            method="nearest-training-anytime",
        )
    candidates = points[flipped]
    powers = metric.powers_to(candidates, x)  # monotone surrogate of distance
    y = candidates[int(np.argmin(powers))].astype(float)
    distance = float(metric.distance(x, y))
    return CounterfactualResult(
        y=y,
        distance=distance,
        infimum=distance,
        label_from=label,
        method="nearest-training-anytime",
    )


__all__ = [
    "MSR_PORTFOLIO",
    "CF_PORTFOLIO",
    "PortfolioAttempt",
    "PortfolioResult",
    "portfolio_minimum_sufficient_reason",
    "portfolio_closest_counterfactual",
]
