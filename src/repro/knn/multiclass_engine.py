"""Batched multiclass queries over one shared index — no per-class copies.

The paper's final-remarks reduction explains label ``l`` on the binary
problem "class ``l`` vs everything else".  Running it naively costs one
engine (and one index) *per class*; :class:`MultiClassEngine` instead
generalizes the binary :class:`~repro.knn.engine.QueryEngine` layout to
``C`` classes over **shared** storage:

* ``dense``/``bitpack`` keep one *joint* row store (one BLAS/popcount
  kernel pass per query block) with a per-class column map — exactly
  the binary engine's two-column-map scheme with ``C`` maps;
* ``kdtree``/``ivf`` keep one index per class — a *partition* of the
  rows, the same total index mass as the binary engine's two per-class
  indexes.

Per-class one-vs-rest radii come out exactly without a merged index:
for each class the engine extracts the ``need`` smallest surrogate
powers (``need = (k+1)/2``, multiplicities counted) as a "top-need"
block; class ``c``'s own radius is that block's last column, and the
rest-radius is the ``need``-th order statistic of the *union* of every
other class's block — a value-exact identity, because the union's
``need`` smallest elements all lie inside per-class top-need sets.
The differential suite (``tests/test_multiclass_parity.py``) pins the
results bit-identical to freshly merged binary engines per backend.

Classification semantics (the documented contract):

* ``k = 1`` — nearest class by per-class radius, distance ties broken
  toward ``favor`` when given and tied, else toward the smallest label
  (identical to :class:`~repro.knn.multiclass.MultiClass1NN` and to the
  merge reduction);
* ``k >= 3`` — a vote among the ``k`` nearest points (selection ties
  broken by canonical expanded order: classes ascending, rows in
  insertion order), ``vote="uniform"`` counting points and
  ``vote="distance"`` weighing each by its inverse true distance
  (exact hits dominate).  The one-vs-rest optimistic rule is *not* a
  total classifier for ``k >= 3`` — three mutually interleaved classes
  can each fail "my radius <= rest radius" — which is why the merge
  trick (and the solver pipeline built on it) is a ``k = 1`` contract
  while voting serves ``k >= 3``.

Streaming mutation mirrors the binary engine: the canonical per-class
add/remove semantics of :meth:`MultiClassDataset.with_added
<repro.knn.multiclass_data.MultiClassDataset.with_added>` applied
incrementally (joint-store appends, bitpack tombstoning + compaction,
KD-tree overlays, IVF add/remove), with :attr:`version` bumps and a
lazily rebuilt dataset snapshot.  Merged binary engines for the solver
pipeline are materialized lazily per label and dropped wholesale on
every mutation — an incrementally mutated merged view would scramble
the canonical negative order that tie-dependent witnesses observe.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_vector, check_multiplicities, check_odd_k
from ..exceptions import ValidationError
from ..metrics import HammingMetric, LpMetric, Metric, default_metric_name, get_metric
from ..metrics.hamming import is_binary
from ..neighbors.brute import GrowableMatrix
from .engine import (
    _BITPACK_COMPACT_FRACTION,
    _BLOCK_ELEMENTS,
    _KDTREE_AUTO_MAX_DIM,
    _KDTREE_AUTO_MIN_POINTS,
    BACKENDS,
    QueryEngine,
    _kth_smallest_with_multiplicity,
    _vote_weights,
)
from .dataset import Dataset
from .multiclass_data import MultiClassDataset, _check_labels

#: vote modes of :meth:`MultiClassEngine.classify_batch` (and the binary
#: :meth:`QueryEngine.classify_batch <repro.knn.engine.QueryEngine.classify_batch>`).
VOTES = ("uniform", "distance")


def _top_need_batch(
    values: np.ndarray, multiplicities: np.ndarray, need: int, *, plain: bool
) -> np.ndarray:
    """Row-wise ``need`` smallest elements (with multiplicities), ascending.

    Returns a ``(q, need)`` matrix whose column ``j`` is the ``(j+1)``-th
    order statistic of each row of *values* expanded per multiplicity,
    ``+inf``-padded when fewer than ``need`` elements exist — the
    per-class block :class:`MultiClassEngine` combines into exact
    one-vs-rest radii.  *plain* marks the multiplicity-free case where a
    partial sort suffices.
    """
    q = values.shape[0]
    total = int(multiplicities.sum())
    out = np.full((q, need), np.inf)
    if values.shape[1] == 0 or total == 0:
        return out
    if plain:
        take = min(need, values.shape[1])
        part = np.partition(values, take - 1, axis=1)[:, :take]
        out[:, :take] = np.sort(part, axis=1)
        return out
    order = np.argsort(values, axis=1, kind="stable")
    running = np.cumsum(multiplicities[order], axis=1)
    sorted_vals = np.take_along_axis(values, order, axis=1)
    rows = np.arange(q)
    for j in range(1, min(need, total) + 1):
        first = np.argmax(running >= j, axis=1)
        out[:, j - 1] = sorted_vals[rows, first]
    return out


class MultiClassEngine:
    """Vectorized multiclass queries over ``(MultiClassDataset, metric)``.

    Parameters
    ----------
    dataset:
        the labeled examples — the *initial* contents; :meth:`add_points`
        / :meth:`remove_points` mutate the engine in place afterwards
        (:attr:`dataset` always reflects the current contents).
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default from
        :func:`~repro.metrics.default_metric_name`).
    cache_size:
        LRU budget handed to the lazily materialized merged binary
        engines (:meth:`merged_engine`).
    backend:
        same strategies and constraints as the binary engine:
        ``"auto"`` | ``"dense"`` | ``"kdtree"`` | ``"bitpack"`` |
        ``"ivf"``.
    """

    def __init__(
        self,
        dataset: MultiClassDataset,
        metric=None,
        *,
        cache_size: int = 1024,
        backend: str = "auto",
    ):
        if not isinstance(dataset, MultiClassDataset):
            raise ValidationError("dataset must be a repro.knn.MultiClassDataset")
        if metric is None:
            metric = default_metric_name(dataset.discrete)
        self.metric: Metric = get_metric(metric)
        self._dim = dataset.dimension
        self._discrete = dataset.discrete
        self._classes: tuple[int, ...] = dataset.classes
        self._stores: dict[int, GrowableMatrix] = {}
        self._mult_stores: dict[int, GrowableMatrix] = {}
        self._lookups: dict[int, dict[bytes, int]] = {}
        for c in self._classes:
            self._stores[c] = GrowableMatrix(
                np.ascontiguousarray(dataset.class_points(c), dtype=np.float64)
            )
            self._mult_stores[c] = GrowableMatrix(
                np.asarray(dataset.class_multiplicities(c), dtype=np.int64)
            )
            self._lookups[c] = self._build_lookup(self._stores[c].view)
        self._refresh_views()
        self._cache_size = max(0, int(cache_size))
        self.version = 0
        self._snapshot: MultiClassDataset | None = dataset
        self._requested_backend = backend
        self.backend = self._resolve_backend(backend)
        # One joint row store in canonical class order; per-class column
        # maps recover each class's block from the single kernel pass.
        self._dense_store = GrowableMatrix(
            np.vstack([self._stores[c].view for c in self._classes])
        )
        self._cols: dict[int, np.ndarray] = {}
        start = 0
        for c in self._classes:
            m = self._stores[c].view.shape[0]
            self._cols[c] = np.arange(start, start + m, dtype=np.int64)
            start += m
        self._bit_index = None
        self._bit_cols: dict[int, np.ndarray] = {}
        self._trees: dict[int, object] = {}
        self._ivfs: dict[int, object] = {}
        self._merged_cache: dict[int, QueryEngine] = {}
        self._build_index_layer()

    #: row bytes → row index, last duplicate wins — the ONE definition
    #: (Dataset's) shared with the functional folds, because the tie rule
    #: is load-bearing for the engine ≡ fold parity the fuzz harness pins.
    _build_lookup = staticmethod(Dataset._row_lookup)

    # -- internal views ---------------------------------------------------

    def _refresh_views(self) -> None:
        """Re-derive per-class totals and plain-multiplicity flags."""
        self._plain = {
            c: bool(np.all(self._mult_stores[c].view == 1)) for c in self._classes
        }
        self._total = int(
            sum(int(self._mult_stores[c].view.sum()) for c in self._classes)
        )

    @property
    def classes(self) -> tuple[int, ...]:
        """The current distinct labels, ascending (canonical class order)."""
        return self._classes

    @property
    def dataset(self) -> MultiClassDataset:
        """The engine's current contents as an immutable MultiClassDataset.

        Materialized lazily after a mutation and cached until the next
        one, like the binary engine's snapshot.
        """
        if self._snapshot is None:
            points = np.vstack([np.array(self._stores[c].view) for c in self._classes])
            labels = np.concatenate(
                [
                    np.full(self._stores[c].view.shape[0], c, dtype=np.int64)
                    for c in self._classes
                ]
            )
            mults = np.concatenate(
                [np.array(self._mult_stores[c].view) for c in self._classes]
            )
            self._snapshot = MultiClassDataset(
                points, labels, multiplicities=mults, discrete=self._discrete
            )
        return self._snapshot

    # -- backend selection ----------------------------------------------

    def _data_is_binary(self) -> bool:
        """Whether every current point is strictly 0/1."""
        return all(is_binary(self._stores[c].view) for c in self._classes)

    def _resolve_backend(self, backend: str) -> str:
        """Validate/auto-pick the backend (same rules as the binary engine)."""
        if backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {'|'.join(BACKENDS)}, got {backend!r}"
            )
        if backend == "bitpack":
            from ..neighbors.bitpack import HAVE_BITWISE_COUNT

            if not isinstance(self.metric, HammingMetric):
                raise ValidationError(
                    f"backend='bitpack' requires the Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            if not self._data_is_binary():
                raise ValidationError(
                    "backend='bitpack' requires strictly binary (0/1) data"
                )
            if not HAVE_BITWISE_COUNT:  # pragma: no cover - numpy >= 2 in CI
                raise ValidationError(
                    "backend='bitpack' requires numpy >= 2.0 (np.bitwise_count)"
                )
            return backend
        if backend in ("kdtree", "ivf"):
            if not isinstance(self.metric, (LpMetric, HammingMetric)):
                raise ValidationError(
                    f"backend={backend!r} requires an lp or Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            return backend
        if backend == "auto":
            return self._auto_backend()
        return backend

    def _auto_backend(self) -> str:
        """The binary engine's auto rule over the multiclass totals."""
        from ..neighbors.bitpack import HAVE_BITWISE_COUNT

        if (
            HAVE_BITWISE_COUNT
            and isinstance(self.metric, HammingMetric)
            and self._data_is_binary()
        ):
            return "bitpack"
        if (
            isinstance(self.metric, LpMetric)
            and self._dim <= _KDTREE_AUTO_MAX_DIM
            and self._total >= _KDTREE_AUTO_MIN_POINTS
        ):
            return "kdtree"
        return "dense"

    def _build_index_layer(self) -> None:
        """Materialize the selected backend's index structures."""
        if self.backend == "bitpack":
            from ..neighbors.bitpack import BitPackedHammingIndex

            self._bit_index = BitPackedHammingIndex(
                np.vstack([self._stores[c].view for c in self._classes]), self.metric
            )
            start = 0
            for c in self._classes:
                m = self._stores[c].view.shape[0]
                self._bit_cols[c] = np.arange(start, start + m, dtype=np.int64)
                start += m
        elif self.backend == "kdtree":
            from ..neighbors.kdtree import LazyKDTree

            for c in self._classes:
                rows = np.repeat(
                    self._stores[c].view, self._mult_stores[c].view, axis=0
                )
                self._trees[c] = LazyKDTree(rows, self.metric)
        elif self.backend == "ivf":
            self._ensure_ivf()

    def _ensure_ivf(self) -> None:
        """Build the per-class IVF indexes that are missing."""
        from ..neighbors.ivf import IVFIndex

        for c in self._classes:
            if c not in self._ivfs and self._stores[c].view.shape[0]:
                rows = np.repeat(
                    self._stores[c].view, self._mult_stores[c].view, axis=0
                )
                self._ivfs[c] = IVFIndex(rows, self.metric)

    def _degrade_bitpack_to_dense(self) -> None:
        """Drop the packed index when the data outgrows it (auto backend)."""
        self._bit_index = None
        self._bit_cols = {}
        self.backend = "dense"

    # -- streaming mutation ----------------------------------------------

    def check_mutation(self, points, labels, multiplicities=None, *, op: str = "add"):
        """Validate a mutation batch **without applying it**.

        Raises exactly when the matching :meth:`add_points` /
        :meth:`remove_points` call would — the serve layer pre-validates
        against every engine of a lineage before mutating any of them.
        Returns the normalized ``(points, labels, multiplicities)``.
        """
        pts = as_matrix(points, name="points", dimension=self._dim)
        if pts.shape[0] == 0:
            raise ValidationError("a mutation batch must contain at least one point")
        lab = _check_labels(labels, pts.shape[0])
        mult = check_multiplicities(multiplicities, pts.shape[0], name="multiplicities")
        if self._discrete and not is_binary(pts):
            raise ValidationError(
                "points must contain only 0/1 entries for the discrete setting"
            )
        pts = np.ascontiguousarray(pts)
        if op == "add":
            if (
                self._bit_index is not None
                and self._requested_backend != "auto"
                and not is_binary(pts)
            ):
                raise ValidationError(
                    "backend='bitpack' requires strictly binary (0/1) points; "
                    "rebuild the engine with backend='dense' for general data"
                )
        elif op == "remove":
            self._validate_removal(pts, lab, mult)
        else:
            raise ValidationError(f"op must be 'add' or 'remove', got {op!r}")
        return pts, lab, mult

    def _validate_removal(self, pts, lab, mult) -> dict[tuple[int, int], int]:
        """Check a removal batch is satisfiable; returns per-row totals."""
        requested: dict[tuple[int, int], int] = {}
        for row, m, c in zip(pts, mult, (int(v) for v in lab)):
            idx = self._lookups[c].get(row.tobytes()) if c in self._lookups else None
            if idx is None:
                raise ValidationError(
                    f"cannot remove a point absent from class {c}: {row.tolist()}"
                )
            requested[(c, idx)] = requested.get((c, idx), 0) + int(m)
        removed_per_class: dict[int, int] = {}
        for (c, idx), m in requested.items():
            have = int(self._mult_stores[c].view[idx])
            if have < m:
                raise ValidationError(
                    f"cannot remove {m} cop(ies) of a point with "
                    f"multiplicity {have} in class {c}"
                )
            removed_per_class[c] = removed_per_class.get(c, 0) + m
        survivors = sum(
            1
            for c in self._classes
            if int(self._mult_stores[c].view.sum()) - removed_per_class.get(c, 0) > 0
        )
        if survivors < 2:
            raise ValidationError(
                "a multiclass dataset needs at least two distinct labels"
            )
        return requested

    def _new_class_state(self, c: int) -> None:
        """Initialize empty per-class state for a label seen for the first time."""
        self._stores[c] = GrowableMatrix(np.empty((0, self._dim)))
        self._mult_stores[c] = GrowableMatrix(np.empty(0, dtype=np.int64))
        self._lookups[c] = {}
        self._cols[c] = np.empty(0, dtype=np.int64)
        if self._bit_index is not None:
            self._bit_cols[c] = np.empty(0, dtype=np.int64)
        if self.backend == "kdtree":
            from ..neighbors.kdtree import LazyKDTree

            self._trees[c] = LazyKDTree(np.empty((0, self._dim)), self.metric)
        self._classes = tuple(sorted([*self._classes, c]))

    def add_points(self, points, labels, multiplicities=None) -> int:
        """Insert labeled points in place; returns the new :attr:`version`.

        The canonical per-class streaming semantics of
        :meth:`MultiClassDataset.with_added
        <repro.knn.multiclass_data.MultiClassDataset.with_added>` applied
        incrementally: present points gain multiplicity, new points
        append at the end of their class, a previously unseen label
        starts a new class.  A mutated engine is bit-identical to one
        freshly built from :attr:`dataset` (the fuzz harness pins this
        per backend).
        """
        pts, lab, mult = self.check_mutation(points, labels, multiplicities, op="add")
        if self._bit_index is not None and not is_binary(pts):
            self._degrade_bitpack_to_dense()
        appended: dict[int, list[int]] = {}
        for row, m, c in zip(pts, mult, (int(v) for v in lab)):
            if c not in self._stores:
                self._new_class_state(c)
            store = self._stores[c]
            mult_store = self._mult_stores[c]
            lookup = self._lookups[c]
            key = row.tobytes()
            idx = lookup.get(key)
            if idx is None:
                idx = len(store)
                store.append(row.reshape(1, -1))
                mult_store.append(np.array([m], dtype=np.int64))
                lookup[key] = idx
                appended.setdefault(c, []).append(idx)
            else:
                mult_store.assign(idx, int(mult_store.view[idx]) + int(m))
            if self.backend == "kdtree":
                self._trees[c].add(row, int(m))
            elif self.backend == "ivf":
                ivf = self._ivfs.get(c)
                if ivf is not None:
                    ivf.add(row, int(m))
        self._refresh_views()
        if self.backend == "ivf":
            # A class that was empty until this batch gets its index now.
            self._ensure_ivf()
        for c, idxs in appended.items():
            rows = self._stores[c].view[idxs]
            start = len(self._dense_store)
            self._dense_store.append(rows)
            slots = np.arange(start, start + rows.shape[0], dtype=np.int64)
            self._cols[c] = np.concatenate([self._cols[c], slots])
            if self._bit_index is not None:
                bit_slots = self._bit_index.append(rows)
                self._bit_cols[c] = np.concatenate([self._bit_cols[c], bit_slots])
        self._merged_cache.clear()
        return self._bump_version()

    def remove_points(self, points, labels, multiplicities=None) -> int:
        """Remove labeled points in place; returns the new :attr:`version`.

        The mirror of :meth:`add_points` with up-front validation (a
        failed call leaves the engine untouched): rows whose multiplicity
        reaches zero are compacted out of the stores, tombstoned in the
        packed index, and overlaid as deletions on the KD-trees; a class
        emptied entirely disappears, and at least two classes must
        survive.
        """
        pts, lab, mult = self.check_mutation(
            points, labels, multiplicities, op="remove"
        )
        requested = self._validate_removal(pts, lab, mult)
        for (c, idx), m in requested.items():
            mult_store = self._mult_stores[c]
            mult_store.assign(idx, int(mult_store.view[idx]) - m)
        if self.backend == "kdtree":
            for row, m, c in zip(pts, mult, (int(v) for v in lab)):
                self._trees[c].remove(row, int(m))
        elif self.backend == "ivf":
            for row, m, c in zip(pts, mult, (int(v) for v in lab)):
                self._ivfs[c].remove(row, int(m))
        dead: dict[int, np.ndarray] = {}
        for c in self._classes:
            dead_idx = np.flatnonzero(self._mult_stores[c].view == 0)
            dead[c] = dead_idx
            if dead_idx.size:
                self._stores[c].delete(dead_idx)
                self._mult_stores[c].delete(dead_idx)
                self._lookups[c] = self._build_lookup(self._stores[c].view)
        dead_cols = np.concatenate([self._cols[c][dead[c]] for c in self._classes])
        if dead_cols.size:
            keep = np.ones(len(self._dense_store), dtype=bool)
            keep[dead_cols] = False
            mapping = np.cumsum(keep, dtype=np.int64) - 1
            self._dense_store.delete(dead_cols)
            for c in self._classes:
                self._cols[c] = mapping[np.delete(self._cols[c], dead[c])]
        if self._bit_index is not None:
            for c in self._classes:
                if dead[c].size:
                    self._bit_index.tombstone(self._bit_cols[c][dead[c]])
                    self._bit_cols[c] = np.delete(self._bit_cols[c], dead[c])
            if self._bit_index.dead_fraction > _BITPACK_COMPACT_FRACTION:
                mapping = self._bit_index.compact()
                for c in self._classes:
                    self._bit_cols[c] = mapping[self._bit_cols[c]]
        emptied = [c for c in self._classes if len(self._stores[c]) == 0]
        for c in emptied:
            del self._stores[c], self._mult_stores[c], self._lookups[c], self._cols[c]
            self._bit_cols.pop(c, None)
            self._trees.pop(c, None)
            self._ivfs.pop(c, None)
        if emptied:
            self._classes = tuple(c for c in self._classes if c in self._stores)
        self._refresh_views()
        self._merged_cache.clear()
        return self._bump_version()

    def _bump_version(self) -> int:
        """Invalidate the dataset snapshot and advance the version counter."""
        self._snapshot = None
        self.version += 1
        return self.version

    # -- merged binary views ---------------------------------------------

    def merged_engine(self, label: int) -> QueryEngine:
        """A binary :class:`QueryEngine` for "label vs rest", built lazily.

        The merged dataset (:meth:`MultiClassDataset.merged
        <repro.knn.multiclass_data.MultiClassDataset.merged>`) is
        materialized inside the engine only when a solver pipeline asks
        for it, cached per label, and dropped wholesale on every
        mutation — rebuilding from the post-mutation snapshot is the only
        way to preserve the canonical negative order that tie-dependent
        witnesses observe.
        """
        c = self._check_class(label)
        engine = self._merged_cache.get(c)
        if engine is None:
            engine = QueryEngine(
                self.dataset.merged(c),
                self.metric,
                cache_size=self._cache_size,
                backend=self._requested_backend,
            )
            self._merged_cache[c] = engine
        return engine

    # -- radii (per-class Proposition 1 generalization) -------------------

    def _class_power_blocks(self, pts_block: np.ndarray) -> dict[int, np.ndarray]:
        """Per-class surrogate blocks from ONE joint kernel pass.

        A single popcount or BLAS call over the joint storage, split by
        the per-class column maps — the ``C``-class generalization of
        the binary engine's two-way split.  Non-binary query rows fall
        back to the dense kernel under bitpack, preserving results.
        """
        if self._bit_index is not None and is_binary(pts_block):
            mat = self._bit_index.counts_matrix(pts_block)
            cols = self._bit_cols
        else:
            mat = self.metric.powers_matrix(pts_block, self._dense_store.view)
            cols = self._cols
        return {
            c: np.ascontiguousarray(mat[:, cols[c]], dtype=np.float64)
            for c in self._classes
        }

    def _top_blocks(self, pts: np.ndarray, need: int) -> dict[int, np.ndarray]:
        """Per-class ``(q, need)`` ascending top-power blocks.

        Dense/bitpack reduce the joint kernel pass per memory-capped
        query block; KD-tree/IVF ask each class index directly (their
        rows are multiplicity-expanded, so order statistics already
        count multiplicities).
        """
        q = pts.shape[0]
        if self.backend == "kdtree":
            return {c: self._trees[c].top_powers_batch(pts, need) for c in self._classes}
        if self.backend == "ivf":
            return {
                c: (
                    self._ivfs[c].top_powers_batch(pts, need)
                    if c in self._ivfs
                    else np.full((q, need), np.inf)
                )
                for c in self._classes
            }
        out = {c: np.empty((q, need)) for c in self._classes}
        cols = max(1, len(self._dense_store))
        rows = max(1, _BLOCK_ELEMENTS // cols)
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            blocks = self._class_power_blocks(pts[block])
            for c in self._classes:
                out[c][block] = _top_need_batch(
                    blocks[c],
                    self._mult_stores[c].view,
                    need,
                    plain=self._plain[c],
                )
        return out

    def class_radii_batch(
        self, points, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-class one-vs-rest radii for every query row.

        Returns ``(R, Rest)``, both ``(q, C)`` with columns in
        :attr:`classes` order: ``R[:, j]`` is class ``j``'s own
        ``need``-th radius and ``Rest[:, j]`` the ``need``-th radius of
        every *other* class merged — exactly the ``(r+, r-)`` the
        binary engine computes on :meth:`MultiClassDataset.merged`, for
        all classes at once from one kernel pass.
        """
        need = self._need(k)
        pts = self._check_queries(points)
        tops = self._top_blocks(pts, need)
        q = pts.shape[0]
        n_classes = len(self._classes)
        radii = np.empty((q, n_classes))
        rest = np.empty((q, n_classes))
        stacked = np.hstack([tops[c] for c in self._classes])
        for j, c in enumerate(self._classes):
            radii[:, j] = tops[c][:, need - 1]
            others = np.delete(stacked, slice(j * need, (j + 1) * need), axis=1)
            rest[:, j] = np.partition(others, need - 1, axis=1)[:, need - 1]
        return radii, rest

    def radii_batch(self, points, k: int, label: int) -> tuple[np.ndarray, np.ndarray]:
        """One-vs-rest ``(r_label, r_rest)`` arrays for one target label."""
        j = self._class_index(label)
        radii, rest = self.class_radii_batch(points, k)
        return radii[:, j], rest[:, j]

    def _class_powers(self, xv: np.ndarray) -> dict[int, np.ndarray]:
        """Per-class surrogate vectors for ONE query via the row-wise kernel.

        Mirrors the binary engine's :meth:`QueryEngine.powers
        <repro.knn.engine.QueryEngine.powers>` split: single-point
        queries use the difference-based kernel, whose boundary geometry
        is exact even on general floats (the Gram batch kernel agrees
        bit for bit on integer-valued data, up to roundoff otherwise).
        """
        return {
            c: self.metric.powers_to(self._stores[c].view, xv)
            for c in self._classes
        }

    def class_radii(self, x, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-class one-vs-rest ``(R, Rest)`` vectors for one query point.

        The single-query counterpart of :meth:`class_radii_batch`,
        served by the exact row-wise kernel (see :meth:`_class_powers`).
        """
        need = self._need(k)
        xv = self._check_query(x)
        powers = self._class_powers(xv)
        mults = {c: self._mult_stores[c].view for c in self._classes}
        n_classes = len(self._classes)
        radii = np.empty(n_classes)
        rest = np.empty(n_classes)
        for j, c in enumerate(self._classes):
            radii[j] = _kth_smallest_with_multiplicity(powers[c], mults[c], need)
            others_p = np.concatenate(
                [powers[o] for o in self._classes if o != c]
            )
            others_m = np.concatenate([mults[o] for o in self._classes if o != c])
            rest[j] = _kth_smallest_with_multiplicity(others_p, others_m, need)
        return radii, rest

    def radii(self, x, k: int, label: int) -> tuple[float, float]:
        """``(r_label, r_rest)`` for one query point."""
        j = self._class_index(label)
        radii, rest = self.class_radii(x, k)
        return float(radii[j]), float(rest[j])

    # -- margins ----------------------------------------------------------

    def class_margins_batch(self, points, k: int) -> np.ndarray:
        """``(q, C)`` signed one-vs-rest margins (``rest − r``) per class.

        Same ``+inf`` conventions as the binary engine: both radii
        infinite yields ``0.0``.
        """
        radii, rest = self.class_radii_batch(points, k)
        with np.errstate(invalid="ignore"):
            margins = rest - radii
        margins[np.isinf(radii) & np.isinf(rest)] = 0.0
        return margins

    def margins_batch(self, points, k: int, label: int) -> np.ndarray:
        """Signed one-vs-rest margin of *label* for every query row."""
        j = self._class_index(label)
        return self.class_margins_batch(points, k)[:, j]

    def margin(self, x, k: int, label: int) -> float:
        """Signed one-vs-rest margin of *label* for one query point."""
        r, rest = self.radii(x, k, label)
        if np.isinf(r) and np.isinf(rest):
            return 0.0
        return float(rest - r)

    # -- classification ----------------------------------------------------

    def classify_batch(
        self, points, k: int, *, favor: int | None = None, vote: str = "uniform"
    ) -> np.ndarray:
        """Predicted labels for every query row.

        ``k = 1`` classifies by nearest class (ties toward *favor* when
        given and tied, else the smallest label — the merge-reduction
        semantics); ``k >= 3`` runs the *vote* mode over the ``k``
        nearest points in canonical expanded order.
        """
        if vote not in VOTES:
            raise ValidationError(
                f"vote must be one of {'|'.join(VOTES)}, got {vote!r}"
            )
        self._need(k)
        pts = self._check_queries(points)
        favor_j = None if favor is None else self._class_index(favor)
        if k == 1:
            radii, _ = self.class_radii_batch(pts, 1)
            return self._nearest_winners(radii, favor_j)
        return self._vote_batch(pts, k, favor_j, vote)

    def classify(
        self, x, k: int = 1, *, favor: int | None = None, vote: str = "uniform"
    ) -> int:
        """Predicted label for one query point (see :meth:`classify_batch`).

        Served by the exact row-wise kernel (:meth:`_class_powers`), so
        distance ties hold exactly on boundary points even for general
        float data — the same single-query guarantee the binary engine
        gives its solver pipelines.
        """
        if vote not in VOTES:
            raise ValidationError(
                f"vote must be one of {'|'.join(VOTES)}, got {vote!r}"
            )
        self._need(k)
        xv = self._check_query(x)
        favor_j = None if favor is None else self._class_index(favor)
        if k == 1:
            radii, _ = self.class_radii(xv, 1)
            return int(self._nearest_winners(radii[None, :], favor_j)[0])
        powers = self._class_powers(xv)
        mults = {c: self._mult_stores[c].view for c in self._classes}
        d = np.concatenate(
            [np.repeat(powers[c], mults[c]) for c in self._classes]
        )
        labels_exp = np.concatenate(
            [
                np.full(int(mults[c].sum()), c, dtype=np.int64)
                for c in self._classes
            ]
        )
        order = np.argsort(d, kind="stable")[:k]
        sel_labels = labels_exp[order]
        if vote == "uniform":
            scores = np.array(
                [(sel_labels == c).sum() for c in self._classes],
                dtype=np.float64,
            )
        else:
            w = _vote_weights(d[order][None, :], self.metric)[0]
            scores = np.array(
                [(w * (sel_labels == c)).sum() for c in self._classes]
            )
        tied = scores >= scores.max()
        if favor_j is not None and tied[favor_j]:
            return int(self._classes[favor_j])
        return int(self._classes[int(np.argmax(tied))])

    def _nearest_winners(self, scores: np.ndarray, favor_j: int | None) -> np.ndarray:
        """Argmin (radii) tie-resolution over a ``(q, C)`` score matrix."""
        best = scores.min(axis=1)
        tied = scores <= best[:, None]
        out = np.asarray(self._classes, dtype=np.int64)[np.argmax(tied, axis=1)]
        if favor_j is not None:
            out[tied[:, favor_j]] = self._classes[favor_j]
        return out

    def _vote_batch(
        self, pts: np.ndarray, k: int, favor_j: int | None, vote: str
    ) -> np.ndarray:
        """The ``k >= 3`` vote over the k nearest expanded points."""
        q = pts.shape[0]
        out = np.empty(q, dtype=np.int64)
        mults = {c: self._mult_stores[c].view for c in self._classes}
        n_expanded = self._total
        class_arr = np.asarray(self._classes, dtype=np.int64)
        labels_exp = np.concatenate(
            [
                np.full(int(mults[c].sum()), c, dtype=np.int64)
                for c in self._classes
            ]
        )
        rows = max(1, _BLOCK_ELEMENTS // max(1, n_expanded))
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            blocks = self._class_power_blocks(pts[block])
            d = np.hstack(
                [np.repeat(blocks[c], mults[c], axis=1) for c in self._classes]
            )
            order = np.argsort(d, axis=1, kind="stable")[:, :k]
            sel_labels = labels_exp[order]
            if vote == "uniform":
                scores = np.stack(
                    [(sel_labels == c).sum(axis=1) for c in self._classes], axis=1
                ).astype(np.float64)
            else:
                sel_powers = np.take_along_axis(d, order, axis=1)
                w = _vote_weights(sel_powers, self.metric)
                scores = np.stack(
                    [(w * (sel_labels == c)).sum(axis=1) for c in self._classes],
                    axis=1,
                )
            best = scores.max(axis=1)
            tied = scores >= best[:, None]
            winners = class_arr[np.argmax(tied, axis=1)]
            if favor_j is not None:
                winners[tied[:, favor_j]] = self._classes[favor_j]
            out[block] = winners
        return out

    # -- neighbors ---------------------------------------------------------

    def neighbors(self, x, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their integer labels.

        Ties at the boundary are broken by canonical expanded index
        (classes ascending, rows in insertion order), matching
        :meth:`MultiClassDataset.all_points`.
        """
        xv = self._check_query(x)
        k = 1 if k is None else int(k)
        d = np.concatenate(
            [
                np.repeat(
                    self.metric.powers_to(self._stores[c].view, xv),
                    self._mult_stores[c].view,
                )
                for c in self._classes
            ]
        )
        points, labels = self.dataset.all_points()
        order = np.argsort(d, kind="stable")[:k]
        return points[order], labels[order]

    # -- cache bookkeeping -------------------------------------------------

    def cache_info(self) -> dict:
        """Cache statistics of the materialized merged binary engines."""
        return {
            "merged_engines": sorted(self._merged_cache),
            "merged": {c: e.cache_info() for c, e in self._merged_cache.items()},
        }

    def cache_clear(self) -> None:
        """Drop the merged-engine cache (they rebuild lazily on demand)."""
        self._merged_cache.clear()

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle without the merged-engine cache or derived flags."""
        state = self.__dict__.copy()
        state["_merged_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._refresh_views()

    # -- validation helpers ------------------------------------------------

    def _check_class(self, label) -> int:
        """Validate *label* against the current classes."""
        c = int(label)
        if c not in self._stores:
            raise ValidationError(f"unknown label {label}")
        return c

    def _class_index(self, label) -> int:
        """Column index of *label* in the canonical class order."""
        return self._classes.index(self._check_class(label))

    def _need(self, k: int) -> int:
        """``(k+1)/2`` after validating k against the dataset size."""
        k = check_odd_k(k)
        if self._total < k:
            raise ValidationError(
                f"the dataset must contain at least k={k} points "
                f"(has {self._total})"
            )
        return (k + 1) // 2

    def _check_query(self, x) -> np.ndarray:
        xv = as_vector(x, name="x")
        if xv.shape[0] != self._dim:
            raise ValidationError(
                f"x has dimension {xv.shape[0]}, dataset has {self._dim}"
            )
        return np.ascontiguousarray(xv)

    def _check_queries(self, points) -> np.ndarray:
        return as_matrix(points, name="points", dimension=self._dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiClassEngine(metric={self.metric.name}, backend={self.backend}, "
            f"version={self.version}, classes={list(self._classes)})"
        )
