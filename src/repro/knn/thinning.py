"""Training-set thinning for nearest-neighbor classifiers.

The paper's final remarks point at the line of work on *thinning* k-NN
classifiers by removing redundant training points (Eppstein 2022,
Flores-Velazco 2022, Rohrer & Weber 2023), noting it contributes to
global interpretability and "might serve to speed up the computation of
local explanations".  This module provides two classic reducers:

* :func:`condense` — Hart's Condensed Nearest Neighbor: grow a subset
  until every training point is classified correctly by 1-NN on the
  subset (training-set-consistent, not boundary-exact);
* :func:`relevant_points_1nn` — exact boundary-preserving reduction for
  1-NN over l2 in the style of Eppstein's relevant points: a point is
  kept iff deleting it changes the classifier *function* somewhere,
  which we decide exactly with the library's own polyhedral machinery.

The ablation benchmark ``bench_ablation_thinning.py`` measures the
explanation-speedup claim.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_odd_k
from ..exceptions import ValidationError
from .classifier import KNNClassifier
from .dataset import Dataset


def condense(dataset: Dataset, *, k: int = 1, metric=None, max_passes: int = 50) -> Dataset:
    """Hart's CNN: a subset on which k-NN classifies all training points
    as the full classifier does.

    Deterministic variant: points are scanned in index order, starting
    from the first point of each class, and misclassified points are
    absorbed until a clean pass.  The result is training-set-consistent
    but may still differ from the full classifier off the training set.
    """
    check_odd_k(k)
    if dataset.has_multiplicities:
        dataset = dataset.expanded()
    if metric is None:
        metric = "hamming" if dataset.discrete else "l2"
    discrete = dataset.discrete
    full = KNNClassifier(dataset, k=k, metric=metric)
    points, labels = dataset.all_points()
    targets = full.classify_batch(points)

    keep = np.zeros(points.shape[0], dtype=bool)
    # Seed with the first point of each class (per the full classifier's
    # own view of the training points, so contradictions cannot seed).
    for label in (0, 1):
        idx = np.flatnonzero(targets == label)
        if idx.size:
            keep[idx[0]] = True
    if keep.sum() == 0:  # pragma: no cover - dataset is never empty
        raise ValidationError("cannot condense an empty dataset")

    # For k = 1 this is Hart's loop exactly (kept points always classify
    # themselves correctly).  For k >= 3 even *kept* points can
    # misclassify under the subset, so consistency is checked over all
    # training points and further points are absorbed until every one
    # classifies as the full model does (reaching the full set in the
    # worst case, which is trivially consistent).
    #
    # Training points are classified in batched calls: one full batch at
    # the start of each pass, then — after every absorption changes the
    # subset — one batch over just the not-yet-scanned tail, whose stale
    # predictions are the only ones still read.  `predicted[j]` therefore
    # always reflects the classifier the sequential scan would see on
    # reaching point j, at the seed's O(n) classifications per pass.
    def _batch_predictions(keep_mask: np.ndarray, queries: np.ndarray) -> np.ndarray:
        subset = _subset_dataset(points, labels, keep_mask, discrete=discrete)
        if len(subset) < k:
            return np.full(queries.shape[0], -1, dtype=np.int64)
        clf = KNNClassifier(subset, k=k, metric=metric)
        return clf.classify_batch(queries)

    m = points.shape[0]
    for _ in range(max_passes):
        changed = False
        predicted = _batch_predictions(keep, points)
        for i in range(m):
            if predicted[i] == targets[i]:
                continue
            if not keep[i]:
                absorb = i
            else:
                # A kept point misclassifies: absorb some free point to
                # shift the local vote (nearest free point to i).
                free = np.flatnonzero(~keep)
                if free.size == 0:
                    continue
                gaps = np.abs(points[free] - points[i]).sum(axis=1)
                absorb = int(free[np.argmin(gaps)])
            keep[absorb] = True
            changed = True
            if i + 1 < m:
                predicted[i + 1:] = _batch_predictions(keep, points[i + 1:])
        if not changed:
            break
    return _subset_dataset(points, labels, keep, discrete=discrete)


def _subset_dataset(
    points: np.ndarray, labels: np.ndarray, keep: np.ndarray, *, discrete: bool | None = None
) -> Dataset:
    pos = points[keep & labels]
    neg = points[keep & ~labels]
    if discrete is None:
        discrete = bool(np.all((points == 0) | (points == 1)))
    return Dataset(pos, neg, discrete=discrete)


def relevant_points_1nn(dataset: Dataset) -> Dataset:
    """Exact function-preserving reduction for 1-NN under l2.

    A training point is *irrelevant* when deleting it leaves the
    classifier function ``f^1`` unchanged on all of R^n.  Under the
    optimistic tie-breaking semantics this is decidable exactly with the
    library's own polyhedral machinery:

    * a **positive** point ``i`` is relevant iff for some remaining
      negative ``j`` the region "``i`` weakly closest overall, ``j``
      strictly closer than every other positive" is non-empty — every
      point of that region classifies 1 with ``i`` present and 0 after
      its deletion (and completeness follows because the flipped query's
      weakly-closest positive must have been ``i``);
    * a **negative** point ``i`` is relevant iff for some remaining
      positive ``j`` the region "``i`` strictly closer than every
      positive, ``j`` weakly closer than every other negative" is
      non-empty, by the mirrored argument.

    Each deletion of an irrelevant point preserves the function exactly,
    so greedily deleting until a fixpoint yields a subset whose 1-NN
    classifier equals the original everywhere.
    """
    if dataset.has_multiplicities:
        dataset = dataset.expanded()
    points, labels = dataset.all_points()
    n = points.shape[1]
    active = list(range(points.shape[0]))

    from ..geometry.halfspace import bisector_halfspace
    from ..geometry.polyhedron import Polyhedron

    def is_relevant(i: int, pool: list[int]) -> bool:
        others = [t for t in pool if t != i]
        if not others:
            return True
        same = [t for t in others if labels[t] == labels[i]]
        opposite = [t for t in others if labels[t] != labels[i]]
        if not opposite:
            # All remaining points share i's label: f is constant with
            # or without i.
            return False
        for j in opposite:
            halfspaces = []
            if labels[i]:
                # i positive: weakly closest overall; j strictly beats
                # every remaining positive after the deletion.
                for t in others:
                    halfspaces.append(bisector_halfspace(points[i], points[t]))
                for s in same:
                    halfspaces.append(
                        bisector_halfspace(points[j], points[s], strict=True)
                    )
            else:
                # i negative: strictly beats every positive; j weakly
                # beats every remaining negative after the deletion.
                for s in opposite:
                    halfspaces.append(
                        bisector_halfspace(points[i], points[s], strict=True)
                    )
                for t in same:
                    halfspaces.append(bisector_halfspace(points[j], points[t]))
            if not Polyhedron(n, halfspaces).is_empty():
                return True
        return False

    changed = True
    while changed:
        changed = False
        for i in list(active):
            if len(active) <= 1:
                break
            if not is_relevant(i, active):
                active.remove(i)
                changed = True
    keep = np.zeros(points.shape[0], dtype=bool)
    keep[active] = True
    return _subset_dataset(points, labels, keep)
