"""Multi-label point sets and their merged-binary views.

The paper's final remarks reduce multi-label classification to the
binary case: to explain label ``l``, merge every other label into one
negative class and run the binary machinery on ``(S_l, S \\ S_l)``.
:class:`MultiClassDataset` is the labeled container that makes the
reduction *lazy*: it stores one row block per class (classes in sorted
label order, rows in insertion order — the canonical order every
tie-breaking rule observes) and materializes the merged binary
:class:`~repro.knn.dataset.Dataset` for a label only on demand.

Mutation semantics mirror :class:`~repro.knn.dataset.Dataset` exactly,
per class: an added point already present in its class increments the
multiplicity, a new point is appended at the end of its class, and
removals that reach multiplicity zero drop the row with later rows
shifting down in order.  The randomized differential harness replays
these folds against incrementally mutated engines, so the row order is
part of the contract, not an implementation detail.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_boolean_matrix, as_matrix, check_multiplicities
from ..exceptions import DimensionMismatchError, ValidationError
from .dataset import Dataset


def _check_labels(labels, n_rows: int) -> np.ndarray:
    """Coerce *labels* to an int64 vector of length *n_rows*."""
    lab = np.asarray(labels)
    if lab.dtype.kind not in "iub":
        raise ValidationError(
            f"labels must be integers, got dtype {lab.dtype}"
        )
    lab = lab.astype(np.int64).ravel()
    if lab.shape[0] != n_rows:
        raise ValidationError(
            f"labels has length {lab.shape[0]}, expected {n_rows}"
        )
    return lab


class MultiClassDataset:
    """Immutable container for points labeled with arbitrary integers.

    Parameters
    ----------
    points:
        2-D array, one row per point.
    labels:
        integer label per row (any integers; at least two distinct
        values — a single class has nothing to merge against).
    multiplicities:
        optional per-row occurrence counts (default 1 each).
    discrete:
        when True, entries are validated to be 0/1 (the paper's discrete
        setting over the Boolean hypercube).
    """

    def __init__(
        self,
        points,
        labels,
        *,
        multiplicities: Sequence[int] | None = None,
        discrete: bool = False,
    ):
        coerce = as_boolean_matrix if discrete else as_matrix
        pts = coerce(points, name="points")
        if pts.shape[0] == 0:
            raise ValidationError("dataset must contain at least one point")
        lab = _check_labels(labels, pts.shape[0])
        mult = check_multiplicities(multiplicities, pts.shape[0], name="multiplicities")
        classes = sorted(int(c) for c in np.unique(lab))
        if len(classes) < 2:
            raise ValidationError(
                "a multiclass dataset needs at least two distinct labels"
            )
        self._classes: tuple[int, ...] = tuple(classes)
        self._points: dict[int, np.ndarray] = {}
        self._mults: dict[int, np.ndarray] = {}
        for c in self._classes:
            mask = lab == c
            rows = np.ascontiguousarray(pts[mask])
            rows.setflags(write=False)
            self._points[c] = rows
            self._mults[c] = mult[mask]
        self.discrete = bool(discrete)

    # -- basic accessors ----------------------------------------------

    @property
    def classes(self) -> tuple[int, ...]:
        """The distinct labels, ascending (the canonical class order)."""
        return self._classes

    @property
    def dimension(self) -> int:
        """Number of features ``n``."""
        return self._points[self._classes[0]].shape[1]

    def class_points(self, label: int) -> np.ndarray:
        """Unique points of one class, in insertion order (read-only)."""
        self._check_label(label)
        return self._points[int(label)]

    def class_multiplicities(self, label: int) -> np.ndarray:
        """Per-row occurrence counts of one class's points."""
        self._check_label(label)
        return self._mults[int(label)]

    def class_size(self, label: int) -> int:
        """Number of points in one class, counting multiplicities."""
        self._check_label(label)
        return int(self._mults[int(label)].sum())

    @property
    def counts(self) -> dict[int, int]:
        """``{label: size}`` with multiplicities counted."""
        return {c: int(self._mults[c].sum()) for c in self._classes}

    @property
    def points(self) -> np.ndarray:
        """All unique rows stacked in canonical (class, insertion) order."""
        return np.vstack([self._points[c] for c in self._classes])

    @property
    def row_labels(self) -> np.ndarray:
        """Label of each row of :attr:`points` (int64)."""
        return np.concatenate(
            [np.full(self._points[c].shape[0], c, dtype=np.int64) for c in self._classes]
        )

    @property
    def multiplicities(self) -> np.ndarray:
        """Occurrence count of each row of :attr:`points`."""
        return np.concatenate([self._mults[c] for c in self._classes])

    @property
    def has_multiplicities(self) -> bool:
        """Whether any point occurs more than once."""
        return bool(any(np.any(self._mults[c] > 1) for c in self._classes))

    def __len__(self) -> int:
        return int(sum(self._mults[c].sum() for c in self._classes))

    def _check_label(self, label) -> int:
        """Validate *label* is one of the dataset's classes."""
        c = int(label)
        if c not in self._points:
            raise ValidationError(f"unknown label {label}")
        return c

    # -- derived forms -------------------------------------------------

    def merged(self, label: int) -> Dataset:
        """The paper's final-remarks reduction: ``label`` vs everything else.

        Positives are the given class (insertion order); negatives are
        every other class concatenated in ascending label order — the
        canonical order the differential oracle suite pins tie-breaking
        against.
        """
        c = self._check_label(label)
        rest = [d for d in self._classes if d != c]
        return Dataset(
            self._points[c],
            np.vstack([self._points[d] for d in rest]),
            positive_multiplicities=self._mults[c],
            negative_multiplicities=np.concatenate([self._mults[d] for d in rest]),
            discrete=self.discrete,
        )

    def all_points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(points, labels)`` with multiplicities expanded; labels int64."""
        points = np.vstack(
            [np.repeat(self._points[c], self._mults[c], axis=0) for c in self._classes]
        )
        labels = np.concatenate(
            [
                np.full(int(self._mults[c].sum()), c, dtype=np.int64)
                for c in self._classes
            ]
        )
        return points, labels

    # -- functional mutation -------------------------------------------

    def _check_mutation_batch(self, points, labels, multiplicities):
        """Validate one add/remove batch against this dataset's schema."""
        coerce = as_boolean_matrix if self.discrete else as_matrix
        pts = coerce(points, name="points")
        if pts.shape[0] == 0:
            raise ValidationError("a mutation batch must contain at least one point")
        if pts.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, dataset has {self.dimension}"
            )
        lab = _check_labels(labels, pts.shape[0])
        mult = check_multiplicities(multiplicities, pts.shape[0], name="multiplicities")
        return np.ascontiguousarray(pts), lab, mult

    def with_added(self, points, labels, multiplicities=None) -> "MultiClassDataset":
        """A new dataset with the labeled *points* added.

        Same canonical streaming semantics as the binary
        :meth:`Dataset.with_added <repro.knn.dataset.Dataset.with_added>`,
        applied per class: present points gain multiplicity, new points
        append at the end of their class, and a previously unseen label
        starts a new class (slotted into ascending label order).
        """
        pts, lab, mult = self._check_mutation_batch(points, labels, multiplicities)
        new_points: dict[int, list[np.ndarray]] = {}
        new_counts: dict[int, list[int]] = {}
        counts = {c: self._mults[c].copy() for c in self._classes}
        lookups = {c: Dataset._row_lookup(self._points[c]) for c in self._classes}
        for row, c, m in zip(pts, (int(v) for v in lab), mult):
            if c not in lookups:
                lookups[c] = {}
                counts[c] = np.empty(0, dtype=self._mults[self._classes[0]].dtype)
                new_points[c] = []
                new_counts[c] = []
            lookup = lookups[c]
            key = row.tobytes()
            if key in lookup:
                idx = lookup[key]
                if idx < counts[c].shape[0]:
                    counts[c][idx] += m
                else:
                    new_counts[c][idx - counts[c].shape[0]] += m
            else:
                lookup[key] = counts[c].shape[0] + len(new_points.setdefault(c, []))
                new_points[c].append(row)
                new_counts.setdefault(c, []).append(int(m))
        all_rows: list[np.ndarray] = []
        all_labels: list[np.ndarray] = []
        all_mults: list[np.ndarray] = []
        for c in sorted(counts):
            base = self._points.get(c, np.empty((0, self.dimension)))
            rows = np.vstack([base, *new_points.get(c, [])]) if new_points.get(c) else base
            cnts = np.concatenate(
                [counts[c], np.asarray(new_counts.get(c, []), dtype=np.int64)]
            )
            all_rows.append(rows)
            all_labels.append(np.full(rows.shape[0], c, dtype=np.int64))
            all_mults.append(cnts)
        return MultiClassDataset(
            np.vstack(all_rows),
            np.concatenate(all_labels),
            multiplicities=np.concatenate(all_mults),
            discrete=self.discrete,
        )

    def with_removed(self, points, labels, multiplicities=None) -> "MultiClassDataset":
        """A new dataset with the labeled *points* removed.

        The mirror of :meth:`with_added`: each listed point must exist in
        its class with at least the requested multiplicity, rows whose
        multiplicity reaches zero are dropped (order preserved), an
        emptied class disappears, and the result must keep at least two
        distinct labels.
        """
        pts, lab, mult = self._check_mutation_batch(points, labels, multiplicities)
        counts = {c: self._mults[c].copy() for c in self._classes}
        lookups = {c: Dataset._row_lookup(self._points[c]) for c in self._classes}
        for row, c, m in zip(pts, (int(v) for v in lab), mult):
            idx = lookups[c].get(row.tobytes()) if c in lookups else None
            if idx is None:
                raise ValidationError(
                    f"cannot remove a point absent from class {c}: {row.tolist()}"
                )
            if counts[c][idx] < m:
                raise ValidationError(
                    f"cannot remove {int(m)} cop(ies) of a point with "
                    f"multiplicity {int(counts[c][idx])} in class {c}"
                )
            counts[c][idx] -= m
        all_rows: list[np.ndarray] = []
        all_labels: list[np.ndarray] = []
        all_mults: list[np.ndarray] = []
        for c in self._classes:
            keep = counts[c] > 0
            if not np.any(keep):
                continue
            all_rows.append(self._points[c][keep])
            all_labels.append(np.full(int(keep.sum()), c, dtype=np.int64))
            all_mults.append(counts[c][keep])
        if len(all_rows) < 2:
            raise ValidationError(
                "a multiclass dataset needs at least two distinct labels"
            )
        return MultiClassDataset(
            np.vstack(all_rows),
            np.concatenate(all_labels),
            multiplicities=np.concatenate(all_mults),
            discrete=self.discrete,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "discrete" if self.discrete else "continuous"
        sizes = ", ".join(f"{c}:{n}" for c, n in self.counts.items())
        return f"MultiClassDataset({tag}, n={self.dimension}, sizes={{{sizes}}})"
