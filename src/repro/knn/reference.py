"""Definition-based reference implementation of ``f^k_{S+,S-}``.

The paper defines ``f(x) = 1`` iff **some** size-k subset ``T`` of
``S+ ∪ S-`` has a positive majority and satisfies
``d(x, y) <= d(x, z)`` for all ``y ∈ T`` and ``z ∉ T``.

:func:`classify_by_definition` evaluates that existential statement by
brute force over all ``C(|S|, k)`` subsets.  It is exponential in k and
only usable on tiny datasets — which is exactly its purpose: it is the
independent oracle against which the production classifier (the
ball-inflation rule derived in Proposition 1) is validated.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import as_vector, check_odd_k
from ..metrics import get_metric
from .dataset import Dataset


def classify_by_definition(dataset: Dataset, k: int, metric, x) -> int:
    """Evaluate the paper's raw optimistic k-NN definition by enumeration."""
    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    points, labels = dataset.all_points()
    m = points.shape[0]
    if m < k:
        raise ValueError(f"need at least k={k} points, have {m}")
    d = metric.powers_to(points, xv)
    majority = (k + 1) // 2
    for T in combinations(range(m), k):
        T = list(T)
        if int(labels[T].sum()) < majority:
            continue
        inside_max = d[T].max()
        outside = np.ones(m, dtype=bool)
        outside[T] = False
        if not outside.any() or inside_max <= d[outside].min():
            return 1
    return 0
