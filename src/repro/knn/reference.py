"""Definition-based reference implementation of ``f^k_{S+,S-}``.

The paper defines ``f(x) = 1`` iff **some** size-k subset ``T`` of
``S+ ∪ S-`` has a positive majority and satisfies
``d(x, y) <= d(x, z)`` for all ``y ∈ T`` and ``z ∉ T``.

:func:`classify_by_definition` evaluates that existential statement by
brute force over all ``C(|S|, k)`` subsets.  It is exponential in k and
only usable on tiny datasets — which is exactly its purpose: it is the
independent oracle against which the production classifier (the
ball-inflation rule derived in Proposition 1) is validated.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import as_vector, check_odd_k
from ..metrics import get_metric
from .dataset import Dataset


def classify_by_definition(dataset: Dataset, k: int, metric, x) -> int:
    """Evaluate the paper's raw optimistic k-NN definition by enumeration."""
    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    points, labels = dataset.all_points()
    m = points.shape[0]
    if m < k:
        raise ValueError(f"need at least k={k} points, have {m}")
    d = metric.powers_to(points, xv)
    majority = (k + 1) // 2
    for T in combinations(range(m), k):
        T = list(T)
        if int(labels[T].sum()) < majority:
            continue
        inside_max = d[T].max()
        outside = np.ones(m, dtype=bool)
        outside[T] = False
        if not outside.any() or inside_max <= d[outside].min():
            return 1
    return 0


def classify_weighted_by_definition(dataset: Dataset, k: int, metric, x) -> int:
    """Distance-weighted kNN by direct evaluation of the definition.

    Selects the k nearest expanded points (ties at the boundary broken
    by expanded index, positives first, matching
    :meth:`Dataset.all_points <repro.knn.dataset.Dataset.all_points>`),
    weighs each by its inverse true distance through the shared
    :func:`repro.knn.engine._vote_weights` rule (exact hits dominate),
    and awards weight-sum ties to the positive class.  The oracle the
    engine's ``vote="distance"`` mode is pinned against.
    """
    from .engine import _vote_weights

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    points, labels = dataset.all_points()
    if points.shape[0] < k:
        raise ValueError(f"need at least k={k} points, have {points.shape[0]}")
    d = metric.powers_to(points, xv)
    order = np.argsort(d, kind="stable")[:k]
    weights = _vote_weights(d[order][None, :], metric)[0]
    sel_pos = labels[order]
    w_pos = (weights * sel_pos).sum()
    w_neg = (weights * ~sel_pos).sum()
    return 1 if w_pos >= w_neg else 0


def multiclass_classify_by_definition(
    data, k: int, metric, x, *, vote: str = "uniform", favor: int | None = None
) -> int:
    """Multiclass kNN by direct evaluation of the documented contract.

    ``k = 1`` classifies by the nearest point's label (distance ties
    toward *favor* when given and tied, else the smallest label — the
    merge-reduction semantics of :class:`~repro.knn.multiclass.
    MultiClass1NN`).  ``k >= 3`` votes among the k nearest expanded
    points (selection ties by canonical expanded order: classes
    ascending, rows in insertion order), counting points under
    ``vote="uniform"`` and weighing by inverse true distance under
    ``vote="distance"``; a tied score goes to *favor* when tied, else
    the smallest label.  The oracle
    :meth:`MultiClassEngine.classify_batch
    <repro.knn.multiclass_engine.MultiClassEngine.classify_batch>` is
    pinned against.
    """
    from .engine import _vote_weights

    k = check_odd_k(k)
    metric = get_metric(metric)
    xv = as_vector(x, name="x")
    points, labels = data.all_points()
    if points.shape[0] < k:
        raise ValueError(f"need at least k={k} points, have {points.shape[0]}")
    d = metric.powers_to(points, xv)
    if k == 1:
        candidates = labels[d <= d.min()]
        if favor is not None and int(favor) in candidates:
            return int(favor)
        return int(candidates.min())
    order = np.argsort(d, kind="stable")[:k]
    sel_labels = labels[order]
    classes = data.classes
    if vote == "uniform":
        scores = np.array([(sel_labels == c).sum() for c in classes], dtype=np.float64)
    elif vote == "distance":
        weights = _vote_weights(d[order][None, :], metric)[0]
        scores = np.array([(weights * (sel_labels == c)).sum() for c in classes])
    else:
        raise ValueError(f"vote must be 'uniform' or 'distance', got {vote!r}")
    best = scores.max()
    tied = [c for c, s in zip(classes, scores) if s == best]
    if favor is not None and int(favor) in tied:
        return int(favor)
    return int(tied[0])
