"""k-Nearest-Neighbor classification semantics (Section 2 of the paper).

This package implements the exact classification function
``f^k_{S+,S-}`` studied by the paper, including its *optimistic*
tie-breaking rule, together with the witness-set characterization of
Proposition 1 that most algorithms in the paper build on.
"""

from __future__ import annotations

from .classifier import KNNClassifier
from .dataset import Dataset
from .engine import QueryEngine
from .certificates import Witness, find_witness, verify_witness
from .multiclass import MultiClass1NN
from .multiclass_data import MultiClassDataset
from .multiclass_engine import MultiClassEngine
from .thinning import condense, relevant_points_1nn

__all__ = [
    "Dataset",
    "KNNClassifier",
    "QueryEngine",
    "Witness",
    "find_witness",
    "verify_witness",
    "MultiClass1NN",
    "MultiClassDataset",
    "MultiClassEngine",
    "condense",
    "relevant_points_1nn",
]
