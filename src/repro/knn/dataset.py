"""Labeled point sets ``(S+, S-)`` with optional multiplicities.

The paper's definitions take two subsets ``S+`` (positive examples) and
``S-`` (negative examples) of ``M^n``.  Several hardness constructions
(Theorems 3 and 5) are first stated with *multiplicities* — the same
point occurring several times — and then de-duplicated; :class:`Dataset`
supports both styles so the reductions can be implemented exactly as in
the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    as_boolean_matrix,
    as_matrix,
    check_multiplicities,
)
from ..exceptions import DimensionMismatchError, ValidationError


class Dataset:
    """Immutable container for positive and negative examples.

    Parameters
    ----------
    positives, negatives:
        2-D arrays (rows are points).  One of them may be empty, but not
        both; empty sets are materialized with the right dimension.
    positive_multiplicities, negative_multiplicities:
        optional per-row counts (default 1 each).
    discrete:
        when True, entries are validated to be 0/1 (the paper's discrete
        setting over the Boolean hypercube).
    """

    def __init__(
        self,
        positives,
        negatives,
        *,
        positive_multiplicities: Sequence[int] | None = None,
        negative_multiplicities: Sequence[int] | None = None,
        discrete: bool = False,
    ):
        coerce = as_boolean_matrix if discrete else as_matrix
        pos = coerce(positives, name="positives")
        neg = coerce(negatives, name="negatives")
        if pos.size == 0 and neg.size == 0:
            raise ValidationError("dataset must contain at least one point")
        if pos.size == 0:
            pos = np.empty((0, neg.shape[1]))
        if neg.size == 0:
            neg = np.empty((0, pos.shape[1]))
        if pos.shape[1] != neg.shape[1]:
            raise DimensionMismatchError(
                f"positives have dimension {pos.shape[1]}, negatives {neg.shape[1]}"
            )
        self._positives = pos
        self._negatives = neg
        self._positives.setflags(write=False)
        self._negatives.setflags(write=False)
        self._pos_mult = check_multiplicities(
            positive_multiplicities, pos.shape[0], name="positive_multiplicities"
        )
        self._neg_mult = check_multiplicities(
            negative_multiplicities, neg.shape[0], name="negative_multiplicities"
        )
        self.discrete = bool(discrete)

    # -- constructors -------------------------------------------------

    @classmethod
    def from_labeled(cls, points, labels, *, discrete: bool = False) -> "Dataset":
        """Build a dataset from a point matrix and a 0/1 (or bool) label array."""
        pts = as_matrix(points, name="points")
        lab = np.asarray(labels).astype(bool).ravel()
        if lab.shape[0] != pts.shape[0]:
            raise ValidationError(
                f"labels has length {lab.shape[0]}, expected {pts.shape[0]}"
            )
        return cls(pts[lab], pts[~lab], discrete=discrete)

    # -- basic accessors ----------------------------------------------

    @property
    def positives(self) -> np.ndarray:
        """Unique positive points, one row each (read-only view)."""
        return self._positives

    @property
    def negatives(self) -> np.ndarray:
        """Unique negative points, one row each (read-only view)."""
        return self._negatives

    @property
    def positive_multiplicities(self) -> np.ndarray:
        """Per-row occurrence counts of the positive points."""
        return self._pos_mult

    @property
    def negative_multiplicities(self) -> np.ndarray:
        """Per-row occurrence counts of the negative points."""
        return self._neg_mult

    @property
    def dimension(self) -> int:
        """Number of features ``n``."""
        return self._positives.shape[1]

    @property
    def n_positive(self) -> int:
        """Number of positive points, counting multiplicities."""
        return int(self._pos_mult.sum())

    @property
    def n_negative(self) -> int:
        """Number of negative points, counting multiplicities."""
        return int(self._neg_mult.sum())

    def __len__(self) -> int:
        return self.n_positive + self.n_negative

    @property
    def has_multiplicities(self) -> bool:
        """Whether any point occurs more than once."""
        return bool(np.any(self._pos_mult > 1) or np.any(self._neg_mult > 1))

    # -- derived forms -------------------------------------------------

    def expanded(self) -> "Dataset":
        """Multiplicity-free dataset with repeated rows materialized."""
        if not self.has_multiplicities:
            return self
        return Dataset(
            np.repeat(self._positives, self._pos_mult, axis=0),
            np.repeat(self._negatives, self._neg_mult, axis=0),
            discrete=self.discrete,
        )

    def all_points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(points, labels)`` with multiplicities expanded; labels are bool."""
        expanded = self.expanded()
        points = np.vstack([expanded._positives, expanded._negatives])
        labels = np.concatenate(
            [
                np.ones(expanded._positives.shape[0], dtype=bool),
                np.zeros(expanded._negatives.shape[0], dtype=bool),
            ]
        )
        return points, labels

    # -- functional mutation -------------------------------------------

    def _check_mutation_batch(self, points, labels, multiplicities):
        """Validate one add/remove batch against this dataset's schema."""
        coerce = as_boolean_matrix if self.discrete else as_matrix
        pts = coerce(points, name="points")
        if pts.shape[0] == 0:
            raise ValidationError("a mutation batch must contain at least one point")
        if pts.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, dataset has {self.dimension}"
            )
        lab = np.asarray(labels).astype(bool).ravel()
        if lab.shape[0] != pts.shape[0]:
            raise ValidationError(
                f"labels has length {lab.shape[0]}, expected {pts.shape[0]}"
            )
        mult = check_multiplicities(
            multiplicities, pts.shape[0], name="multiplicities"
        )
        return np.ascontiguousarray(pts), lab, mult

    @staticmethod
    def _row_lookup(rows: np.ndarray) -> dict[bytes, int]:
        """Map each row's float64 bytes to its index (last duplicate wins)."""
        return {
            np.ascontiguousarray(row).tobytes(): i for i, row in enumerate(rows)
        }

    def with_added(self, points, labels, multiplicities=None) -> "Dataset":
        """A new dataset with the labeled *points* added.

        These are the **canonical streaming-mutation semantics** every
        layer shares (:meth:`QueryEngine.add_points
        <repro.knn.engine.QueryEngine.add_points>` applies the same rule
        incrementally, and the fuzz parity suite pins the two together):
        a point already present in its class gets its multiplicity
        incremented; a new point is appended at the end of its class,
        preserving existing row order — row order is observable through
        tie-breaking, so it is part of the contract.
        """
        pts, lab, mult = self._check_mutation_batch(points, labels, multiplicities)
        sides = []
        for flag, base, base_mult in (
            (True, self._positives, self._pos_mult),
            (False, self._negatives, self._neg_mult),
        ):
            lookup = self._row_lookup(base)
            counts = base_mult.copy()
            new_rows: list[np.ndarray] = []
            new_counts: list[int] = []
            for row, m in zip(pts[lab == flag], mult[lab == flag]):
                key = row.tobytes()
                if key in lookup:
                    idx = lookup[key]
                    if idx < counts.shape[0]:
                        counts[idx] += m
                    else:
                        new_counts[idx - counts.shape[0]] += m
                else:
                    lookup[key] = counts.shape[0] + len(new_rows)
                    new_rows.append(row)
                    new_counts.append(int(m))
            rows = np.vstack([base, new_rows]) if new_rows else base
            sides.append((rows, np.concatenate([counts, np.asarray(new_counts, dtype=np.int64)])))
        (pos, pos_mult), (neg, neg_mult) = sides
        return Dataset(
            pos,
            neg,
            positive_multiplicities=pos_mult,
            negative_multiplicities=neg_mult,
            discrete=self.discrete,
        )

    def with_removed(self, points, labels, multiplicities=None) -> "Dataset":
        """A new dataset with the labeled *points* removed.

        The mirror of :meth:`with_added`: each listed point must exist in
        its class with at least the requested multiplicity (else
        :class:`~repro.exceptions.ValidationError`); a multiplicity that
        reaches zero drops the row, later rows shifting down with their
        order preserved.  Removing the last point of the whole dataset is
        rejected.
        """
        pts, lab, mult = self._check_mutation_batch(points, labels, multiplicities)
        sides = []
        for flag, base, base_mult in (
            (True, self._positives, self._pos_mult),
            (False, self._negatives, self._neg_mult),
        ):
            lookup = self._row_lookup(base)
            counts = base_mult.copy()
            side = "positives" if flag else "negatives"
            for row, m in zip(pts[lab == flag], mult[lab == flag]):
                idx = lookup.get(row.tobytes())
                if idx is None:
                    raise ValidationError(
                        f"cannot remove a point absent from the {side}: {row.tolist()}"
                    )
                if counts[idx] < m:
                    raise ValidationError(
                        f"cannot remove {int(m)} cop(ies) of a point with "
                        f"multiplicity {int(counts[idx])} in the {side}"
                    )
                counts[idx] -= m
            keep = counts > 0
            sides.append((base[keep], counts[keep]))
        (pos, pos_mult), (neg, neg_mult) = sides
        if pos.shape[0] == 0 and neg.shape[0] == 0:
            raise ValidationError("cannot remove the last point of a dataset")
        return Dataset(
            pos,
            neg,
            positive_multiplicities=pos_mult if pos.shape[0] else None,
            negative_multiplicities=neg_mult if neg.shape[0] else None,
            discrete=self.discrete,
        )

    def swapped(self) -> "Dataset":
        """Dataset with the roles of S+ and S- exchanged."""
        return Dataset(
            self._negatives,
            self._positives,
            positive_multiplicities=self._neg_mult,
            negative_multiplicities=self._pos_mult,
            discrete=self.discrete,
        )

    def restrict_dims(self, keep) -> "Dataset":
        """Project every point to the listed coordinates (order preserved)."""
        keep = np.asarray(list(keep), dtype=np.int64)
        return Dataset(
            self._positives[:, keep],
            self._negatives[:, keep],
            positive_multiplicities=self._pos_mult,
            negative_multiplicities=self._neg_mult,
            discrete=self.discrete,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "discrete" if self.discrete else "continuous"
        return (
            f"Dataset({tag}, n={self.dimension}, "
            f"|S+|={self.n_positive}, |S-|={self.n_negative})"
        )
