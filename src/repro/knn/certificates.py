"""Witness sets for Proposition 1.

Proposition 1 characterizes the classifier through two existential
statements:

(a) ``f(x) = 1``  iff there are ``A ⊆ S+`` with ``|A| = (k+1)/2`` and
    ``B ⊆ S-`` with ``|B| <= (k-1)/2`` such that ``d(x,a) <= d(x,c)``
    for every ``a ∈ A`` and ``c ∈ S- \\ B``;

(b) ``f(x) = 0``  iff there are ``A ⊆ S-`` with ``|A| = (k+1)/2`` and
    ``B ⊆ S+`` with ``|B| <= (k-1)/2`` such that ``d(x,a) < d(x,c)``
    for every ``a ∈ A`` and ``c ∈ S+ \\ B``  (note the strict inequality).

A :class:`Witness` materializes such a pair ``(A, B)`` as index arrays
into the dataset's (multiplicity-expanded) positive/negative matrices.
Witnesses are the atoms the polynomial-time algorithms of Sections 5–6
enumerate, so producing and *verifying* them independently of the
classifier is the backbone of our test strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_vector
from ..exceptions import ValidationError
from .classifier import KNNClassifier
from .dataset import Dataset


@dataclass(frozen=True)
class Witness:
    """A Proposition-1 certificate for the label of a point.

    Attributes
    ----------
    label:
        the certified classifier output (0 or 1).
    A:
        indices (into the expanded matrix of the *winning* class) of the
        ``(k+1)/2`` points that reach the query first.
    B:
        indices (into the expanded matrix of the *losing* class) of up to
        ``(k-1)/2`` points excused from the distance comparison.
    """

    label: int
    A: tuple[int, ...]
    B: tuple[int, ...]

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValidationError(f"label must be 0 or 1, got {self.label}")


def _expanded_sides(dataset: Dataset) -> tuple[np.ndarray, np.ndarray]:
    expanded = dataset.expanded()
    return expanded.positives, expanded.negatives


def find_witness(classifier: KNNClassifier, x) -> Witness:
    """Construct a Proposition-1 witness for ``f(x)``.

    The construction follows the ball-inflation proof: ``A`` is the
    majority-many closest points of the winning class; ``B`` is every
    losing-class point strictly inside (resp. not outside) that ball.
    """
    xv = as_vector(x, name="x")
    label = classifier.classify(xv)
    pos, neg = _expanded_sides(classifier.dataset)
    metric = classifier.metric
    need = classifier.majority
    d_pos = metric.powers_to(pos, xv)
    d_neg = metric.powers_to(neg, xv)
    if label == 1:
        order = np.argsort(d_pos, kind="stable")
        A = order[:need]
        radius = d_pos[A[-1]]
        # Negatives strictly inside the ball are excused.
        B = np.flatnonzero(d_neg < radius)
    else:
        order = np.argsort(d_neg, kind="stable")
        A = order[:need]
        radius = d_neg[A[-1]]
        # Positives inside or on the boundary are excused (strict rule).
        B = np.flatnonzero(d_pos <= radius)
    witness = Witness(label=label, A=tuple(int(i) for i in A), B=tuple(int(i) for i in B))
    if len(witness.B) > (classifier.k - 1) // 2:  # pragma: no cover - classifier bug guard
        raise ValidationError("internal error: witness B exceeds (k-1)/2")
    return witness


def verify_witness(classifier: KNNClassifier, x, witness: Witness) -> bool:
    """Check a witness against the Proposition-1 inequalities from scratch.

    This verifier deliberately avoids the classifier's own ``r+/r-`` rule
    so it can serve as an independent oracle in tests.
    """
    xv = as_vector(x, name="x")
    pos, neg = _expanded_sides(classifier.dataset)
    metric = classifier.metric
    need = classifier.majority
    slack = (classifier.k - 1) // 2
    if len(set(witness.A)) != need or len(set(witness.B)) > slack:
        return False
    if witness.label == 1:
        winning, losing = pos, neg
    else:
        winning, losing = neg, pos
    if witness.A and max(witness.A) >= winning.shape[0]:
        return False
    if witness.B and max(witness.B) >= losing.shape[0]:
        return False
    d_win = metric.powers_to(winning, xv)
    d_lose = metric.powers_to(losing, xv)
    a_max = max(d_win[list(witness.A)]) if witness.A else -np.inf
    keep = np.ones(losing.shape[0], dtype=bool)
    keep[list(witness.B)] = False
    rest = d_lose[keep]
    if rest.size == 0:
        return True
    if witness.label == 1:
        return bool(a_max <= rest.min())
    return bool(a_max < rest.min())
