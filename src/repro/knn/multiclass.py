"""Multi-label explanations for 1-NN via label merging.

The paper's final remarks observe that for ``k = 1`` the multi-label
case reduces to the binary one: to explain why ``x`` was classified
with label ``l``, merge all other labels into a single negative class
— the explanation problems on the merged dataset coincide with the
multi-label ones.  (For ``k >= 3`` the same trick fails and the
complexity is open; this class therefore keeps its ``k = 1`` contract,
while :class:`~repro.knn.multiclass_engine.MultiClassEngine` serves the
``k >= 3`` *voting* semantics directly.)

:class:`MultiClass1NN` wraps an integer-labeled point set and exposes
classification, sufficient reasons, and counterfactuals — either
"change to anything else" or targeted "change to label t" (merge
``S+ = class t`` instead).  Since the multiclass engine landed it is a
thin facade over one shared :class:`MultiClassEngine`: classification
runs on the shared index, and each explanation call reuses the engine's
lazily merged binary view (and its warm caches) instead of
materializing a fresh merged dataset per call.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix
from ..exceptions import ValidationError
from ..metrics import default_metric_name, get_metric
from .dataset import Dataset
from .multiclass_data import MultiClassDataset
from .multiclass_engine import MultiClassEngine


class MultiClass1NN:
    """1-NN over integer labels with merge-based formal explanations."""

    def __init__(self, points, labels, metric=None, *, backend: str = "auto"):
        self.points = as_matrix(points, name="points")
        self.labels = np.asarray(labels, dtype=np.int64).ravel()
        if self.labels.shape[0] != self.points.shape[0]:
            raise ValidationError(
                f"labels has length {self.labels.shape[0]}, "
                f"expected {self.points.shape[0]}"
            )
        if self.points.shape[0] == 0:
            raise ValidationError("need at least one training point")
        self.classes = sorted(int(c) for c in np.unique(self.labels))
        discrete_data = bool(np.all((self.points == 0) | (self.points == 1)))
        if metric is None:
            metric = default_metric_name(discrete_data)
        self.metric = get_metric(metric)
        self._discrete = discrete_data and self.metric.is_discrete
        # The shared engine needs two classes to merge against; a
        # single-label set stays engine-less (classification is constant
        # and merging raises, as before).
        if len(self.classes) >= 2:
            data = MultiClassDataset(
                self.points, self.labels, discrete=self._discrete
            )
            self._engine: MultiClassEngine | None = MultiClassEngine(
                data, self.metric, backend=backend
            )
        else:
            self._engine = None

    @property
    def dimension(self) -> int:
        """Number of features ``n``."""
        return self.points.shape[1]

    @property
    def engine(self) -> MultiClassEngine:
        """The shared :class:`MultiClassEngine` behind every query.

        Raises for single-label training sets, which have nothing to
        merge against (same condition as :meth:`merged`).
        """
        if self._engine is None:
            raise ValidationError("merging needs at least two distinct labels")
        return self._engine

    def classify(self, x, *, favor: int | None = None) -> int:
        """Label of the nearest point.

        Distance ties break toward *favor* when given and present among
        the tied candidates, else toward the smallest label.  The
        *favor* rule is the multi-label counterpart of the paper's
        optimistic tie-breaking: the merged binary problem "class l vs
        rest" counts boundary points as class l, so explanations
        produced through :meth:`merged` certify labels under
        ``classify(x, favor=l)`` semantics.
        """
        if self._engine is None:
            return self.classes[0]
        if favor is not None and int(favor) not in self.classes:
            favor = None
        return self._engine.classify(x, 1, favor=favor)

    def merged(self, positive_label: int) -> Dataset:
        """The binary dataset ``class l`` vs everything else.

        Negatives follow the canonical order (classes ascending, rows
        in insertion order) — the order the multiclass differential
        oracle suite pins tie-dependent witnesses against.
        """
        if positive_label not in self.classes:
            raise ValidationError(f"unknown label {positive_label}")
        return self.engine.dataset.merged(positive_label)

    # -- explanations ---------------------------------------------------

    def _merged_engine(self, label: int):
        """The engine's lazily merged binary view for one label."""
        return self.engine.merged_engine(label)

    def check_sufficient_reason(self, x, X) -> bool:
        """Is X sufficient for x's multi-label classification?"""
        from ..abductive import check_sufficient_reason

        label = self.classify(x)
        engine = self._merged_engine(label)
        return bool(
            check_sufficient_reason(
                engine.dataset, 1, self.metric, x, X, engine=engine
            )
        )

    def minimal_sufficient_reason(self, x) -> frozenset[int]:
        """Inclusion-minimal sufficient reason for x's predicted class (one-vs-rest)."""
        from ..abductive import minimal_sufficient_reason

        label = self.classify(x)
        engine = self._merged_engine(label)
        return minimal_sufficient_reason(
            engine.dataset, 1, self.metric, x, engine=engine
        )

    def closest_counterfactual(self, x, *, target: int | None = None, **kwargs):
        """Closest input with a different label (or with label *target*).

        Untargeted: merge "predicted vs rest" and flip out of the
        positive class.  Targeted: merge "target vs rest" and flip into
        the positive class.  Targeted results are certified under the
        optimistic semantics ``classify(y, favor=target)`` — the
        returned point can sit exactly on the decision boundary, where
        the merge rule awards it the target label.
        """
        from ..counterfactual import closest_counterfactual

        label = self.classify(x)
        if target is None:
            engine = self._merged_engine(label)
        else:
            target = int(target)
            if target == label:
                raise ValidationError("x already has the target label")
            engine = self._merged_engine(target)
        return closest_counterfactual(
            engine.dataset, 1, self.metric, x, query_engine=engine, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiClass1NN({len(self.classes)} classes, n={self.dimension}, "
            f"{self.points.shape[0]} points, metric={self.metric.name})"
        )
