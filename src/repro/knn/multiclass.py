"""Multi-label explanations for 1-NN via label merging.

The paper's final remarks observe that for ``k = 1`` the multi-label
case reduces to the binary one: to explain why ``x`` was classified
with label ``l``, merge all other labels into a single negative class
— the explanation problems on the merged dataset coincide with the
multi-label ones.  (For ``k >= 3`` the same trick fails and the
complexity is open; this module therefore supports ``k = 1`` only.)

:class:`MultiClass1NN` wraps an integer-labeled point set and exposes
classification, sufficient reasons, and counterfactuals — either
"change to anything else" or targeted "change to label t" (merge
``S+ = class t`` instead).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_vector
from ..exceptions import ValidationError
from ..metrics import get_metric
from .dataset import Dataset


class MultiClass1NN:
    """1-NN over integer labels with merge-based formal explanations."""

    def __init__(self, points, labels, metric=None):
        self.points = as_matrix(points, name="points")
        self.labels = np.asarray(labels, dtype=np.int64).ravel()
        if self.labels.shape[0] != self.points.shape[0]:
            raise ValidationError(
                f"labels has length {self.labels.shape[0]}, "
                f"expected {self.points.shape[0]}"
            )
        if self.points.shape[0] == 0:
            raise ValidationError("need at least one training point")
        self.classes = sorted(int(c) for c in np.unique(self.labels))
        discrete_data = bool(np.all((self.points == 0) | (self.points == 1)))
        if metric is None:
            metric = "hamming" if discrete_data else "l2"
        self.metric = get_metric(metric)
        self._discrete = discrete_data and self.metric.is_discrete

    @property
    def dimension(self) -> int:
        """Number of features ``n``."""
        return self.points.shape[1]

    def classify(self, x, *, favor: int | None = None) -> int:
        """Label of the nearest point.

        Distance ties break toward *favor* when given and present among
        the tied candidates, else toward the smallest label.  The
        *favor* rule is the multi-label counterpart of the paper's
        optimistic tie-breaking: the merged binary problem "class l vs
        rest" counts boundary points as class l, so explanations
        produced through :meth:`merged` certify labels under
        ``classify(x, favor=l)`` semantics.
        """
        xv = as_vector(x, name="x")
        d = self.metric.powers_to(self.points, xv)
        best = d.min()
        candidates = self.labels[d <= best]
        if favor is not None and int(favor) in candidates:
            return int(favor)
        return int(candidates.min())

    def merged(self, positive_label: int) -> Dataset:
        """The binary dataset ``class l`` vs everything else."""
        if positive_label not in self.classes:
            raise ValidationError(f"unknown label {positive_label}")
        mask = self.labels == positive_label
        if mask.all():
            raise ValidationError("merging needs at least two distinct labels")
        return Dataset(
            self.points[mask], self.points[~mask], discrete=self._discrete
        )

    # -- explanations ---------------------------------------------------

    def check_sufficient_reason(self, x, X) -> bool:
        """Is X sufficient for x's multi-label classification?"""
        from ..abductive import check_sufficient_reason

        label = self.classify(x)
        return bool(
            check_sufficient_reason(self.merged(label), 1, self.metric, x, X)
        )

    def minimal_sufficient_reason(self, x) -> frozenset[int]:
        """Inclusion-minimal sufficient reason for x's predicted class (one-vs-rest)."""
        from ..abductive import minimal_sufficient_reason

        label = self.classify(x)
        return minimal_sufficient_reason(self.merged(label), 1, self.metric, x)

    def closest_counterfactual(self, x, *, target: int | None = None, **kwargs):
        """Closest input with a different label (or with label *target*).

        Untargeted: merge "predicted vs rest" and flip out of the
        positive class.  Targeted: merge "target vs rest" and flip into
        the positive class.  Targeted results are certified under the
        optimistic semantics ``classify(y, favor=target)`` — the
        returned point can sit exactly on the decision boundary, where
        the merge rule awards it the target label.
        """
        from ..counterfactual import closest_counterfactual

        label = self.classify(x)
        if target is None:
            data = self.merged(label)
        else:
            target = int(target)
            if target == label:
                raise ValidationError("x already has the target label")
            data = self.merged(target)
        return closest_counterfactual(data, 1, self.metric, x, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiClass1NN({len(self.classes)} classes, n={self.dimension}, "
            f"{self.points.shape[0]} points, metric={self.metric.name})"
        )
