"""The optimistic k-NN classification function ``f^k_{S+,S-}``.

The paper defines ``f(x) = 1`` iff there is a size-k subset ``T`` of
``S+ ∪ S-`` whose majority is positive and whose members are all at
distance ``<=`` every point outside ``T`` (the *optimistic* view of
ties).  The proof of Proposition 1 gives the equivalent "ball inflation"
rule used here:

    grow a ball centered at x; classify positively iff (k+1)/2 positive
    points fall inside no later than (k+1)/2 negative points do.

Writing ``r+`` (resp. ``r-``) for the distance at which the ``(k+1)/2``-th
positive (negative) point is reached — counting multiplicities, ``+inf``
when that many points do not exist — we get ``f(x) = 1  iff  r+ <= r-``.

All distance work is delegated to a :class:`~repro.knn.QueryEngine`,
which batches and caches the underlying surrogate-distance vectors; a
classifier is a thin ``k``-binding view over an engine, and several
classifiers (or explanation pipelines) can share one engine.
"""

from __future__ import annotations

import warnings

import numpy as np

from .._validation import as_vector, check_odd_k
from ..exceptions import ValidationError
from ..metrics import Metric
from .dataset import Dataset
from .engine import QueryEngine, as_engine


class KNNClassifier:
    """Exact k-NN classifier with the paper's optimistic tie-breaking.

    Parameters
    ----------
    dataset:
        the labeled examples ``(S+, S-)``.
    k:
        positive odd integer; must not exceed ``len(dataset)``.
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default Euclidean, or Hamming
        when the dataset is discrete).
    engine:
        an existing :class:`QueryEngine` over the same dataset to share
        its distance cache; *metric* must be None or match the engine's.
    backend:
        index backend for a freshly built engine (``"auto"`` | ``"dense"``
        | ``"kdtree"`` | ``"bitpack"``, see :class:`QueryEngine`); ignored
        when *engine* is passed.
    """

    def __init__(
        self,
        dataset: Dataset,
        k: int = 1,
        metric=None,
        *,
        engine: QueryEngine | None = None,
        backend: str = "auto",
    ):
        if not isinstance(dataset, Dataset):
            raise ValidationError("dataset must be a repro.knn.Dataset")
        self.dataset = dataset
        self.k = check_odd_k(k)
        if len(dataset) < self.k:
            raise ValidationError(
                f"the dataset must contain at least k={self.k} points "
                f"(has {len(dataset)})"
            )
        self.engine = as_engine(dataset, metric, engine, backend=backend)
        self.metric: Metric = self.engine.metric
        if dataset.discrete and not self.metric.is_discrete:
            # The paper also evaluates binarized data under continuous
            # metrics, so this is allowed — just not the default.
            warnings.warn(
                f"continuous metric {self.metric.name!r} over a discrete "
                "dataset; this is supported (the paper evaluates binarized "
                "data under lp metrics) but not the default — pass "
                "metric='hamming' for the discrete setting",
                UserWarning,
                stacklevel=2,
            )

    # -- distances ------------------------------------------------------

    @property
    def majority(self) -> int:
        """``(k+1)/2``, the number of like-labeled neighbors needed to win."""
        return (self.k + 1) // 2

    def _radii(self, x: np.ndarray) -> tuple[float, float]:
        """``(r+, r-)``: surrogate distances at which each side reaches majority."""
        return self.engine.radii(x, self.k)

    # -- classification --------------------------------------------------

    def classify(self, x) -> int:
        """Return ``f^k_{S+,S-}(x)`` as 0 or 1."""
        return self.engine.classify(x, self.k)

    def classify_batch(self, points) -> np.ndarray:
        """Vector of ``f(x)`` values for every row of *points* (batched)."""
        return self.engine.classify_batch(points, self.k)

    def margin(self, x) -> float:
        """Signed surrogate-distance margin ``r- − r+`` (positive ⇒ class 1).

        The margin is expressed in the metric's monotone surrogate units
        (squared distance for l2, p-th power for lp); its *sign* is what
        carries meaning.  A margin of exactly 0 means the optimistic
        tie-break decided the label.
        """
        xv = as_vector(x, name="x")
        return self.engine.margin(xv, self.k)

    def margins_batch(self, points) -> np.ndarray:
        """Vector of signed surrogate margins for every row of *points*."""
        return self.engine.margins_batch(points, self.k)

    def neighbors(self, x, *, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their boolean labels (multiplicity-expanded).

        Ties at the boundary are broken arbitrarily (by index); use
        :func:`~repro.knn.find_witness` for a certified neighbor set.
        """
        return self.engine.neighbors(x, self.k if k is None else int(k))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KNNClassifier(k={self.k}, metric={self.metric.name}, {self.dataset!r})"
