"""The optimistic k-NN classification function ``f^k_{S+,S-}``.

The paper defines ``f(x) = 1`` iff there is a size-k subset ``T`` of
``S+ ∪ S-`` whose majority is positive and whose members are all at
distance ``<=`` every point outside ``T`` (the *optimistic* view of
ties).  The proof of Proposition 1 gives the equivalent "ball inflation"
rule used here:

    grow a ball centered at x; classify positively iff (k+1)/2 positive
    points fall inside no later than (k+1)/2 negative points do.

Writing ``r+`` (resp. ``r-``) for the distance at which the ``(k+1)/2``-th
positive (negative) point is reached — counting multiplicities, ``+inf``
when that many points do not exist — we get ``f(x) = 1  iff  r+ <= r-``.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_vector, check_odd_k
from ..exceptions import ValidationError
from ..metrics import Metric, get_metric
from .dataset import Dataset

_EPS_REL = 1e-12


def _kth_smallest_with_multiplicity(
    values: np.ndarray, multiplicities: np.ndarray, k: int
) -> float:
    """k-th smallest element (1-based) of *values* repeated per multiplicity.

    Returns ``+inf`` when fewer than *k* elements exist in total.
    """
    if multiplicities.sum() < k:
        return np.inf
    order = np.argsort(values, kind="stable")
    running = 0
    for idx in order:
        running += int(multiplicities[idx])
        if running >= k:
            return float(values[idx])
    return np.inf  # pragma: no cover - unreachable given the sum check


class KNNClassifier:
    """Exact k-NN classifier with the paper's optimistic tie-breaking.

    Parameters
    ----------
    dataset:
        the labeled examples ``(S+, S-)``.
    k:
        positive odd integer; must not exceed ``len(dataset)``.
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default Euclidean, or Hamming
        when the dataset is discrete).
    """

    def __init__(self, dataset: Dataset, k: int = 1, metric=None):
        if not isinstance(dataset, Dataset):
            raise ValidationError("dataset must be a repro.knn.Dataset")
        self.dataset = dataset
        self.k = check_odd_k(k)
        if len(dataset) < self.k:
            raise ValidationError(
                f"the dataset must contain at least k={self.k} points "
                f"(has {len(dataset)})"
            )
        if metric is None:
            metric = "hamming" if dataset.discrete else "l2"
        self.metric: Metric = get_metric(metric)
        if dataset.discrete and not self.metric.is_discrete:
            # The paper also evaluates binarized data under continuous
            # metrics, so this is allowed — just not the default.
            pass

    # -- distances ------------------------------------------------------

    @property
    def majority(self) -> int:
        """``(k+1)/2``, the number of like-labeled neighbors needed to win."""
        return (self.k + 1) // 2

    def _radii(self, x: np.ndarray) -> tuple[float, float]:
        """``(r+, r-)``: surrogate distances at which each side reaches majority."""
        ds = self.dataset
        need = self.majority
        pos_d = self.metric.powers_to(ds.positives, x)
        neg_d = self.metric.powers_to(ds.negatives, x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, ds.positive_multiplicities, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, ds.negative_multiplicities, need)
        return r_pos, r_neg

    # -- classification --------------------------------------------------

    def classify(self, x) -> int:
        """Return ``f^k_{S+,S-}(x)`` as 0 or 1."""
        xv = as_vector(x, name="x")
        if xv.shape[0] != self.dataset.dimension:
            raise ValidationError(
                f"x has dimension {xv.shape[0]}, dataset has {self.dataset.dimension}"
            )
        r_pos, r_neg = self._radii(xv)
        # Optimistic rule: ties favor the positive class.
        return 1 if r_pos <= r_neg else 0

    def classify_batch(self, points) -> np.ndarray:
        """Vector of ``f(x)`` values for every row of *points*."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        return np.array([self.classify(p) for p in pts], dtype=np.int64)

    def margin(self, x) -> float:
        """Signed surrogate-distance margin ``r- − r+`` (positive ⇒ class 1).

        The margin is expressed in the metric's monotone surrogate units
        (squared distance for l2, p-th power for lp); its *sign* is what
        carries meaning.  A margin of exactly 0 means the optimistic
        tie-break decided the label.
        """
        xv = as_vector(x, name="x")
        r_pos, r_neg = self._radii(xv)
        if np.isinf(r_pos) and np.isinf(r_neg):  # pragma: no cover - excluded by k<=|S|
            return 0.0
        if np.isinf(r_pos):
            return -np.inf
        if np.isinf(r_neg):
            return np.inf
        return float(r_neg - r_pos)

    def neighbors(self, x, *, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their boolean labels (multiplicity-expanded).

        Ties at the boundary are broken arbitrarily (by index); use
        :func:`~repro.knn.find_witness` for a certified neighbor set.
        """
        xv = as_vector(x, name="x")
        k = self.k if k is None else int(k)
        points, labels = self.dataset.all_points()
        d = self.metric.powers_to(points, xv)
        order = np.argsort(d, kind="stable")[:k]
        return points[order], labels[order]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KNNClassifier(k={self.k}, metric={self.metric.name}, {self.dataset!r})"
