"""The shared vectorized query core behind every explanation pipeline.

Every algorithm in the library — classification, abductive sufficient
reasons, counterfactual search over l1/l2/lp/Hamming — reduces to one
primitive: ranked (surrogate) distances from a query point to the
labeled sets ``S+`` and ``S-``.  :class:`QueryEngine` owns a
``(dataset, metric)`` pair and serves that primitive two ways:

* **batched** — :meth:`powers_matrix`, :meth:`radii_batch`,
  :meth:`classify_batch` and :meth:`margins_batch` evaluate whole query
  matrices through a pluggable *index backend* (see below), with no
  Python-level per-row loop; query rows are processed in memory-capped
  blocks, and :meth:`map_shards` fans row shards out to a process pool;
* **cached** — the single-point entry points (:meth:`powers`,
  :meth:`radii`, :meth:`classify`, :meth:`margin`, :meth:`neighbors`)
  share an LRU cache of per-query distance vectors plus a per-``(query,
  k)`` radii memo, so the inner loops of the greedy sufficient-reason
  algorithms and the brute/SAT counterfactual searches, which
  re-classify the same query point many times, never recompute a
  distance vector.

Streaming mutation (:meth:`add_points` / :meth:`remove_points`)
---------------------------------------------------------------

Datasets are mutable all the way down: the engine maintains each class
in amortized-doubling row stores (:class:`~repro.neighbors.brute.
GrowableMatrix`), and every mutation is applied *incrementally* to the
selected backend — the bit-packed index appends freshly packed words
and tombstones removals, the KD-trees overlay deltas until a staleness
threshold triggers a lazy rebuild, and the dense kernels simply read
the updated stores.  The caches are invalidated *surgically*: cached
distance vectors are extended (or shrunk) by exactly the rows that
changed, and a cached ``(r+, r-)`` pair is evicted only when a touched
row's power reaches inside the cached radius — a mutation outside a
query's k-neighborhood leaves its cached answer untouched.  Each
mutation bumps :attr:`version`; a mutated engine is bit-identical to an
engine freshly built from :attr:`dataset` (the randomized differential
harness in ``tests/test_fuzz_parity.py`` enforces this per backend).

Index backends (``backend=`` — the :mod:`repro.neighbors` layer)
----------------------------------------------------------------

The paper's experimental section credits "a library for fast
NN-classification such as FAISS" as key to performance; the engine's
batch path is correspondingly backend-pluggable:

``"dense"``
    the metric's broadcast kernels (BLAS Gram expansions for l2 and
    Hamming) — the default workhorse at the paper's dimensionalities;
``"bitpack"``
    :class:`~repro.neighbors.BitPackedHammingIndex`: packed-word
    XOR/popcount Hamming distances, bit-identical to the dense kernel
    on binary data and several times faster (FAISS's binary-index
    technique);
``"kdtree"``
    per-class :class:`~repro.neighbors.LazyKDTree` branch-and-bound —
    wins only at very low dimension over large datasets, where pruning
    beats the O(|S|) scan;
``"ivf"``
    per-class :class:`~repro.neighbors.IVFIndex` — certified
    inverted-file search (FAISS's IVF plan made exact by a
    triangle-inequality certificate with a full-scan fallback); wins
    at large point counts when the data is clustered, never wrong
    anywhere (the ``million_point`` headline measures the win at 10^6
    points);
``"auto"``
    bitpack for binary Hamming data, KD-tree for low-dimensional lp
    over large datasets, dense otherwise (thresholds measured in
    ``benchmarks/bench_ablation_nn_index.py``).  IVF is *not*
    auto-selected: whether its certificate holds often enough to win
    depends on cluster structure the auto rule cannot see cheaply, and
    on unclustered data every query would pay the fallback scan.

Every backend implements the same optimistic semantics; on
integer-valued data the results are bit-identical across backends (the
parity suite in ``tests/test_backends.py`` enforces this), so backend
choice is purely a performance decision.

The ``(r+, r-)`` radii implement the ball-inflation rule of
Proposition 1: ``r+`` (``r-``) is the surrogate distance at which the
``(k+1)/2``-th positive (negative) point is reached, counting
multiplicities, ``+inf`` when that many points do not exist, and
``f(x) = 1 iff r+ <= r-`` (optimistic ties favor the positive class).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .._validation import as_matrix, as_vector, check_multiplicities, check_odd_k
from ..exceptions import ValidationError
from ..metrics import HammingMetric, LpMetric, Metric, default_metric_name, get_metric
from ..metrics.hamming import is_binary
from ..neighbors.brute import GrowableMatrix
from .dataset import Dataset

#: cap on the number of float64 elements of a (block, dataset) surrogate
#: matrix held at once while reducing radii for a batch of queries.
_BLOCK_ELEMENTS = 1 << 22

#: the engine's index strategies (see the module docstring).
BACKENDS = ("auto", "dense", "kdtree", "bitpack", "ivf")

#: batch methods :meth:`QueryEngine.map_shards` can fan out.
_SHARD_METHODS = (
    "classify_batch",
    "margins_batch",
    "radii_batch",
    "powers_matrix",
    "distances_matrix",
)

#: KD-tree auto-rule thresholds: the per-query branch-and-bound (a
#: Python-level traversal) only beats one vectorized O(|S|) kernel pass
#: at very low dimension over large point sets (measured crossover:
#: ~12k points at dimension 3; hopeless by dimension 8).
_KDTREE_AUTO_MAX_DIM = 4
_KDTREE_AUTO_MIN_POINTS = 16_384

#: tombstone share of the bit-packed index's storage beyond which the
#: engine compacts it (reclaiming both memory and kernel columns).
_BITPACK_COMPACT_FRACTION = 0.5


def _kth_smallest_with_multiplicity(
    values: np.ndarray, multiplicities: np.ndarray, k: int
) -> float:
    """k-th smallest element (1-based) of *values* repeated per multiplicity.

    Returns ``+inf`` when fewer than *k* elements exist in total.
    """
    if multiplicities.sum() < k:
        return np.inf
    order = np.argsort(values, kind="stable")
    running = 0
    for idx in order:
        running += int(multiplicities[idx])
        if running >= k:
            return float(values[idx])
    return np.inf  # pragma: no cover - unreachable given the sum check


def _kth_smallest_batch(
    values: np.ndarray, multiplicities: np.ndarray, k: int, *, plain: bool
) -> np.ndarray:
    """Row-wise k-th smallest with multiplicities for a (q, m) matrix.

    *plain* marks the (common) multiplicity-free case, where a partial
    sort suffices; otherwise a stable full sort plus a cumulative sum of
    multiplicities reproduces :func:`_kth_smallest_with_multiplicity`
    exactly.  Works on integer-count matrices (the bitpack backend) as
    well as float64 surrogates.
    """
    q = values.shape[0]
    if values.shape[1] == 0 or multiplicities.sum() < k:
        return np.full(q, np.inf)
    if plain:
        return np.partition(values, k - 1, axis=1)[:, k - 1]
    order = np.argsort(values, axis=1, kind="stable")
    running = np.cumsum(multiplicities[order], axis=1)
    first = np.argmax(running >= k, axis=1)
    picked = np.take_along_axis(order, first[:, None], axis=1)[:, 0]
    return values[np.arange(q), picked]


def _vote_weights(sel_powers: np.ndarray, metric) -> np.ndarray:
    """Distance-vote weight matrix for ``(q, k)`` selected powers.

    Each neighbor weighs ``1 / d`` in *true* distance.  A query that
    hits a training point exactly (power 0) makes the inverse diverge,
    so the standard limit rule applies: the zero-distance neighbors get
    weight 1 and every other neighbor weight 0 — the exact hits decide
    the vote alone.  Both the engines and the definition-based reference
    implementations route through this one function, so the weighted
    sums they compare are term-for-term identical.
    """
    zero = sel_powers == 0
    with np.errstate(divide="ignore"):
        weights = 1.0 / metric._power_to_distance(sel_powers)
    exact = zero.any(axis=1)
    weights[exact] = 0.0
    weights[zero] = 1.0
    return weights


def _shard_call(engine: "QueryEngine", method: str, shard: np.ndarray, k):
    """Module-level worker for :meth:`QueryEngine.map_shards` (picklable)."""
    fn = getattr(engine, method)
    return fn(shard, k) if k is not None else fn(shard)


class QueryEngine:
    """Vectorized, cached batch query primitives over ``(dataset, metric)``.

    Parameters
    ----------
    dataset:
        the labeled examples ``(S+, S-)`` — the *initial* contents;
        :meth:`add_points` / :meth:`remove_points` mutate the engine in
        place afterwards (:attr:`dataset` always reflects the current
        contents).
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default Euclidean, or Hamming
        when the dataset is discrete).
    cache_size:
        number of per-query surrogate-distance vectors (and cached
        radii pairs) kept in the LRU caches (0 disables caching).
    backend:
        index strategy for the batch primitives: ``"auto"`` (default),
        ``"dense"``, ``"kdtree"``, ``"bitpack"`` or ``"ivf"`` — see the
        module docstring.  ``"bitpack"`` requires the Hamming metric
        over strictly binary data; ``"kdtree"`` and ``"ivf"`` require
        an lp or Hamming metric.
    """

    def __init__(
        self,
        dataset: Dataset,
        metric=None,
        *,
        cache_size: int = 1024,
        backend: str = "auto",
    ):
        if not isinstance(dataset, Dataset):
            raise ValidationError("dataset must be a repro.knn.Dataset")
        if metric is None:
            metric = default_metric_name(dataset.discrete)
        self.metric: Metric = get_metric(metric)
        self._dim = dataset.dimension
        self._discrete = dataset.discrete
        self._pos_store = GrowableMatrix(
            np.ascontiguousarray(dataset.positives, dtype=np.float64)
        )
        self._neg_store = GrowableMatrix(
            np.ascontiguousarray(dataset.negatives, dtype=np.float64)
        )
        self._pos_mult_store = GrowableMatrix(
            np.asarray(dataset.positive_multiplicities, dtype=np.int64)
        )
        self._neg_mult_store = GrowableMatrix(
            np.asarray(dataset.negative_multiplicities, dtype=np.int64)
        )
        self._refresh_views()
        self._pos_lookup = self._build_lookup(self._pos)
        self._neg_lookup = self._build_lookup(self._neg)
        self._cache: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._radii_cache: OrderedDict[tuple[bytes, int], tuple[float, float]] = (
            OrderedDict()
        )
        self._cache_size = max(0, int(cache_size))
        self._hits = 0
        self._misses = 0
        self.version = 0
        self._snapshot: Dataset | None = dataset
        self._requested_backend = backend
        self.backend = self._resolve_backend(backend)
        # The dense batch kernels run over one *joint* matrix (one BLAS
        # call beats two half-sized ones); rows live in append order and
        # the per-class column maps recover the positives-first split —
        # by plain slicing while the layout is still [S+|S-] contiguous,
        # by a gather once mutations interleaved the classes.
        self._dense_store = GrowableMatrix(np.vstack([self._pos, self._neg]))
        m_pos = self._pos.shape[0]
        self._dense_pos_cols = np.arange(m_pos, dtype=np.int64)
        self._dense_neg_cols = np.arange(
            m_pos, m_pos + self._neg.shape[0], dtype=np.int64
        )
        self._dense_plain = True
        self._bit_index = None
        self._bit_pos_cols = None
        self._bit_neg_cols = None
        self._bit_plain = True
        self._pos_tree = None
        self._neg_tree = None
        self._pos_ivf = None
        self._neg_ivf = None
        self._build_index_layer()

    # -- internal views ---------------------------------------------------

    def _refresh_views(self) -> None:
        """Re-derive the read-only class views after store mutation."""
        self._pos = self._pos_store.view
        self._neg = self._neg_store.view
        self._pos_mult = self._pos_mult_store.view
        self._neg_mult = self._neg_mult_store.view
        self._pos_plain = bool(np.all(self._pos_mult == 1))
        self._neg_plain = bool(np.all(self._neg_mult == 1))
        self._total = int(self._pos_mult.sum() + self._neg_mult.sum())

    #: row bytes → row index, last duplicate wins — the ONE definition
    #: (Dataset's) both mutation implementations share, because the tie
    #: rule is load-bearing for the engine ≡ functional-fold parity the
    #: fuzz harness pins.
    _build_lookup = staticmethod(Dataset._row_lookup)

    @staticmethod
    def _cols_plain(pos_cols: np.ndarray, neg_cols: np.ndarray, total: int) -> bool:
        """Whether a joint layout is still the contiguous [S+|S-] split.

        True iff the column maps tile ``0..total-1`` positives-first with
        no dead slots — the case where the batch paths split the joint
        kernel output with free slices instead of gathers.
        """
        m_pos = pos_cols.shape[0]
        return (
            m_pos + neg_cols.shape[0] == total
            and bool(np.array_equal(pos_cols, np.arange(m_pos)))
            and bool(np.array_equal(neg_cols, np.arange(m_pos, total)))
        )

    @property
    def dataset(self) -> Dataset:
        """The engine's current contents as an (immutable) Dataset.

        The snapshot is materialized lazily after a mutation and cached
        until the next one, so repeated access (and the identity check
        in :func:`as_engine`) stays cheap between mutations.
        """
        if self._snapshot is None:
            self._snapshot = Dataset(
                np.array(self._pos),
                np.array(self._neg),
                positive_multiplicities=np.array(self._pos_mult),
                negative_multiplicities=np.array(self._neg_mult),
                discrete=self._discrete,
            )
        return self._snapshot

    # -- backend selection ----------------------------------------------

    def _data_is_binary(self) -> bool:
        """Whether every current point is strictly 0/1."""
        return is_binary(self._pos) and is_binary(self._neg)

    def _resolve_backend(self, backend: str) -> str:
        if backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {'|'.join(BACKENDS)}, got {backend!r}"
            )
        if backend == "bitpack":
            from ..neighbors.bitpack import HAVE_BITWISE_COUNT

            if not isinstance(self.metric, HammingMetric):
                raise ValidationError(
                    f"backend='bitpack' requires the Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            if not self._data_is_binary():
                raise ValidationError(
                    "backend='bitpack' requires strictly binary (0/1) data"
                )
            if not HAVE_BITWISE_COUNT:  # pragma: no cover - numpy >= 2 in CI
                raise ValidationError(
                    "backend='bitpack' requires numpy >= 2.0 (np.bitwise_count)"
                )
            return backend
        if backend in ("kdtree", "ivf"):
            if not isinstance(self.metric, (LpMetric, HammingMetric)):
                raise ValidationError(
                    f"backend={backend!r} requires an lp or Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            return backend
        if backend == "auto":
            return self._auto_backend()
        return backend

    def _auto_backend(self) -> str:
        """Pick the fastest exact backend for this ``(dataset, metric)``.

        Mirrors :func:`repro.neighbors.build_index` adapted to the batch
        setting: the bit-packed popcount index for binary Hamming data;
        the KD-tree only where its Python-level traversal actually beats
        one vectorized kernel pass (very low dimension, large dataset);
        dense broadcast kernels otherwise.
        """
        from ..neighbors.bitpack import HAVE_BITWISE_COUNT

        if (
            HAVE_BITWISE_COUNT
            and isinstance(self.metric, HammingMetric)
            and self._data_is_binary()
        ):
            return "bitpack"
        if (
            isinstance(self.metric, LpMetric)
            and self._dim <= _KDTREE_AUTO_MAX_DIM
            and self._total >= _KDTREE_AUTO_MIN_POINTS
        ):
            return "kdtree"
        return "dense"

    def _build_index_layer(self) -> None:
        """Materialize the selected backend's index structures."""
        if self.backend == "bitpack":
            from ..neighbors.bitpack import BitPackedHammingIndex

            m_pos = self._pos.shape[0]
            self._bit_index = BitPackedHammingIndex(
                np.vstack([self._pos, self._neg]), self.metric
            )
            self._bit_pos_cols = np.arange(m_pos, dtype=np.int64)
            self._bit_neg_cols = np.arange(
                m_pos, m_pos + self._neg.shape[0], dtype=np.int64
            )
        elif self.backend == "kdtree":
            from ..neighbors.kdtree import LazyKDTree

            # Per-class trees over multiplicity-expanded points: the
            # need-th neighbor of the expanded set equals the k-th
            # smallest with multiplicities of the unique rows.
            pos = np.repeat(self._pos, self._pos_mult, axis=0)
            neg = np.repeat(self._neg, self._neg_mult, axis=0)
            self._pos_tree = LazyKDTree(pos, self.metric)
            self._neg_tree = LazyKDTree(neg, self.metric)
        elif self.backend == "ivf":
            self._ensure_ivf()

    def _ensure_ivf(self) -> None:
        """Build the per-class IVF indexes that are missing.

        Same multiplicity-expanded-row convention as the KD-trees.  A
        class that is (still) empty keeps ``None`` — one may be empty
        at construction, and :meth:`add_points` promotes it to a real
        index the moment its first row arrives.
        """
        from ..neighbors.ivf import IVFIndex

        if self._pos_ivf is None and self._pos.shape[0]:
            pos = np.repeat(self._pos, self._pos_mult, axis=0)
            self._pos_ivf = IVFIndex(pos, self.metric)
        if self._neg_ivf is None and self._neg.shape[0]:
            neg = np.repeat(self._neg, self._neg_mult, axis=0)
            self._neg_ivf = IVFIndex(neg, self.metric)

    # -- streaming mutation ----------------------------------------------

    def check_mutation(self, points, labels, multiplicities=None, *, op: str = "add"):
        """Validate a mutation batch **without applying it**.

        Raises exactly when the matching :meth:`add_points` /
        :meth:`remove_points` (``op`` = ``"add"`` / ``"remove"``) call
        would; callers coordinating several engines over one dataset
        (the serve layer) pre-validate against all of them so a refusal
        can never leave the engines half-mutated.  Returns the
        normalized ``(points, labels, multiplicities)`` triple.
        """
        pts = as_matrix(points, name="points", dimension=self._dim)
        if pts.shape[0] == 0:
            raise ValidationError("a mutation batch must contain at least one point")
        lab = np.asarray(labels).astype(bool).ravel()
        if lab.shape[0] != pts.shape[0]:
            raise ValidationError(
                f"labels has length {lab.shape[0]}, expected {pts.shape[0]}"
            )
        mult = check_multiplicities(multiplicities, pts.shape[0], name="multiplicities")
        if self._discrete and not is_binary(pts):
            raise ValidationError(
                "points must contain only 0/1 entries for the discrete setting"
            )
        pts = np.ascontiguousarray(pts)
        if op == "add":
            # An *explicitly requested* bitpack backend is a contract:
            # reject data it cannot pack.  An auto-selected one degrades
            # to the dense kernels instead (see add_points).
            if (
                self._bit_index is not None
                and self._requested_backend != "auto"
                and not is_binary(pts)
            ):
                raise ValidationError(
                    "backend='bitpack' requires strictly binary (0/1) points; "
                    "rebuild the engine with backend='dense' for general data"
                )
        elif op == "remove":
            self._validate_removal(pts, lab, mult)
        else:
            raise ValidationError(f"op must be 'add' or 'remove', got {op!r}")
        return pts, lab, mult

    def _validate_removal(self, pts, lab, mult) -> dict[tuple[bool, int], int]:
        """Check a removal batch is satisfiable; returns per-row totals."""
        requested: dict[tuple[bool, int], int] = {}
        for row, m, flag in zip(pts, mult, lab):
            flag = bool(flag)
            _, mult_store, lookup = self._class_state(flag)
            idx = lookup.get(row.tobytes())
            side = "positives" if flag else "negatives"
            if idx is None:
                raise ValidationError(
                    f"cannot remove a point absent from the {side}: {row.tolist()}"
                )
            requested[(flag, idx)] = requested.get((flag, idx), 0) + int(m)
        for (flag, idx), m in requested.items():
            _, mult_store, _ = self._class_state(flag)
            have = int(mult_store.view[idx])
            if have < m:
                side = "positives" if flag else "negatives"
                raise ValidationError(
                    f"cannot remove {m} cop(ies) of a point with "
                    f"multiplicity {have} in the {side}"
                )
        if self._total - int(mult.sum()) <= 0:
            raise ValidationError("cannot remove the last point of a dataset")
        return requested

    def _degrade_bitpack_to_dense(self) -> None:
        """Drop the packed index: the data outgrew what bitpack can serve.

        Only reachable for an auto-selected backend (an explicit
        ``backend="bitpack"`` rejects non-binary batches instead).  The
        joint dense store is maintained at all times, so degrading is
        free — the batch paths simply stop routing through popcounts.
        """
        self._bit_index = None
        self._bit_pos_cols = None
        self._bit_neg_cols = None
        self._bit_plain = True
        self.backend = "dense"

    def _class_state(self, positive: bool):
        """The (store, mult_store, lookup) triple of one class."""
        if positive:
            return self._pos_store, self._pos_mult_store, self._pos_lookup
        return self._neg_store, self._neg_mult_store, self._neg_lookup

    def add_points(self, points, labels, multiplicities=None) -> int:
        """Insert labeled points in place; returns the new :attr:`version`.

        Canonical streaming semantics (shared with
        :meth:`Dataset.with_added <repro.knn.dataset.Dataset.with_added>`):
        a point already present in its class gets its multiplicity
        incremented, a new point is appended at the end of its class,
        and existing row order is preserved.  The backend index absorbs
        the change incrementally, cached distance vectors are *extended*
        by the new rows, and cached radii are evicted only when a new
        point lands inside the cached ball.
        """
        pts, lab, mult = self.check_mutation(points, labels, multiplicities, op="add")
        if self._bit_index is not None and not is_binary(pts):
            self._degrade_bitpack_to_dense()
        appended: dict[bool, list[int]] = {True: [], False: []}
        touched: dict[bool, list[np.ndarray]] = {True: [], False: []}
        for row, m, flag in zip(pts, mult, lab):
            flag = bool(flag)
            store, mult_store, lookup = self._class_state(flag)
            key = row.tobytes()
            idx = lookup.get(key)
            if idx is None:
                idx = len(store)
                store.append(row.reshape(1, -1))
                mult_store.append(np.array([m], dtype=np.int64))
                lookup[key] = idx
                appended[flag].append(idx)
            else:
                mult_store.assign(idx, int(mult_store.view[idx]) + int(m))
            touched[flag].append(row)
            if self._pos_tree is not None:
                tree = self._pos_tree if flag else self._neg_tree
                tree.add(row, int(m))
            if self.backend == "ivf":
                ivf = self._pos_ivf if flag else self._neg_ivf
                if ivf is not None:
                    ivf.add(row, int(m))
        self._refresh_views()
        if self.backend == "ivf":
            # A class that was empty until this batch gets its index now.
            self._ensure_ivf()
        new_pos = self._pos[appended[True]] if appended[True] else None
        new_neg = self._neg[appended[False]] if appended[False] else None
        for rows, positive in ((new_pos, True), (new_neg, False)):
            if rows is None:
                continue
            start = len(self._dense_store)
            self._dense_store.append(rows)
            slots = np.arange(start, start + rows.shape[0], dtype=np.int64)
            if positive:
                self._dense_pos_cols = np.concatenate([self._dense_pos_cols, slots])
            else:
                self._dense_neg_cols = np.concatenate([self._dense_neg_cols, slots])
            if self._bit_index is not None:
                bit_slots = self._bit_index.append(rows)
                if positive:
                    self._bit_pos_cols = np.concatenate(
                        [self._bit_pos_cols, bit_slots]
                    )
                else:
                    self._bit_neg_cols = np.concatenate(
                        [self._bit_neg_cols, bit_slots]
                    )
        self._refresh_layout_flags()
        self._extend_distance_cache(new_pos, new_neg)
        self._invalidate_radii(
            np.vstack(touched[True]) if touched[True] else None,
            np.vstack(touched[False]) if touched[False] else None,
        )
        return self._bump_version()

    def remove_points(self, points, labels, multiplicities=None) -> int:
        """Remove labeled points in place; returns the new :attr:`version`.

        The mirror of :meth:`add_points`: every listed point must exist
        in its class with at least the requested multiplicity, and
        removing the engine's last point is rejected — validation runs
        up front, so a failed call leaves the engine untouched.  Rows
        whose multiplicity reaches zero are compacted out of the stores
        (order preserved), tombstoned in the bit-packed index, and
        overlaid as deletions on the KD-trees; cached distance vectors
        shrink by exactly the dropped rows, and cached radii are evicted
        only when a removed point sat inside the cached ball.
        """
        pts, lab, mult = self.check_mutation(points, labels, multiplicities, op="remove")
        requested = self._validate_removal(pts, lab, mult)
        # Apply pass: decrement multiplicities, then compact dead rows.
        touched: dict[bool, list[np.ndarray]] = {True: [], False: []}
        for (flag, idx), m in requested.items():
            _, mult_store, _ = self._class_state(flag)
            mult_store.assign(idx, int(mult_store.view[idx]) - m)
            touched[flag].append(np.array(self._class_state(flag)[0].view[idx]))
        if self._pos_tree is not None:
            for row, m, flag in zip(pts, mult, lab):
                tree = self._pos_tree if flag else self._neg_tree
                tree.remove(row, int(m))
        if self.backend == "ivf":
            # Validation guaranteed each row exists in its class, so the
            # class index cannot be None here.
            for row, m, flag in zip(pts, mult, lab):
                ivf = self._pos_ivf if flag else self._neg_ivf
                ivf.remove(row, int(m))
        dead: dict[bool, np.ndarray] = {}
        for flag in (True, False):
            store, mult_store, _ = self._class_state(flag)
            dead_idx = np.flatnonzero(mult_store.view == 0)
            dead[flag] = dead_idx
            if dead_idx.size:
                store.delete(dead_idx)
                mult_store.delete(dead_idx)
                if flag:
                    self._pos_lookup = self._build_lookup(store.view)
                else:
                    self._neg_lookup = self._build_lookup(store.view)
        dead_cols = np.concatenate(
            [self._dense_pos_cols[dead[True]], self._dense_neg_cols[dead[False]]]
        )
        if dead_cols.size:
            keep = np.ones(len(self._dense_store), dtype=bool)
            keep[dead_cols] = False
            mapping = np.cumsum(keep, dtype=np.int64) - 1
            self._dense_store.delete(dead_cols)
            self._dense_pos_cols = mapping[np.delete(self._dense_pos_cols, dead[True])]
            self._dense_neg_cols = mapping[np.delete(self._dense_neg_cols, dead[False])]
        if self._bit_index is not None:
            if dead[True].size:
                self._bit_index.tombstone(self._bit_pos_cols[dead[True]])
                self._bit_pos_cols = np.delete(self._bit_pos_cols, dead[True])
            if dead[False].size:
                self._bit_index.tombstone(self._bit_neg_cols[dead[False]])
                self._bit_neg_cols = np.delete(self._bit_neg_cols, dead[False])
            if self._bit_index.dead_fraction > _BITPACK_COMPACT_FRACTION:
                mapping = self._bit_index.compact()
                self._bit_pos_cols = mapping[self._bit_pos_cols]
                self._bit_neg_cols = mapping[self._bit_neg_cols]
        self._refresh_layout_flags()
        self._refresh_views()
        self._shrink_distance_cache(dead[True], dead[False])
        self._invalidate_radii(
            np.vstack(touched[True]) if touched[True] else None,
            np.vstack(touched[False]) if touched[False] else None,
        )
        return self._bump_version()

    def _bump_version(self) -> int:
        """Invalidate the dataset snapshot and advance the version counter."""
        self._snapshot = None
        self.version += 1
        return self.version

    def _refresh_layout_flags(self) -> None:
        """Re-check whether the joint layouts still admit plain slicing."""
        self._dense_plain = self._cols_plain(
            self._dense_pos_cols, self._dense_neg_cols, len(self._dense_store)
        )
        if self._bit_index is not None:
            self._bit_plain = self._cols_plain(
                self._bit_pos_cols, self._bit_neg_cols, self._bit_index.storage_size
            )

    # -- targeted cache maintenance ---------------------------------------

    def _extend_distance_cache(self, new_pos, new_neg) -> None:
        """Append the new rows' powers to every cached distance vector.

        The metric kernels are row-independent, so extending a cached
        vector is bit-identical to recomputing it against the grown
        class — the cache stays warm across inserts instead of being
        flushed.
        """
        if not self._cache or (new_pos is None and new_neg is None):
            return
        for key, (pos_d, neg_d) in self._cache.items():
            x = np.frombuffer(key, dtype=np.float64)
            if new_pos is not None:
                pos_d = np.concatenate([pos_d, self.metric.powers_to(new_pos, x)])
                pos_d.setflags(write=False)
            if new_neg is not None:
                neg_d = np.concatenate([neg_d, self.metric.powers_to(new_neg, x)])
                neg_d.setflags(write=False)
            self._cache[key] = (pos_d, neg_d)

    def _shrink_distance_cache(self, dead_pos: np.ndarray, dead_neg: np.ndarray) -> None:
        """Drop the removed rows' entries from every cached distance vector."""
        if not self._cache or (dead_pos.size == 0 and dead_neg.size == 0):
            return
        for key, (pos_d, neg_d) in self._cache.items():
            if dead_pos.size:
                pos_d = np.delete(pos_d, dead_pos)
                pos_d.setflags(write=False)
            if dead_neg.size:
                neg_d = np.delete(neg_d, dead_neg)
                neg_d.setflags(write=False)
            self._cache[key] = (pos_d, neg_d)

    def _invalidate_radii(self, pos_rows, neg_rows) -> None:
        """Evict exactly the cached radii the touched rows can change.

        Proposition 1's radii are k-th order statistics, so a row whose
        surrogate power to the cached query is strictly greater than the
        cached class radius cannot move that radius no matter how its
        multiplicity changed; only entries where a touched row reaches
        inside (or onto) the cached ball — or where the radius is
        ``+inf`` and the class gained mass — are evicted.
        """
        if not self._radii_cache or (pos_rows is None and neg_rows is None):
            return
        for rkey in list(self._radii_cache):
            r_pos, r_neg = self._radii_cache[rkey]
            x = np.frombuffer(rkey[0], dtype=np.float64)
            evict = False
            if pos_rows is not None:
                evict = np.isinf(r_pos) or bool(
                    (self.metric.powers_to(pos_rows, x) <= r_pos).any()
                )
            if not evict and neg_rows is not None:
                evict = np.isinf(r_neg) or bool(
                    (self.metric.powers_to(neg_rows, x) <= r_neg).any()
                )
            if evict:
                del self._radii_cache[rkey]

    # -- distances ------------------------------------------------------

    def powers(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Cached surrogate-distance vectors ``(to S+, to S-)`` for one query.

        The returned arrays are read-only views owned by the cache.
        """
        xv = self._check_query(x)
        key = xv.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return cached
        self._misses += 1
        pos_d = self.metric.powers_to(self._pos, xv)
        neg_d = self.metric.powers_to(self._neg, xv)
        pos_d.setflags(write=False)
        neg_d.setflags(write=False)
        if self._cache_size:
            self._cache[key] = (pos_d, neg_d)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return pos_d, neg_d

    def _class_power_blocks(self, pts_block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backend-routed ``(to S+, to S-)`` surrogate blocks for query rows.

        One joint kernel pass over the whole storage (a single popcount
        or BLAS call — integer counts under bitpack, cheaper to
        partition), split into the two classes by free slices while the
        layout is still plain and by a column gather after interleaving
        mutations.  Values agree bit for bit with :meth:`powers` either
        way.  Non-binary query rows fall back to the dense kernel under
        bitpack, preserving results (the packed index only accepts
        {0,1} queries).
        """
        m_pos = self._pos.shape[0]
        if self._bit_index is not None and is_binary(pts_block):
            counts = self._bit_index.counts_matrix(pts_block)
            if self._bit_plain:
                return counts[:, :m_pos], counts[:, m_pos:]
            return counts[:, self._bit_pos_cols], counts[:, self._bit_neg_cols]
        powers = self.metric.powers_matrix(pts_block, self._dense_store.view)
        if self._dense_plain:
            return powers[:, :m_pos], powers[:, m_pos:]
        return powers[:, self._dense_pos_cols], powers[:, self._dense_neg_cols]

    def powers_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` surrogate matrix, positives first.

        One vectorized kernel call per memory-capped row block, routed
        through the selected backend (the KD-tree backend falls back to
        the dense kernel here — a tree cannot beat a full-matrix scan);
        row ``i`` agrees with ``np.concatenate(self.powers(points[i]))``
        — bit for bit on integer-valued data, up to roundoff on general
        floats (see :meth:`~repro.metrics.Metric.powers_matrix`).
        """
        pts = self._check_queries(points)
        if self._bit_index is not None and is_binary(pts):
            if self._bit_plain:
                return self._bit_index.counts_matrix(pts).astype(np.float64)
        elif self._dense_plain:
            return self.metric.powers_matrix(pts, self._dense_store.view)
        pos_p, neg_p = self._class_power_blocks(pts)
        return np.hstack(
            [
                np.asarray(pos_p, dtype=np.float64),
                np.asarray(neg_p, dtype=np.float64),
            ]
        )

    def distances_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` true-distance matrix, positives first."""
        pts = self._check_queries(points)
        return np.hstack(
            [
                self.metric.distances_matrix(pts, self._pos),
                self.metric.distances_matrix(pts, self._neg),
            ]
        )

    # -- radii (Proposition 1 ball inflation) ---------------------------

    def radii(self, x, k: int) -> tuple[float, float]:
        """``(r+, r-)`` for one query, served from the radii/distance caches."""
        need = self._need(k)
        xv = self._check_query(x)
        rkey = (xv.tobytes(), need)
        cached = self._radii_cache.get(rkey)
        if cached is not None:
            self._hits += 1
            self._radii_cache.move_to_end(rkey)
            return cached
        pos_d, neg_d = self.powers(xv)
        r_pos = _kth_smallest_with_multiplicity(pos_d, self._pos_mult, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, self._neg_mult, need)
        if self._cache_size:
            self._radii_cache[rkey] = (r_pos, r_neg)
            if len(self._radii_cache) > self._cache_size:
                self._radii_cache.popitem(last=False)
        return r_pos, r_neg

    def radii_batch(self, points, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(r+, r-)`` arrays for every row of *points*."""
        need = self._need(k)
        pts = self._check_queries(points)
        if self.backend == "kdtree":
            return self._radii_batch_kdtree(pts, need)
        if self.backend == "ivf":
            return self._radii_batch_ivf(pts, need)
        q = pts.shape[0]
        r_pos = np.empty(q)
        r_neg = np.empty(q)
        cols = max(1, self._pos.shape[0] + self._neg.shape[0])
        rows = max(1, _BLOCK_ELEMENTS // cols)
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            pos_p, neg_p = self._class_power_blocks(pts[block])
            r_pos[block] = _kth_smallest_batch(
                pos_p, self._pos_mult, need, plain=self._pos_plain
            )
            r_neg[block] = _kth_smallest_batch(
                neg_p, self._neg_mult, need, plain=self._neg_plain
            )
        return r_pos, r_neg

    def _radii_batch_kdtree(
        self, pts: np.ndarray, need: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-class branch-and-bound radii (the KD-tree backend)."""
        r_pos = self._pos_tree.kth_power_batch(pts, need)
        r_neg = self._neg_tree.kth_power_batch(pts, need)
        return r_pos, r_neg

    def _radii_batch_ivf(
        self, pts: np.ndarray, need: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-class certified inverted-file radii (the IVF backend).

        An empty class (``None`` index, or one whose rows were all
        tombstoned) contributes ``+inf``, matching the
        :func:`_kth_smallest_with_multiplicity` convention.
        """
        q = pts.shape[0]
        r_pos = (
            self._pos_ivf.kth_power_batch(pts, need)
            if self._pos_ivf is not None
            else np.full(q, np.inf)
        )
        r_neg = (
            self._neg_ivf.kth_power_batch(pts, need)
            if self._neg_ivf is not None
            else np.full(q, np.inf)
        )
        return r_pos, r_neg

    def ivf_stats(self) -> dict:
        """Summed certify/fallback/requantize counters of the IVF backend.

        All zeros for other backends (the counters only advance when
        IVF indexes serve queries).
        """
        totals = {"certified": 0, "fallback": 0, "requantized": 0}
        for index in (self._pos_ivf, self._neg_ivf):
            if index is not None:
                for key in totals:
                    totals[key] += index.stats[key]
        return totals

    # -- classification and margins -------------------------------------

    def classify(self, x, k: int, *, vote: str = "uniform") -> int:
        """``f^k_{S+,S-}(x)`` as 0 or 1 (cached single-query path).

        ``vote="uniform"`` is the paper's optimistic rule (``r+ <= r-``);
        ``vote="distance"`` weighs each of the k nearest points by its
        inverse true distance (exact hits dominate), ties toward the
        positive class — the distance-weighted kNN variant, validated
        against :func:`repro.knn.reference.classify_weighted_by_definition`.
        """
        if vote == "distance":
            return int(
                self._classify_batch_weighted(
                    self._check_query(x).reshape(1, -1), k
                )[0]
            )
        if vote != "uniform":
            raise ValidationError(
                f"vote must be 'uniform' or 'distance', got {vote!r}"
            )
        r_pos, r_neg = self.radii(x, k)
        return 1 if r_pos <= r_neg else 0

    def classify_batch(self, points, k: int, *, vote: str = "uniform") -> np.ndarray:
        """Vector of ``f(x)`` values for every row of *points*.

        Same *vote* modes as :meth:`classify`.
        """
        if vote == "distance":
            return self._classify_batch_weighted(self._check_queries(points), k)
        if vote != "uniform":
            raise ValidationError(
                f"vote must be 'uniform' or 'distance', got {vote!r}"
            )
        r_pos, r_neg = self.radii_batch(points, k)
        return (r_pos <= r_neg).astype(np.int64)

    def _classify_batch_weighted(self, pts: np.ndarray, k: int) -> np.ndarray:
        """Distance-weighted vote over the k nearest expanded points.

        Selection ties at the k-th distance break by expanded canonical
        index (positives first — the same order :meth:`neighbors` uses),
        and a tied weight sum goes to the positive class, consistent
        with the optimistic rule.  All backends route through the joint
        kernel pass here (a tree cannot enumerate the k nearest faster
        than one vectorized scan at these scales).
        """
        self._need(k)  # validates odd k and k <= total
        q = pts.shape[0]
        out = np.empty(q, dtype=np.int64)
        n_pos_expanded = int(self._pos_mult.sum())
        rows = max(1, _BLOCK_ELEMENTS // max(1, self._total))
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            pos_p, neg_p = self._class_power_blocks(pts[block])
            d = np.hstack(
                [
                    np.repeat(
                        np.asarray(pos_p, dtype=np.float64), self._pos_mult, axis=1
                    ),
                    np.repeat(
                        np.asarray(neg_p, dtype=np.float64), self._neg_mult, axis=1
                    ),
                ]
            )
            order = np.argsort(d, axis=1, kind="stable")[:, :k]
            sel_powers = np.take_along_axis(d, order, axis=1)
            sel_pos = order < n_pos_expanded
            weights = _vote_weights(sel_powers, self.metric)
            w_pos = (weights * sel_pos).sum(axis=1)
            w_neg = (weights * ~sel_pos).sum(axis=1)
            out[block] = (w_pos >= w_neg).astype(np.int64)
        return out

    def margin(self, x, k: int) -> float:
        """Signed surrogate margin ``r- − r+`` (positive ⇒ class 1)."""
        r_pos, r_neg = self.radii(x, k)
        if np.isinf(r_pos) and np.isinf(r_neg):
            return 0.0
        if np.isinf(r_pos):
            return -np.inf
        if np.isinf(r_neg):
            return np.inf
        return float(r_neg - r_pos)

    def margins_batch(self, points, k: int) -> np.ndarray:
        """Vector of signed surrogate margins for every row of *points*."""
        r_pos, r_neg = self.radii_batch(points, k)
        with np.errstate(invalid="ignore"):
            margins = r_neg - r_pos
        margins[np.isinf(r_pos) & np.isinf(r_neg)] = 0.0
        return margins

    # -- sharded batches -------------------------------------------------

    def map_shards(
        self,
        method: str,
        points,
        k: int | None = None,
        *,
        workers: int | None = None,
        min_shard_rows: int = 64,
    ):
        """Evaluate a batch method over row shards in a process pool.

        Splits *points* into up to *workers* row shards, evaluates
        ``getattr(engine, method)`` on each shard in a separate process,
        and concatenates the results — the output is identical to the
        direct call.  Worth it for query matrices large enough that the
        kernel time dominates the cost of shipping the engine to each
        worker (the engine is pickled without its distance cache).

        Parameters
        ----------
        method:
            one of ``"classify_batch"``, ``"margins_batch"``,
            ``"radii_batch"``, ``"powers_matrix"``,
            ``"distances_matrix"``.
        k:
            required for the radii-based methods, ignored otherwise.
        workers:
            process count (default ``os.cpu_count()``).  ``1`` runs the
            direct call in this process.
        min_shard_rows:
            lower bound on rows per shard; small batches degrade to the
            direct call rather than paying pool startup.
        """
        if method not in _SHARD_METHODS:
            raise ValidationError(
                f"method must be one of {'|'.join(_SHARD_METHODS)}, got {method!r}"
            )
        needs_k = method in ("classify_batch", "margins_batch", "radii_batch")
        if needs_k:
            if k is None:
                raise ValidationError(f"method {method!r} requires k")
            self._need(k)  # validate before forking
        else:
            k = None
        pts = self._check_queries(points)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, int(workers))
        n_shards = min(workers, max(1, pts.shape[0] // max(1, int(min_shard_rows))))
        if n_shards <= 1:
            return _shard_call(self, method, pts, k)
        shards = np.array_split(pts, n_shards)
        with ProcessPoolExecutor(max_workers=n_shards) as pool:
            parts = list(
                pool.map(
                    _shard_call,
                    [self] * n_shards,
                    [method] * n_shards,
                    shards,
                    [k] * n_shards,
                )
            )
        if method == "radii_batch":
            r_pos = np.concatenate([p[0] for p in parts])
            r_neg = np.concatenate([p[1] for p in parts])
            return r_pos, r_neg
        if method in ("powers_matrix", "distances_matrix"):
            return np.vstack(parts)
        return np.concatenate(parts)

    # -- neighbors -------------------------------------------------------

    def neighbors(self, x, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their boolean labels (multiplicity-expanded).

        Ties at the boundary are broken by expanded index (positives
        first), matching :meth:`Dataset.all_points` ordering.
        """
        xv = self._check_query(x)
        k = 1 if k is None else int(k)
        pos_d, neg_d = self.powers(xv)
        d = np.concatenate(
            [np.repeat(pos_d, self._pos_mult), np.repeat(neg_d, self._neg_mult)]
        )
        points, labels = self.dataset.all_points()
        order = np.argsort(d, kind="stable")[:k]
        return points[order], labels[order]

    # -- cache bookkeeping ----------------------------------------------

    def cache_info(self) -> dict:
        """``{hits, misses, size, radii_size, max_size}`` of the LRU caches.

        ``hits`` counts both distance-vector and radii-memo hits (a
        radii hit short-circuits before the distance cache is touched).
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "radii_size": len(self._radii_cache),
            "max_size": self._cache_size,
        }

    def cache_clear(self) -> None:
        """Empty both caches and reset the hit/miss counters."""
        self._cache.clear()
        self._radii_cache.clear()
        self._hits = 0
        self._misses = 0

    # -- pickling (process-pool sharding) --------------------------------

    def __getstate__(self) -> dict:
        """Pickle without caches or derived views (workers never share them)."""
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_radii_cache"] = OrderedDict()
        state["_hits"] = 0
        state["_misses"] = 0
        for view in ("_pos", "_neg", "_pos_mult", "_neg_mult"):
            state[view] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._refresh_views()

    # -- validation helpers ----------------------------------------------

    def _need(self, k: int) -> int:
        """``(k+1)/2`` after validating k against the dataset size."""
        k = check_odd_k(k)
        if self._total < k:
            raise ValidationError(
                f"the dataset must contain at least k={k} points "
                f"(has {self._total})"
            )
        return (k + 1) // 2

    def _check_query(self, x) -> np.ndarray:
        xv = as_vector(x, name="x")
        if xv.shape[0] != self._dim:
            raise ValidationError(
                f"x has dimension {xv.shape[0]}, dataset has {self._dim}"
            )
        return np.ascontiguousarray(xv)

    def _check_queries(self, points) -> np.ndarray:
        pts = as_matrix(points, name="points", dimension=self._dim)
        return pts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(metric={self.metric.name}, backend={self.backend}, "
            f"version={self.version}, {self.dataset!r})"
        )


def as_engine(
    dataset: Dataset, metric, engine: QueryEngine | None, *, backend: str = "auto"
) -> QueryEngine:
    """Resolve the optional ``engine=`` argument of the pipeline entry points.

    Returns *engine* after checking it serves the same dataset and
    metric; builds a fresh one (with the requested *backend*) when None.
    A mutated engine's :attr:`~QueryEngine.dataset` snapshot is the
    object to pass here — it is stable between mutations.
    """
    if engine is None:
        return QueryEngine(dataset, metric, backend=backend)
    if not isinstance(engine, QueryEngine):
        raise ValidationError("engine must be a repro.knn.QueryEngine")
    if engine.dataset is not dataset:
        raise ValidationError("engine was built for a different dataset")
    if metric is not None and engine.metric.name != get_metric(metric).name:
        raise ValidationError(
            f"engine uses metric {engine.metric.name!r}, "
            f"the call requested {get_metric(metric).name!r}"
        )
    return engine
