"""The shared vectorized query core behind every explanation pipeline.

Every algorithm in the library — classification, abductive sufficient
reasons, counterfactual search over l1/l2/lp/Hamming — reduces to one
primitive: ranked (surrogate) distances from a query point to the
labeled sets ``S+`` and ``S-``.  :class:`QueryEngine` owns a
``(dataset, metric)`` pair and serves that primitive two ways:

* **batched** — :meth:`powers_matrix`, :meth:`radii_batch`,
  :meth:`classify_batch` and :meth:`margins_batch` evaluate whole query
  matrices through the metric's broadcast kernels
  (:meth:`~repro.metrics.Metric.powers_matrix`), with no Python-level
  per-row loop; query rows are processed in memory-capped blocks;
* **cached** — the single-point entry points (:meth:`powers`,
  :meth:`radii`, :meth:`classify`, :meth:`margin`, :meth:`neighbors`)
  share an LRU cache of per-query distance vectors, so the inner loops
  of the greedy sufficient-reason algorithms and the brute/SAT
  counterfactual searches, which re-classify the same query point many
  times, never recompute a distance vector.

The ``(r+, r-)`` radii implement the ball-inflation rule of
Proposition 1: ``r+`` (``r-``) is the surrogate distance at which the
``(k+1)/2``-th positive (negative) point is reached, counting
multiplicities, ``+inf`` when that many points do not exist, and
``f(x) = 1 iff r+ <= r-`` (optimistic ties favor the positive class).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .._validation import as_matrix, as_vector, check_odd_k
from ..exceptions import ValidationError
from ..metrics import Metric, get_metric
from .dataset import Dataset

#: cap on the number of float64 elements of a (block, dataset) surrogate
#: matrix held at once while reducing radii for a batch of queries.
_BLOCK_ELEMENTS = 1 << 22


def _kth_smallest_with_multiplicity(
    values: np.ndarray, multiplicities: np.ndarray, k: int
) -> float:
    """k-th smallest element (1-based) of *values* repeated per multiplicity.

    Returns ``+inf`` when fewer than *k* elements exist in total.
    """
    if multiplicities.sum() < k:
        return np.inf
    order = np.argsort(values, kind="stable")
    running = 0
    for idx in order:
        running += int(multiplicities[idx])
        if running >= k:
            return float(values[idx])
    return np.inf  # pragma: no cover - unreachable given the sum check


def _kth_smallest_batch(
    values: np.ndarray, multiplicities: np.ndarray, k: int, *, plain: bool
) -> np.ndarray:
    """Row-wise k-th smallest with multiplicities for a (q, m) matrix.

    *plain* marks the (common) multiplicity-free case, where a partial
    sort suffices; otherwise a stable full sort plus a cumulative sum of
    multiplicities reproduces :func:`_kth_smallest_with_multiplicity`
    exactly.
    """
    q = values.shape[0]
    if values.shape[1] == 0 or multiplicities.sum() < k:
        return np.full(q, np.inf)
    if plain:
        return np.partition(values, k - 1, axis=1)[:, k - 1]
    order = np.argsort(values, axis=1, kind="stable")
    running = np.cumsum(multiplicities[order], axis=1)
    first = np.argmax(running >= k, axis=1)
    picked = np.take_along_axis(order, first[:, None], axis=1)[:, 0]
    return values[np.arange(q), picked]


class QueryEngine:
    """Vectorized, cached batch query primitives over ``(dataset, metric)``.

    Parameters
    ----------
    dataset:
        the labeled examples ``(S+, S-)``.
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default Euclidean, or Hamming
        when the dataset is discrete).
    cache_size:
        number of per-query surrogate-distance vectors kept in the LRU
        cache (0 disables caching).
    """

    def __init__(self, dataset: Dataset, metric=None, *, cache_size: int = 1024):
        if not isinstance(dataset, Dataset):
            raise ValidationError("dataset must be a repro.knn.Dataset")
        if metric is None:
            metric = "hamming" if dataset.discrete else "l2"
        self.dataset = dataset
        self.metric: Metric = get_metric(metric)
        self._pos = dataset.positives
        self._neg = dataset.negatives
        self._pos_mult = dataset.positive_multiplicities
        self._neg_mult = dataset.negative_multiplicities
        self._pos_plain = bool(np.all(self._pos_mult == 1))
        self._neg_plain = bool(np.all(self._neg_mult == 1))
        self._all = np.vstack([self._pos, self._neg])
        self._all.setflags(write=False)
        self._cache: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_size = max(0, int(cache_size))
        self._hits = 0
        self._misses = 0

    # -- distances ------------------------------------------------------

    def powers(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Cached surrogate-distance vectors ``(to S+, to S-)`` for one query.

        The returned arrays are read-only views owned by the cache.
        """
        xv = self._check_query(x)
        key = xv.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return cached
        self._misses += 1
        pos_d = self.metric.powers_to(self._pos, xv)
        neg_d = self.metric.powers_to(self._neg, xv)
        pos_d.setflags(write=False)
        neg_d.setflags(write=False)
        if self._cache_size:
            self._cache[key] = (pos_d, neg_d)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return pos_d, neg_d

    def powers_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` surrogate matrix, positives first.

        One vectorized kernel call per memory-capped row block; row ``i``
        agrees with ``np.concatenate(self.powers(points[i]))`` — bit for
        bit on integer-valued data, up to roundoff on general floats
        (see :meth:`~repro.metrics.Metric.powers_matrix`).
        """
        pts = self._check_queries(points)
        return self.metric.powers_matrix(pts, self._all)

    def distances_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` true-distance matrix, positives first."""
        pts = self._check_queries(points)
        return self.metric.distances_matrix(pts, self._all)

    # -- radii (Proposition 1 ball inflation) ---------------------------

    def radii(self, x, k: int) -> tuple[float, float]:
        """``(r+, r-)`` for one query, served from the distance cache."""
        need = self._need(k)
        pos_d, neg_d = self.powers(x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, self._pos_mult, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, self._neg_mult, need)
        return r_pos, r_neg

    def radii_batch(self, points, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(r+, r-)`` arrays for every row of *points*."""
        need = self._need(k)
        pts = self._check_queries(points)
        q = pts.shape[0]
        m_pos = self._pos.shape[0]
        r_pos = np.empty(q)
        r_neg = np.empty(q)
        cols = max(1, self._all.shape[0])
        rows = max(1, _BLOCK_ELEMENTS // cols)
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            powers = self.metric.powers_matrix(pts[block], self._all)
            r_pos[block] = _kth_smallest_batch(
                powers[:, :m_pos], self._pos_mult, need, plain=self._pos_plain
            )
            r_neg[block] = _kth_smallest_batch(
                powers[:, m_pos:], self._neg_mult, need, plain=self._neg_plain
            )
        return r_pos, r_neg

    # -- classification and margins -------------------------------------

    def classify(self, x, k: int) -> int:
        """``f^k_{S+,S-}(x)`` as 0 or 1 (cached single-query path)."""
        r_pos, r_neg = self.radii(x, k)
        return 1 if r_pos <= r_neg else 0

    def classify_batch(self, points, k: int) -> np.ndarray:
        """Vector of ``f(x)`` values for every row of *points*."""
        r_pos, r_neg = self.radii_batch(points, k)
        return (r_pos <= r_neg).astype(np.int64)

    def margin(self, x, k: int) -> float:
        """Signed surrogate margin ``r- − r+`` (positive ⇒ class 1)."""
        r_pos, r_neg = self.radii(x, k)
        if np.isinf(r_pos) and np.isinf(r_neg):
            return 0.0
        if np.isinf(r_pos):
            return -np.inf
        if np.isinf(r_neg):
            return np.inf
        return float(r_neg - r_pos)

    def margins_batch(self, points, k: int) -> np.ndarray:
        """Vector of signed surrogate margins for every row of *points*."""
        r_pos, r_neg = self.radii_batch(points, k)
        with np.errstate(invalid="ignore"):
            margins = r_neg - r_pos
        margins[np.isinf(r_pos) & np.isinf(r_neg)] = 0.0
        return margins

    # -- neighbors -------------------------------------------------------

    def neighbors(self, x, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their boolean labels (multiplicity-expanded).

        Ties at the boundary are broken by expanded index (positives
        first), matching :meth:`Dataset.all_points` ordering.
        """
        xv = self._check_query(x)
        k = 1 if k is None else int(k)
        pos_d, neg_d = self.powers(xv)
        d = np.concatenate(
            [np.repeat(pos_d, self._pos_mult), np.repeat(neg_d, self._neg_mult)]
        )
        points, labels = self.dataset.all_points()
        order = np.argsort(d, kind="stable")[:k]
        return points[order], labels[order]

    # -- cache bookkeeping ----------------------------------------------

    def cache_info(self) -> dict:
        """``{hits, misses, size, max_size}`` of the per-query LRU cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "max_size": self._cache_size,
        }

    def cache_clear(self) -> None:
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    # -- validation helpers ----------------------------------------------

    def _need(self, k: int) -> int:
        """``(k+1)/2`` after validating k against the dataset size."""
        k = check_odd_k(k)
        if len(self.dataset) < k:
            raise ValidationError(
                f"the dataset must contain at least k={k} points "
                f"(has {len(self.dataset)})"
            )
        return (k + 1) // 2

    def _check_query(self, x) -> np.ndarray:
        xv = as_vector(x, name="x")
        if xv.shape[0] != self.dataset.dimension:
            raise ValidationError(
                f"x has dimension {xv.shape[0]}, dataset has {self.dataset.dimension}"
            )
        return np.ascontiguousarray(xv)

    def _check_queries(self, points) -> np.ndarray:
        pts = as_matrix(points, name="points", dimension=self.dataset.dimension)
        return pts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryEngine(metric={self.metric.name}, {self.dataset!r})"


def as_engine(dataset: Dataset, metric, engine: QueryEngine | None) -> QueryEngine:
    """Resolve the optional ``engine=`` argument of the pipeline entry points.

    Returns *engine* after checking it serves the same dataset and
    metric; builds a fresh one when None.
    """
    if engine is None:
        return QueryEngine(dataset, metric)
    if not isinstance(engine, QueryEngine):
        raise ValidationError("engine must be a repro.knn.QueryEngine")
    if engine.dataset is not dataset:
        raise ValidationError("engine was built for a different dataset")
    if metric is not None and engine.metric.name != get_metric(metric).name:
        raise ValidationError(
            f"engine uses metric {engine.metric.name!r}, "
            f"the call requested {get_metric(metric).name!r}"
        )
    return engine
