"""The shared vectorized query core behind every explanation pipeline.

Every algorithm in the library — classification, abductive sufficient
reasons, counterfactual search over l1/l2/lp/Hamming — reduces to one
primitive: ranked (surrogate) distances from a query point to the
labeled sets ``S+`` and ``S-``.  :class:`QueryEngine` owns a
``(dataset, metric)`` pair and serves that primitive two ways:

* **batched** — :meth:`powers_matrix`, :meth:`radii_batch`,
  :meth:`classify_batch` and :meth:`margins_batch` evaluate whole query
  matrices through a pluggable *index backend* (see below), with no
  Python-level per-row loop; query rows are processed in memory-capped
  blocks, and :meth:`map_shards` fans row shards out to a process pool;
* **cached** — the single-point entry points (:meth:`powers`,
  :meth:`radii`, :meth:`classify`, :meth:`margin`, :meth:`neighbors`)
  share an LRU cache of per-query distance vectors, so the inner loops
  of the greedy sufficient-reason algorithms and the brute/SAT
  counterfactual searches, which re-classify the same query point many
  times, never recompute a distance vector.

Index backends (``backend=`` — the :mod:`repro.neighbors` layer)
----------------------------------------------------------------

The paper's experimental section credits "a library for fast
NN-classification such as FAISS" as key to performance; the engine's
batch path is correspondingly backend-pluggable:

``"dense"``
    the metric's broadcast kernels (BLAS Gram expansions for l2 and
    Hamming) — the default workhorse at the paper's dimensionalities;
``"bitpack"``
    :class:`~repro.neighbors.BitPackedHammingIndex`: packed-word
    XOR/popcount Hamming distances, bit-identical to the dense kernel
    on binary data and several times faster (FAISS's binary-index
    technique);
``"kdtree"``
    per-class :class:`~repro.neighbors.KDTreeIndex` branch-and-bound —
    wins only at very low dimension over large datasets, where pruning
    beats the O(|S|) scan;
``"auto"``
    bitpack for binary Hamming data, KD-tree for low-dimensional lp
    over large datasets, dense otherwise (thresholds measured in
    ``benchmarks/bench_ablation_nn_index.py``).

Every backend implements the same optimistic semantics; on
integer-valued data the results are bit-identical across backends (the
parity suite in ``tests/test_backends.py`` enforces this), so backend
choice is purely a performance decision.

The ``(r+, r-)`` radii implement the ball-inflation rule of
Proposition 1: ``r+`` (``r-``) is the surrogate distance at which the
``(k+1)/2``-th positive (negative) point is reached, counting
multiplicities, ``+inf`` when that many points do not exist, and
``f(x) = 1 iff r+ <= r-`` (optimistic ties favor the positive class).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .._validation import as_matrix, as_vector, check_odd_k
from ..exceptions import ValidationError
from ..metrics import HammingMetric, LpMetric, Metric, get_metric
from ..metrics.hamming import is_binary
from .dataset import Dataset

#: cap on the number of float64 elements of a (block, dataset) surrogate
#: matrix held at once while reducing radii for a batch of queries.
_BLOCK_ELEMENTS = 1 << 22

#: the engine's index strategies (see the module docstring).
BACKENDS = ("auto", "dense", "kdtree", "bitpack")

#: batch methods :meth:`QueryEngine.map_shards` can fan out.
_SHARD_METHODS = (
    "classify_batch",
    "margins_batch",
    "radii_batch",
    "powers_matrix",
    "distances_matrix",
)

#: KD-tree auto-rule thresholds: the per-query branch-and-bound (a
#: Python-level traversal) only beats one vectorized O(|S|) kernel pass
#: at very low dimension over large point sets (measured crossover:
#: ~12k points at dimension 3; hopeless by dimension 8).
_KDTREE_AUTO_MAX_DIM = 4
_KDTREE_AUTO_MIN_POINTS = 16_384


def _kth_smallest_with_multiplicity(
    values: np.ndarray, multiplicities: np.ndarray, k: int
) -> float:
    """k-th smallest element (1-based) of *values* repeated per multiplicity.

    Returns ``+inf`` when fewer than *k* elements exist in total.
    """
    if multiplicities.sum() < k:
        return np.inf
    order = np.argsort(values, kind="stable")
    running = 0
    for idx in order:
        running += int(multiplicities[idx])
        if running >= k:
            return float(values[idx])
    return np.inf  # pragma: no cover - unreachable given the sum check


def _kth_smallest_batch(
    values: np.ndarray, multiplicities: np.ndarray, k: int, *, plain: bool
) -> np.ndarray:
    """Row-wise k-th smallest with multiplicities for a (q, m) matrix.

    *plain* marks the (common) multiplicity-free case, where a partial
    sort suffices; otherwise a stable full sort plus a cumulative sum of
    multiplicities reproduces :func:`_kth_smallest_with_multiplicity`
    exactly.  Works on integer-count matrices (the bitpack backend) as
    well as float64 surrogates.
    """
    q = values.shape[0]
    if values.shape[1] == 0 or multiplicities.sum() < k:
        return np.full(q, np.inf)
    if plain:
        return np.partition(values, k - 1, axis=1)[:, k - 1]
    order = np.argsort(values, axis=1, kind="stable")
    running = np.cumsum(multiplicities[order], axis=1)
    first = np.argmax(running >= k, axis=1)
    picked = np.take_along_axis(order, first[:, None], axis=1)[:, 0]
    return values[np.arange(q), picked]


def _shard_call(engine: "QueryEngine", method: str, shard: np.ndarray, k):
    """Module-level worker for :meth:`QueryEngine.map_shards` (picklable)."""
    fn = getattr(engine, method)
    return fn(shard, k) if k is not None else fn(shard)


class QueryEngine:
    """Vectorized, cached batch query primitives over ``(dataset, metric)``.

    Parameters
    ----------
    dataset:
        the labeled examples ``(S+, S-)``.
    metric:
        a :class:`~repro.metrics.Metric` or an alias accepted by
        :func:`~repro.metrics.get_metric` (default Euclidean, or Hamming
        when the dataset is discrete).
    cache_size:
        number of per-query surrogate-distance vectors kept in the LRU
        cache (0 disables caching).
    backend:
        index strategy for the batch primitives: ``"auto"`` (default),
        ``"dense"``, ``"kdtree"`` or ``"bitpack"`` — see the module
        docstring.  ``"bitpack"`` requires the Hamming metric over
        strictly binary data; ``"kdtree"`` requires an lp or Hamming
        metric.
    """

    def __init__(
        self,
        dataset: Dataset,
        metric=None,
        *,
        cache_size: int = 1024,
        backend: str = "auto",
    ):
        if not isinstance(dataset, Dataset):
            raise ValidationError("dataset must be a repro.knn.Dataset")
        if metric is None:
            metric = "hamming" if dataset.discrete else "l2"
        self.dataset = dataset
        self.metric: Metric = get_metric(metric)
        self._pos = dataset.positives
        self._neg = dataset.negatives
        self._pos_mult = dataset.positive_multiplicities
        self._neg_mult = dataset.negative_multiplicities
        self._pos_plain = bool(np.all(self._pos_mult == 1))
        self._neg_plain = bool(np.all(self._neg_mult == 1))
        self._all = np.vstack([self._pos, self._neg])
        self._all.setflags(write=False)
        self._cache: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_size = max(0, int(cache_size))
        self._hits = 0
        self._misses = 0
        self.backend = self._resolve_backend(backend)
        self._bit_index = None
        self._pos_tree = None
        self._neg_tree = None
        self._build_index_layer()

    # -- backend selection ----------------------------------------------

    def _resolve_backend(self, backend: str) -> str:
        if backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {'|'.join(BACKENDS)}, got {backend!r}"
            )
        if backend == "bitpack":
            from ..neighbors.bitpack import HAVE_BITWISE_COUNT

            if not isinstance(self.metric, HammingMetric):
                raise ValidationError(
                    f"backend='bitpack' requires the Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            if not is_binary(self._all):
                raise ValidationError(
                    "backend='bitpack' requires strictly binary (0/1) data"
                )
            if not HAVE_BITWISE_COUNT:  # pragma: no cover - numpy >= 2 in CI
                raise ValidationError(
                    "backend='bitpack' requires numpy >= 2.0 (np.bitwise_count)"
                )
            return backend
        if backend == "kdtree":
            if not isinstance(self.metric, (LpMetric, HammingMetric)):
                raise ValidationError(
                    f"backend='kdtree' requires an lp or Hamming metric, "
                    f"got {self.metric.name!r}"
                )
            return backend
        if backend == "auto":
            return self._auto_backend()
        return backend

    def _auto_backend(self) -> str:
        """Pick the fastest exact backend for this ``(dataset, metric)``.

        Mirrors :func:`repro.neighbors.build_index` adapted to the batch
        setting: the bit-packed popcount index for binary Hamming data;
        the KD-tree only where its Python-level traversal actually beats
        one vectorized kernel pass (very low dimension, large dataset);
        dense broadcast kernels otherwise.
        """
        from ..neighbors.bitpack import HAVE_BITWISE_COUNT

        if (
            HAVE_BITWISE_COUNT
            and isinstance(self.metric, HammingMetric)
            and is_binary(self._all)
        ):
            return "bitpack"
        if (
            isinstance(self.metric, LpMetric)
            and self.dataset.dimension <= _KDTREE_AUTO_MAX_DIM
            and len(self.dataset) >= _KDTREE_AUTO_MIN_POINTS
        ):
            return "kdtree"
        return "dense"

    def _build_index_layer(self) -> None:
        """Materialize the selected backend's index structures."""
        if self.backend == "bitpack":
            from ..neighbors.bitpack import BitPackedHammingIndex

            self._bit_index = BitPackedHammingIndex(self._all, self.metric)
        elif self.backend == "kdtree":
            from ..neighbors.kdtree import KDTreeIndex

            # Per-class trees over multiplicity-expanded points: the
            # need-th neighbor of the expanded set equals the k-th
            # smallest with multiplicities of the unique rows.
            pos = np.repeat(self._pos, self._pos_mult, axis=0)
            neg = np.repeat(self._neg, self._neg_mult, axis=0)
            self._pos_tree = KDTreeIndex(pos, self.metric) if pos.shape[0] else None
            self._neg_tree = KDTreeIndex(neg, self.metric) if neg.shape[0] else None

    # -- distances ------------------------------------------------------

    def powers(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Cached surrogate-distance vectors ``(to S+, to S-)`` for one query.

        The returned arrays are read-only views owned by the cache.
        """
        xv = self._check_query(x)
        key = xv.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return cached
        self._misses += 1
        pos_d = self.metric.powers_to(self._pos, xv)
        neg_d = self.metric.powers_to(self._neg, xv)
        pos_d.setflags(write=False)
        neg_d.setflags(write=False)
        if self._cache_size:
            self._cache[key] = (pos_d, neg_d)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return pos_d, neg_d

    def _surrogate_block(self, pts_block: np.ndarray) -> np.ndarray:
        """Backend-routed ``(rows, |S+| + |S-|)`` surrogate matrix.

        The bitpack backend returns integer Hamming counts (cheaper to
        partition); every other backend returns float64.  Values agree
        bit for bit with the dense kernel either way.  Non-binary query
        rows fall back to the dense kernel under bitpack, preserving
        results (the packed index only accepts {0,1} queries).
        """
        if self._bit_index is not None and is_binary(pts_block):
            return self._bit_index.counts_matrix(pts_block)
        return self.metric.powers_matrix(pts_block, self._all)

    def powers_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` surrogate matrix, positives first.

        One vectorized kernel call per memory-capped row block, routed
        through the selected backend (the KD-tree backend falls back to
        the dense kernel here — a tree cannot beat a full-matrix scan);
        row ``i`` agrees with ``np.concatenate(self.powers(points[i]))``
        — bit for bit on integer-valued data, up to roundoff on general
        floats (see :meth:`~repro.metrics.Metric.powers_matrix`).
        """
        pts = self._check_queries(points)
        return np.asarray(self._surrogate_block(pts), dtype=np.float64)

    def distances_matrix(self, points) -> np.ndarray:
        """``(q, |S+| + |S-|)`` true-distance matrix, positives first."""
        pts = self._check_queries(points)
        return self.metric.distances_matrix(pts, self._all)

    # -- radii (Proposition 1 ball inflation) ---------------------------

    def radii(self, x, k: int) -> tuple[float, float]:
        """``(r+, r-)`` for one query, served from the distance cache."""
        need = self._need(k)
        pos_d, neg_d = self.powers(x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, self._pos_mult, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, self._neg_mult, need)
        return r_pos, r_neg

    def radii_batch(self, points, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(r+, r-)`` arrays for every row of *points*."""
        need = self._need(k)
        pts = self._check_queries(points)
        if self.backend == "kdtree":
            return self._radii_batch_kdtree(pts, need)
        q = pts.shape[0]
        m_pos = self._pos.shape[0]
        r_pos = np.empty(q)
        r_neg = np.empty(q)
        cols = max(1, self._all.shape[0])
        rows = max(1, _BLOCK_ELEMENTS // cols)
        for start in range(0, q, rows):
            block = slice(start, min(start + rows, q))
            powers = self._surrogate_block(pts[block])
            r_pos[block] = _kth_smallest_batch(
                powers[:, :m_pos], self._pos_mult, need, plain=self._pos_plain
            )
            r_neg[block] = _kth_smallest_batch(
                powers[:, m_pos:], self._neg_mult, need, plain=self._neg_plain
            )
        return r_pos, r_neg

    def _radii_batch_kdtree(
        self, pts: np.ndarray, need: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-class branch-and-bound radii (the KD-tree backend)."""
        q = pts.shape[0]
        if self._pos_tree is not None:
            r_pos = self._pos_tree.kth_power_batch(pts, need)
        else:
            r_pos = np.full(q, np.inf)
        if self._neg_tree is not None:
            r_neg = self._neg_tree.kth_power_batch(pts, need)
        else:
            r_neg = np.full(q, np.inf)
        return r_pos, r_neg

    # -- classification and margins -------------------------------------

    def classify(self, x, k: int) -> int:
        """``f^k_{S+,S-}(x)`` as 0 or 1 (cached single-query path)."""
        r_pos, r_neg = self.radii(x, k)
        return 1 if r_pos <= r_neg else 0

    def classify_batch(self, points, k: int) -> np.ndarray:
        """Vector of ``f(x)`` values for every row of *points*."""
        r_pos, r_neg = self.radii_batch(points, k)
        return (r_pos <= r_neg).astype(np.int64)

    def margin(self, x, k: int) -> float:
        """Signed surrogate margin ``r- − r+`` (positive ⇒ class 1)."""
        r_pos, r_neg = self.radii(x, k)
        if np.isinf(r_pos) and np.isinf(r_neg):
            return 0.0
        if np.isinf(r_pos):
            return -np.inf
        if np.isinf(r_neg):
            return np.inf
        return float(r_neg - r_pos)

    def margins_batch(self, points, k: int) -> np.ndarray:
        """Vector of signed surrogate margins for every row of *points*."""
        r_pos, r_neg = self.radii_batch(points, k)
        with np.errstate(invalid="ignore"):
            margins = r_neg - r_pos
        margins[np.isinf(r_pos) & np.isinf(r_neg)] = 0.0
        return margins

    # -- sharded batches -------------------------------------------------

    def map_shards(
        self,
        method: str,
        points,
        k: int | None = None,
        *,
        workers: int | None = None,
        min_shard_rows: int = 64,
    ):
        """Evaluate a batch method over row shards in a process pool.

        Splits *points* into up to *workers* row shards, evaluates
        ``getattr(engine, method)`` on each shard in a separate process,
        and concatenates the results — the output is identical to the
        direct call.  Worth it for query matrices large enough that the
        kernel time dominates the cost of shipping the engine to each
        worker (the engine is pickled without its distance cache).

        Parameters
        ----------
        method:
            one of ``"classify_batch"``, ``"margins_batch"``,
            ``"radii_batch"``, ``"powers_matrix"``,
            ``"distances_matrix"``.
        k:
            required for the radii-based methods, ignored otherwise.
        workers:
            process count (default ``os.cpu_count()``).  ``1`` runs the
            direct call in this process.
        min_shard_rows:
            lower bound on rows per shard; small batches degrade to the
            direct call rather than paying pool startup.
        """
        if method not in _SHARD_METHODS:
            raise ValidationError(
                f"method must be one of {'|'.join(_SHARD_METHODS)}, got {method!r}"
            )
        needs_k = method in ("classify_batch", "margins_batch", "radii_batch")
        if needs_k:
            if k is None:
                raise ValidationError(f"method {method!r} requires k")
            self._need(k)  # validate before forking
        else:
            k = None
        pts = self._check_queries(points)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, int(workers))
        n_shards = min(workers, max(1, pts.shape[0] // max(1, int(min_shard_rows))))
        if n_shards <= 1:
            return _shard_call(self, method, pts, k)
        shards = np.array_split(pts, n_shards)
        with ProcessPoolExecutor(max_workers=n_shards) as pool:
            parts = list(
                pool.map(
                    _shard_call,
                    [self] * n_shards,
                    [method] * n_shards,
                    shards,
                    [k] * n_shards,
                )
            )
        if method == "radii_batch":
            r_pos = np.concatenate([p[0] for p in parts])
            r_neg = np.concatenate([p[1] for p in parts])
            return r_pos, r_neg
        if method in ("powers_matrix", "distances_matrix"):
            return np.vstack(parts)
        return np.concatenate(parts)

    # -- neighbors -------------------------------------------------------

    def neighbors(self, x, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest points and their boolean labels (multiplicity-expanded).

        Ties at the boundary are broken by expanded index (positives
        first), matching :meth:`Dataset.all_points` ordering.
        """
        xv = self._check_query(x)
        k = 1 if k is None else int(k)
        pos_d, neg_d = self.powers(xv)
        d = np.concatenate(
            [np.repeat(pos_d, self._pos_mult), np.repeat(neg_d, self._neg_mult)]
        )
        points, labels = self.dataset.all_points()
        order = np.argsort(d, kind="stable")[:k]
        return points[order], labels[order]

    # -- cache bookkeeping ----------------------------------------------

    def cache_info(self) -> dict:
        """``{hits, misses, size, max_size}`` of the per-query LRU cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "max_size": self._cache_size,
        }

    def cache_clear(self) -> None:
        """Empty the distance cache and reset the hit/miss counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    # -- pickling (process-pool sharding) --------------------------------

    def __getstate__(self) -> dict:
        """Pickle without the distance cache (workers never share it)."""
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_hits"] = 0
        state["_misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._all.setflags(write=False)

    # -- validation helpers ----------------------------------------------

    def _need(self, k: int) -> int:
        """``(k+1)/2`` after validating k against the dataset size."""
        k = check_odd_k(k)
        if len(self.dataset) < k:
            raise ValidationError(
                f"the dataset must contain at least k={k} points "
                f"(has {len(self.dataset)})"
            )
        return (k + 1) // 2

    def _check_query(self, x) -> np.ndarray:
        xv = as_vector(x, name="x")
        if xv.shape[0] != self.dataset.dimension:
            raise ValidationError(
                f"x has dimension {xv.shape[0]}, dataset has {self.dataset.dimension}"
            )
        return np.ascontiguousarray(xv)

    def _check_queries(self, points) -> np.ndarray:
        pts = as_matrix(points, name="points", dimension=self.dataset.dimension)
        return pts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(metric={self.metric.name}, backend={self.backend}, "
            f"{self.dataset!r})"
        )


def as_engine(
    dataset: Dataset, metric, engine: QueryEngine | None, *, backend: str = "auto"
) -> QueryEngine:
    """Resolve the optional ``engine=`` argument of the pipeline entry points.

    Returns *engine* after checking it serves the same dataset and
    metric; builds a fresh one (with the requested *backend*) when None.
    """
    if engine is None:
        return QueryEngine(dataset, metric, backend=backend)
    if not isinstance(engine, QueryEngine):
        raise ValidationError("engine must be a repro.knn.QueryEngine")
    if engine.dataset is not dataset:
        raise ValidationError("engine was built for a different dataset")
    if metric is not None and engine.metric.name != get_metric(metric).name:
        raise ValidationError(
            f"engine uses metric {engine.metric.name!r}, "
            f"the call requested {get_metric(metric).name!r}"
        )
    return engine
