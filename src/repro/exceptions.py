"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Subclasses separate user errors
(invalid inputs, unsupported parameter combinations) from solver-side
failures (infeasibility, resource limits), mirroring the split between
"the question is malformed" and "the question is well-formed but the
engine could not answer it".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input (dataset, vector, index set, parameter) is malformed."""


class UnknownDatasetError(ValidationError):
    """A request names a dataset fingerprint the service has never seen.

    A distinct subclass so the serving layer can map "you asked about a
    resource that does not exist" to HTTP 404 while every other
    malformed-input case stays a 400 — catching
    :class:`ValidationError` still catches this.
    """


class OverloadedError(ReproError):
    """The serving cluster refused admission; retry after backing off.

    Raised by the cluster front when a worker's bounded request queue is
    full: overload is reported *immediately and structurally* (HTTP 429
    on the wire) instead of letting requests pile up behind a saturated
    worker until everything times out.
    """


class DurabilityError(ReproError, RuntimeError):
    """The durability layer could not make state durable or restore it.

    Raised when a WAL append or snapshot write fails (disk full,
    permissions) — in which case the in-memory mutation is refused, so
    acknowledged state is always recoverable.  Restore-side damage
    (truncated or corrupt WAL tails) deliberately does *not* raise:
    recovery degrades to the last good record with a structured
    warning instead (see :mod:`repro.serve.durability`).
    """


class DimensionMismatchError(ValidationError):
    """Vectors or datasets have incompatible dimensions."""


class UnsupportedSettingError(ReproError, NotImplementedError):
    """The requested (metric, k, problem) combination has no implementation.

    The complexity landscape of the paper (Table 1) leaves some cells
    intractable; for those we only provide exact solvers that may be
    exponential.  Asking for a polynomial-time algorithm where none is
    known raises this error rather than silently falling back.
    """


class SolverError(ReproError, RuntimeError):
    """A solver failed for a reason other than infeasibility."""


class InfeasibleError(SolverError):
    """The optimization/decision problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class ResourceLimitError(SolverError):
    """A solver hit a configured conflict/node/time limit before finishing."""
