"""The paper's Table 1 as a queryable registry.

Each entry records the complexity of one (problem, metric space, k
regime) cell together with its theorem provenance and the module that
either solves the cell (tractable entries) or witnesses its hardness
(reduction modules).  ``render_table()`` reproduces the layout of
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Problem(str, Enum):
    """The paper's explanation problems (the rows of Table 1)."""
    COUNTERFACTUAL = "Counterfactual"
    CHECK_SR = "Check Sufficient Reason"
    MINIMUM_SR = "Minimum Sufficient Reason"
    MINIMAL_SR = "Minimal Sufficient Reason"


class Space(str, Enum):
    """The paper's metric spaces (the columns of Table 1)."""
    L2 = "(R, D_2)"
    L1 = "(R, D_1)"
    HAMMING = "({0,1}, D_H)"


@dataclass(frozen=True)
class ComplexityEntry:
    """One cell of the landscape."""

    problem: Problem
    space: Space
    k_regime: str  # "k>=1", "k=1", "k>1"
    complexity: str
    provenance: str
    solver: str  # module/function implementing or witnessing the cell


ENTRIES: tuple[ComplexityEntry, ...] = (
    # -- counterfactual explanations --
    ComplexityEntry(
        Problem.COUNTERFACTUAL, Space.L2, "k>=1", "P",
        "Theorem 2", "repro.counterfactual.l2",
    ),
    ComplexityEntry(
        Problem.COUNTERFACTUAL, Space.L1, "k>=1", "NP-complete",
        "Theorem 4", "repro.counterfactual.l1 (MILP)",
    ),
    ComplexityEntry(
        Problem.COUNTERFACTUAL, Space.HAMMING, "k>=1", "NP-complete",
        "Theorem 6", "repro.counterfactual.hamming_milp / hamming_sat",
    ),
    # -- check sufficient reason --
    ComplexityEntry(
        Problem.CHECK_SR, Space.L2, "k=1", "P",
        "Proposition 3", "repro.abductive.check (l2)",
    ),
    ComplexityEntry(
        Problem.CHECK_SR, Space.L2, "k>1", "P",
        "Proposition 3", "repro.abductive.check (l2)",
    ),
    ComplexityEntry(
        Problem.CHECK_SR, Space.L1, "k=1", "P",
        "Proposition 4", "repro.abductive.check (l1-k1)",
    ),
    ComplexityEntry(
        Problem.CHECK_SR, Space.L1, "k>1", "coNP-complete",
        "Theorem 5", "repro.reductions.partition (hardness witness)",
    ),
    ComplexityEntry(
        Problem.CHECK_SR, Space.HAMMING, "k=1", "P",
        "Proposition 6", "repro.abductive.check (hamming-k1)",
    ),
    ComplexityEntry(
        Problem.CHECK_SR, Space.HAMMING, "k>1", "coNP-complete",
        "Theorem 7", "repro.reductions.check_sr_discrete (hardness witness)",
    ),
    # -- minimum sufficient reason --
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.L2, "k=1", "NP-complete",
        "Corollary 6", "repro.abductive.minimum (brute)",
    ),
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.L2, "k>1", "NP-complete",
        "Corollary 6", "repro.abductive.minimum (brute)",
    ),
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.L1, "k=1", "NP-complete",
        "Corollary 6", "repro.abductive.minimum (brute)",
    ),
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.L1, "k>1", "NP-hard (exact class open)",
        "Theorem 1", "repro.reductions.vertex_cover (hardness witness)",
    ),
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.HAMMING, "k=1", "NP-complete",
        "Corollary 6", "repro.abductive.minimum (milp/sat)",
    ),
    ComplexityEntry(
        Problem.MINIMUM_SR, Space.HAMMING, "k>1", "Sigma2p-complete",
        "Theorem 8", "repro.reductions.interdiction (hardness witness)",
    ),
    # -- minimal sufficient reason (from Prop. 2 + the check column) --
    ComplexityEntry(
        Problem.MINIMAL_SR, Space.L2, "k>=1", "P",
        "Proposition 2 + Proposition 3 (Corollary 1)", "repro.abductive.minimal",
    ),
    ComplexityEntry(
        Problem.MINIMAL_SR, Space.L1, "k=1", "P",
        "Proposition 2 + Proposition 4 (Corollary 3)", "repro.abductive.minimal",
    ),
    ComplexityEntry(
        Problem.MINIMAL_SR, Space.L1, "k>1", "NP-hard (Turing)",
        "Theorem 5", "repro.reductions.partition (hardness witness)",
    ),
    ComplexityEntry(
        Problem.MINIMAL_SR, Space.HAMMING, "k=1", "P",
        "Proposition 2 + Proposition 6 (Corollary 4)", "repro.abductive.minimal",
    ),
    ComplexityEntry(
        Problem.MINIMAL_SR, Space.HAMMING, "k>1", "coNP-hard",
        "Corollary 5", "repro.reductions.check_sr_discrete (hardness witness)",
    ),
)


def lookup(problem: Problem, space: Space, k: int) -> ComplexityEntry:
    """The registry entry governing a concrete (problem, space, k)."""
    regime_order = ["k>=1", "k=1" if k == 1 else "k>1"]
    for regime in regime_order:
        for entry in ENTRIES:
            if entry.problem is problem and entry.space is space and entry.k_regime == regime:
                return entry
    raise KeyError(f"no entry for {problem.value} / {space.value} / k={k}")


def render_table() -> str:
    """Reproduce the shape of the paper's Table 1 as fixed-width text."""
    problems = [
        (Problem.COUNTERFACTUAL, ["k>=1"]),
        (Problem.CHECK_SR, ["k=1", "k>1"]),
        (Problem.MINIMUM_SR, ["k=1", "k>1"]),
    ]
    headers = ["Metric space"]
    for problem, regimes in problems:
        for regime in regimes:
            tag = f" ({regime})" if len(regimes) > 1 else ""
            headers.append(f"{problem.value}{tag}")
    rows = [headers]
    for space in Space:
        row = [space.value]
        for problem, regimes in problems:
            for regime in regimes:
                entry = next(
                    e
                    for e in ENTRIES
                    if e.problem is problem
                    and e.space is space
                    and (e.k_regime == regime or e.k_regime == "k>=1")
                )
                row.append(f"{entry.complexity} [{entry.provenance}]")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
