"""Abstract base class for metrics used by the k-NN explanation machinery."""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from .._validation import as_matrix, as_vector

#: cap on the number of float64 elements a kernel temporary may hold
#: (~4 MB, sized to stay cache-resident for the difference-tensor
#: kernels); matrix primitives process query rows in blocks of this size
#: so vectorization never blows up memory on large batches.
_BLOCK_ELEMENTS = 1 << 19


def _row_blocks(n_rows: int, elements_per_row: int) -> Iterator[slice]:
    """Row slices whose kernel temporaries stay under the element cap."""
    rows = max(1, _BLOCK_ELEMENTS // max(1, elements_per_row))
    for start in range(0, n_rows, rows):
        yield slice(start, min(start + rows, n_rows))


class Metric(abc.ABC):
    """A distance function ``d_n`` defined uniformly for every dimension n.

    Subclasses implement :meth:`distances_to`, the vectorized primitive the
    rest of the library builds on.  Comparisons between distances in the
    paper's algorithms are often done on *monotone surrogates* (e.g. the
    p-th power of the lp distance, or the squared Euclidean distance) to
    keep arithmetic exact on rational inputs; :meth:`powers_to` exposes
    that surrogate.
    """

    #: human-readable identifier, e.g. ``"l2"`` or ``"hamming"``
    name: str = "abstract"

    #: True when the metric's natural domain is the Boolean hypercube
    is_discrete: bool = False

    @abc.abstractmethod
    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Distances from every row of *points* to the vector *x*."""

    def powers_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Monotone surrogate of :meth:`distances_to` (default: identity).

        Two distances compare identically under the surrogate; subclasses
        override this to avoid roots (lp) while preserving order.
        """
        return self.distances_to(points, x)

    def distance(self, x, y) -> float:
        """Distance between two single vectors."""
        xv = as_vector(x, name="x")
        yv = as_vector(y, name="y")
        if xv.shape != yv.shape:
            raise ValueError(f"shape mismatch: {xv.shape} vs {yv.shape}")
        return float(self.distances_to(yv.reshape(1, -1), xv)[0])

    # -- vectorized matrix primitives ----------------------------------

    def _powers_block(self, block: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Surrogate matrix for one (block, points) pair of row sets.

        Fallback for exotic subclasses that only define
        :meth:`distances_to`; every metric shipped with the library
        overrides this with a single broadcast expression.
        """
        return np.stack([self.powers_to(points, row) for row in block])

    def _power_to_distance(self, values: np.ndarray) -> np.ndarray:
        """Map surrogate values back to distances (default: identity)."""
        return values

    def _block_row_cost(self, m: int, n: int) -> int:
        """Float64 elements of kernel temporaries per query row.

        Drives the row-block size of :meth:`powers_matrix`.  The default
        assumes a difference tensor (``m * n``); kernels that avoid it
        (the l2 Gram expansion) override this with their real footprint.
        """
        return m * max(1, n)

    def powers_matrix(self, points_a, points_b) -> np.ndarray:
        """Full ``(len(a), len(b))`` matrix of the monotone surrogate.

        Row ``i`` agrees with ``powers_to(points_b, points_a[i])``:
        bit for bit on integer-valued inputs (where the paper's exact
        tie-breaking semantics live — see the subclass kernels), and up
        to floating-point roundoff on general real inputs.  The matrix
        is produced by vectorized kernels over memory-capped row blocks,
        with no Python-level per-row loop.
        """
        a = as_matrix(points_a, name="points_a")
        b = as_matrix(points_b, name="points_b")
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.float64)
        if a.shape[0] == 0 or b.shape[0] == 0:
            return out
        for rows in _row_blocks(a.shape[0], self._block_row_cost(b.shape[0], b.shape[1])):
            out[rows] = self._powers_block(a[rows], b)
        return out

    def distances_matrix(self, points_a, points_b) -> np.ndarray:
        """Full ``(len(a), len(b))`` distance matrix, vectorized."""
        return self._power_to_distance(self.powers_matrix(points_a, points_b))

    def pairwise(self, points_a, points_b) -> np.ndarray:
        """Full (len(a), len(b)) distance matrix (alias of
        :meth:`distances_matrix`, kept for backward compatibility)."""
        return self.distances_matrix(points_a, points_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))
