"""Abstract base class for metrics used by the k-NN explanation machinery."""

from __future__ import annotations

import abc

import numpy as np

from .._validation import as_matrix, as_vector


class Metric(abc.ABC):
    """A distance function ``d_n`` defined uniformly for every dimension n.

    Subclasses implement :meth:`distances_to`, the vectorized primitive the
    rest of the library builds on.  Comparisons between distances in the
    paper's algorithms are often done on *monotone surrogates* (e.g. the
    p-th power of the lp distance, or the squared Euclidean distance) to
    keep arithmetic exact on rational inputs; :meth:`powers_to` exposes
    that surrogate.
    """

    #: human-readable identifier, e.g. ``"l2"`` or ``"hamming"``
    name: str = "abstract"

    #: True when the metric's natural domain is the Boolean hypercube
    is_discrete: bool = False

    @abc.abstractmethod
    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Distances from every row of *points* to the vector *x*."""

    def powers_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Monotone surrogate of :meth:`distances_to` (default: identity).

        Two distances compare identically under the surrogate; subclasses
        override this to avoid roots (lp) while preserving order.
        """
        return self.distances_to(points, x)

    def distance(self, x, y) -> float:
        """Distance between two single vectors."""
        xv = as_vector(x, name="x")
        yv = as_vector(y, name="y")
        if xv.shape != yv.shape:
            raise ValueError(f"shape mismatch: {xv.shape} vs {yv.shape}")
        return float(self.distances_to(yv.reshape(1, -1), xv)[0])

    def pairwise(self, points_a, points_b) -> np.ndarray:
        """Full (len(a), len(b)) distance matrix."""
        a = as_matrix(points_a, name="points_a")
        b = as_matrix(points_b, name="points_b")
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.float64)
        for i in range(a.shape[0]):
            out[i] = self.distances_to(b, a[i])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))
