"""Metric-space families from Section 2 of the paper.

The paper studies two families ``(M, D)``:

* the **continuous** setting ``(R, D_p)`` where ``d_n`` is the lp-norm
  distance on ``R^n`` for a fixed integer ``p >= 1``; and
* the **discrete** setting ``({0,1}, D_H)`` where ``d_n`` is the Hamming
  distance on ``{0,1}^n``.

:class:`Metric` is the shared interface; :func:`get_metric` resolves the
user-facing string/objects into concrete metric instances.
"""

from __future__ import annotations

from .base import Metric
from .hamming import HammingMetric
from .lp import L1Metric, L2Metric, LInfMetric, LpMetric

__all__ = [
    "Metric",
    "LpMetric",
    "L1Metric",
    "L2Metric",
    "LInfMetric",
    "HammingMetric",
    "get_metric",
    "default_metric_name",
]


def default_metric_name(discrete: bool) -> str:
    """The repo-wide metric default for data of the given discreteness.

    Binary {0,1} data defaults to the paper's discrete setting (Hamming),
    everything else to the continuous l2 setting.  Every entry point that
    auto-detects a metric (``QueryEngine``, ``MultiClass1NN``, the serve
    layer) routes through this one definition so the load-bearing rule
    cannot drift between layers.
    """
    return "hamming" if discrete else "l2"

_ALIASES = {
    "l1": L1Metric,
    "manhattan": L1Metric,
    "l2": L2Metric,
    "euclidean": L2Metric,
    "linf": LInfMetric,
    "chebyshev": LInfMetric,
    "hamming": HammingMetric,
    "discrete": HammingMetric,
}


def get_metric(metric) -> Metric:
    """Resolve *metric* into a :class:`Metric` instance.

    Accepts a :class:`Metric` (returned as-is), one of the string aliases
    ``"l1" | "manhattan" | "l2" | "euclidean" | "linf" | "chebyshev" |
    "hamming" | "discrete" | "lp:<p>"``, or an integer ``p`` (meaning the
    lp metric).
    """
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, int):
        return LpMetric(metric)
    if isinstance(metric, str):
        key = metric.strip().lower()
        if key in _ALIASES:
            return _ALIASES[key]()
        if key.startswith("lp:"):
            return LpMetric(int(key[3:]))
        if key.startswith("l") and key[1:].isdigit():
            return LpMetric(int(key[1:]))
    raise ValueError(f"unknown metric specification: {metric!r}")
