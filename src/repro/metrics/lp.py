"""lp-norm metrics over R^n (the paper's continuous setting ``(R, D_p)``)."""

from __future__ import annotations

import numpy as np

from .base import Metric


class LpMetric(Metric):
    """Distance induced by the lp-norm for an integer ``p >= 1``.

    The paper's continuous results are stated for integer ``p > 0``; the
    tractability landscape differs sharply between ``p = 2`` (convex
    quadratic machinery applies, Section 5) and ``p = 1`` (Section 6).
    ``p = math.inf`` is additionally supported for completeness as
    :class:`LInfMetric` even though the paper does not analyze it.
    """

    def __init__(self, p: int):
        if isinstance(p, float) and np.isinf(p):
            self.p = np.inf
        else:
            p = int(p)
            if p < 1:
                raise ValueError(f"lp metric requires p >= 1, got {p}")
            self.p = p
        self.name = "linf" if self.p is np.inf else f"l{self.p}"

    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """lp distances from every row of *points* to *x*."""
        diff = np.abs(points - x)
        if self.p is np.inf:
            return diff.max(axis=1) if diff.size else np.zeros(len(points))
        if self.p == 1:
            return diff.sum(axis=1)
        if self.p == 2:
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return np.power(np.power(diff, self.p).sum(axis=1), 1.0 / self.p)

    def powers_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """p-th power of the distance — exact on integer data, same order."""
        diff = np.abs(points - x)
        if self.p is np.inf:
            return diff.max(axis=1) if diff.size else np.zeros(len(points))
        if self.p == 1:
            return diff.sum(axis=1)
        if self.p == 2:
            return np.einsum("ij,ij->i", diff, diff)
        return np.power(diff, self.p).sum(axis=1)

    def _powers_block(self, block: np.ndarray, points: np.ndarray) -> np.ndarray:
        if self.p == 2:
            # Gram expansion ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b,
            # dispatched through the kernel layer (BLAS matmul on the
            # numpy path, a parallel jitted loop nest under numba).  On
            # integer-valued inputs (the paper's exact-tie
            # constructions, binarized data, digit images) every product
            # and partial sum is an exactly representable integer, so
            # both kernel implementations match the difference-based
            # kernel bit for bit; on general floats they agree up to
            # roundoff of the expansion and are clamped at 0.
            from ..neighbors.kernels import gram_l2_powers

            return gram_l2_powers(block, points)
        diff = np.abs(block[:, None, :] - points[None, :, :])
        if self.p is np.inf:
            return diff.max(axis=2)
        if self.p == 1:
            return diff.sum(axis=2)
        return np.power(diff, self.p).sum(axis=2)

    def _power_to_distance(self, values: np.ndarray) -> np.ndarray:
        if self.p is np.inf or self.p == 1:
            return values
        if self.p == 2:
            return np.sqrt(values)
        return np.power(values, 1.0 / self.p)

    def _block_row_cost(self, m: int, n: int) -> int:
        # The Gram kernel only materializes (rows, m) matrices.
        return m if self.p == 2 else m * max(1, n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LpMetric(p={self.p})"


class L1Metric(LpMetric):
    """Manhattan distance (Section 6 of the paper)."""

    def __init__(self):
        super().__init__(1)


class L2Metric(LpMetric):
    """Euclidean distance (Section 5 of the paper)."""

    def __init__(self):
        super().__init__(2)


class LInfMetric(LpMetric):
    """Chebyshev distance; provided as an extension beyond the paper."""

    def __init__(self):
        super().__init__(np.inf)
