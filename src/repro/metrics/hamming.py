"""Hamming metric over {0,1}^n (the paper's discrete setting)."""

from __future__ import annotations

import numpy as np

from .base import _BLOCK_ELEMENTS, Metric


class HammingMetric(Metric):
    """Number of differing components between two Boolean vectors.

    Vectors are represented as float arrays with entries in {0.0, 1.0}; the
    distance computation ``sum |x_i - y_i|`` is exact for such inputs, so
    Hamming distances are always integral floats.
    """

    name = "hamming"
    is_discrete = True

    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Hamming distances from every row of *points* to *x*."""
        return np.abs(points - x).sum(axis=1)

    def _powers_block(self, block: np.ndarray, points: np.ndarray) -> np.ndarray:
        # On {0,1} vectors, |a - b| = a + b - 2ab componentwise, so the
        # whole matrix reduces to one Gram pass, dispatched through the
        # kernel layer (one BLAS matmul on the numpy path, a parallel
        # jitted loop nest under numba); every intermediate is an
        # exactly representable integer, so both implementations match
        # the difference-based kernel bit for bit.  Non-Boolean inputs
        # (the metric is occasionally applied to unvalidated queries)
        # fall back to broadcasting the difference tensor, in sub-blocks
        # that respect the memory cap the Gram row cost does not
        # account for.
        if is_binary(block) and is_binary(points):
            from ..neighbors.kernels import gram_hamming_counts

            return gram_hamming_counts(block, points)
        out = np.empty((block.shape[0], points.shape[0]))
        rows = max(1, _BLOCK_ELEMENTS // max(1, points.shape[0] * points.shape[1]))
        for start in range(0, block.shape[0], rows):
            rows_slice = slice(start, min(start + rows, block.shape[0]))
            out[rows_slice] = np.abs(
                block[rows_slice, None, :] - points[None, :, :]
            ).sum(axis=2)
        return out

    def _block_row_cost(self, m: int, n: int) -> int:
        # The Boolean Gram kernel only materializes (rows, m) matrices;
        # the non-Boolean fallback sub-blocks its difference tensor
        # itself, so the row cost here reflects the common binary case.
        return m


def is_binary(values: np.ndarray) -> bool:
    """True when every entry of *values* is exactly 0.0 or 1.0.

    The bit-packed index layer and the Gram kernel above are only exact
    (and only applicable) on such inputs.
    """
    return bool(np.all((values == 0.0) | (values == 1.0)))


# Backward-compatible private alias (pre-backend-layer name).
_is_boolean = is_binary
