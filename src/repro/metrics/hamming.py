"""Hamming metric over {0,1}^n (the paper's discrete setting)."""

from __future__ import annotations

import numpy as np

from .base import Metric


class HammingMetric(Metric):
    """Number of differing components between two Boolean vectors.

    Vectors are represented as float arrays with entries in {0.0, 1.0}; the
    distance computation ``sum |x_i - y_i|`` is exact for such inputs, so
    Hamming distances are always integral floats.
    """

    name = "hamming"
    is_discrete = True

    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.abs(points - x).sum(axis=1)

    def _powers_block(self, block: np.ndarray, points: np.ndarray) -> np.ndarray:
        # On {0,1} vectors, |a - b| = a + b - 2ab componentwise, so the
        # whole matrix reduces to one BLAS matmul; every intermediate is
        # an exactly representable integer, so this matches the
        # difference-based kernel bit for bit.  Non-Boolean inputs (the
        # metric is occasionally applied to unvalidated queries) fall
        # back to broadcasting the difference tensor.
        if _is_boolean(block) and _is_boolean(points):
            return (
                block.sum(axis=1)[:, None]
                + points.sum(axis=1)[None, :]
                - 2.0 * (block @ points.T)
            )
        return np.abs(block[:, None, :] - points[None, :, :]).sum(axis=2)


def _is_boolean(values: np.ndarray) -> bool:
    return bool(np.all((values == 0.0) | (values == 1.0)))
