"""Hamming metric over {0,1}^n (the paper's discrete setting)."""

from __future__ import annotations

import numpy as np

from .base import Metric


class HammingMetric(Metric):
    """Number of differing components between two Boolean vectors.

    Vectors are represented as float arrays with entries in {0.0, 1.0}; the
    distance computation ``sum |x_i - y_i|`` is exact for such inputs, so
    Hamming distances are always integral floats.
    """

    name = "hamming"
    is_discrete = True

    def distances_to(self, points: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.abs(points - x).sum(axis=1)
