"""repro — abductive and counterfactual explanations for k-NN classifiers.

A full reproduction of *"Explaining k-Nearest Neighbors: Abductive and
Counterfactual Explanations"* (PODS 2025): the exact optimistic k-NN
semantics, polynomial-time explanation algorithms for every tractable
cell of the paper's Table 1, SAT/MILP pipelines for the intractable
cells, and executable versions of every hardness reduction.

Every pipeline runs on one shared primitive: the
:class:`~repro.knn.QueryEngine`, a vectorized batch query core that
owns a (dataset, metric) pair and serves broadcast distance matrices,
Proposition-1 radii, batched classification/margins, and an LRU cache
of per-query distance vectors.  Classifiers and explanation calls can
share an engine (``engine=`` / ``query_engine=``) so repeated queries
never recompute a distance.

For long-lived serving, :mod:`repro.serve` wraps the pipelines in an
:class:`~repro.serve.ExplanationService`: one warm engine per dataset
fingerprint, micro-batched concurrent requests, LRU-cached answers
with optional disk persistence, and a stdlib HTTP endpoint
(``repro-knn serve --port``).

Quickstart
----------
>>> import numpy as np
>>> from repro import Dataset, KNNClassifier
>>> data = Dataset([[0, 0], [1, 1]], [[3, 3], [4, 4]])
>>> clf = KNNClassifier(data, k=1, metric="l2")
>>> clf.classify([0.5, 0.5])
1
>>> clf.classify_batch([[0.5, 0.5], [3.5, 3.5]]).tolist()
[1, 0]
"""

from __future__ import annotations

from .exceptions import (
    DimensionMismatchError,
    DurabilityError,
    InfeasibleError,
    OverloadedError,
    ReproError,
    ResourceLimitError,
    SolverError,
    UnboundedError,
    UnknownDatasetError,
    UnsupportedSettingError,
    ValidationError,
)
from .abductive import (
    CheckResult,
    check_sufficient_reason,
    is_minimal_sufficient_reason,
    minimal_sufficient_reason,
    minimum_sufficient_reason,
)
from .counterfactual import (
    CounterfactualResult,
    closest_counterfactual,
    exists_counterfactual,
)
from .knn import (
    Dataset,
    KNNClassifier,
    QueryEngine,
    Witness,
    find_witness,
    verify_witness,
)
from .metrics import (
    HammingMetric,
    L1Metric,
    L2Metric,
    LInfMetric,
    LpMetric,
    Metric,
    get_metric,
)
from .portfolio import (
    PortfolioAttempt,
    PortfolioResult,
    portfolio_closest_counterfactual,
    portfolio_minimum_sufficient_reason,
)
from .serve import (
    ClusterService,
    ExplanationRequest,
    ExplanationResponse,
    ExplanationService,
    dataset_fingerprint,
    serve_http,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # knn
    "Dataset",
    "KNNClassifier",
    "QueryEngine",
    "Witness",
    "find_witness",
    "verify_witness",
    # abductive explanations
    "CheckResult",
    "check_sufficient_reason",
    "minimal_sufficient_reason",
    "is_minimal_sufficient_reason",
    "minimum_sufficient_reason",
    # counterfactual explanations
    "CounterfactualResult",
    "closest_counterfactual",
    "exists_counterfactual",
    # solver portfolio
    "PortfolioAttempt",
    "PortfolioResult",
    "portfolio_minimum_sufficient_reason",
    "portfolio_closest_counterfactual",
    # serving layer
    "ClusterService",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationService",
    "dataset_fingerprint",
    "serve_http",
    # metrics
    "Metric",
    "LpMetric",
    "L1Metric",
    "L2Metric",
    "LInfMetric",
    "HammingMetric",
    "get_metric",
    # exceptions
    "ReproError",
    "ValidationError",
    "DimensionMismatchError",
    "DurabilityError",
    "UnknownDatasetError",
    "UnsupportedSettingError",
    "OverloadedError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "ResourceLimitError",
]
