"""Random graph generators for the reduction benchmarks."""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..exceptions import ValidationError


def random_graph(rng: np.random.Generator, n: int, p: float = 0.5) -> nx.Graph:
    """G(n, p) with nodes 0..n-1 and at least one edge."""
    if n < 2:
        raise ValidationError("need at least two nodes")
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    if g.number_of_edges() == 0:
        g.add_edge(0, 1)
    return g


def random_regular_graph(rng: np.random.Generator, n: int, d: int) -> nx.Graph:
    """A random d-regular graph (for the Lemma 2 embedding)."""
    if n * d % 2 or d >= n:
        raise ValidationError("need n*d even and d < n for a d-regular graph")
    seed = int(rng.integers(0, 2**31 - 1))
    return nx.random_regular_graph(d, n, seed=seed)
