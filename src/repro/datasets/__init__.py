"""Data substrate for experiments, examples, and benchmarks.

The paper's Section 9 evaluates on (a) uniformly random Boolean vectors
with Bernoulli(1/2) labels and (b) MNIST, in grayscale and binarized
forms at several rescalings.  MNIST is not redistributable offline, so
:mod:`digits` generates synthetic digit images — stroke-based
seven-segment glyphs with elastic noise — that exercise the exact same
code paths (image-structured, class-clustered, binarizable, rescalable)
and preserve the scaling shape of the runtime experiments.
"""

from __future__ import annotations

from .digits import DigitImages, binarize_images, render_ascii, scale_image
from .graphs import random_graph, random_regular_graph
from .synthetic import gaussian_blobs, random_boolean_dataset

__all__ = [
    "random_boolean_dataset",
    "gaussian_blobs",
    "DigitImages",
    "binarize_images",
    "scale_image",
    "render_ascii",
    "random_graph",
    "random_regular_graph",
]
