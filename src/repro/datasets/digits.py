"""Synthetic digit images — the offline MNIST substitute.

Digits are drawn as seven-segment-style stroke skeletons in the unit
square, rasterized at any side length with a soft-brush falloff, and
perturbed per-sample with a small random affine jitter plus pixel
noise.  The result is an image dataset with the properties the paper's
MNIST experiments rely on: class-clustered, image-structured,
binarizable, and rescalable to sweep the feature-count axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..knn import Dataset

# Seven-segment endpoints in unit coordinates (x right, y down).
_SEGMENTS = {
    "A": ((0.2, 0.12), (0.8, 0.12)),  # top
    "B": ((0.8, 0.12), (0.8, 0.5)),   # top right
    "C": ((0.8, 0.5), (0.8, 0.88)),   # bottom right
    "D": ((0.2, 0.88), (0.8, 0.88)),  # bottom
    "E": ((0.2, 0.5), (0.2, 0.88)),   # bottom left
    "F": ((0.2, 0.12), (0.2, 0.5)),   # top left
    "G": ((0.2, 0.5), (0.8, 0.5)),    # middle
}

_DIGIT_SEGMENTS = {
    0: "ABCDEF",
    1: "BC",
    2: "ABGED",
    3: "ABGCD",
    4: "FGBC",
    5: "AFGCD",
    6: "AFGECD",
    7: "ABC",
    8: "ABCDEFG",
    9: "ABCDFG",
}


def _digit_strokes(digit: int) -> list[tuple[np.ndarray, np.ndarray]]:
    if digit not in _DIGIT_SEGMENTS:
        raise ValidationError(f"digit must be 0..9, got {digit}")
    return [
        (np.array(_SEGMENTS[s][0]), np.array(_SEGMENTS[s][1]))
        for s in _DIGIT_SEGMENTS[digit]
    ]


def _jitter(rng: np.random.Generator, strokes, amount: float):
    """Random rotation/scale/translation applied to stroke endpoints."""
    theta = rng.uniform(-amount, amount)
    scale = 1.0 + rng.uniform(-amount, amount)
    shift = rng.uniform(-amount / 2, amount / 2, size=2)
    c, s = np.cos(theta), np.sin(theta)
    rot = np.array([[c, -s], [s, c]])
    center = np.array([0.5, 0.5])

    def transform(point):
        return rot @ ((point - center) * scale) + center + shift

    return [(transform(a), transform(b)) for a, b in strokes]


def _rasterize(strokes, side: int, stroke_width: float) -> np.ndarray:
    """Soft-brush rasterization: intensity decays with distance to strokes."""
    coords = (np.arange(side) + 0.5) / side
    xs, ys = np.meshgrid(coords, coords)
    pixels = np.stack([xs, ys], axis=-1)  # (side, side, 2), (x, y)
    image = np.zeros((side, side))
    for a, b in strokes:
        ab = b - a
        denom = float(ab @ ab)
        if denom == 0.0:
            continue
        t = np.clip(((pixels - a) @ ab) / denom, 0.0, 1.0)
        closest = a + t[..., None] * ab
        dist2 = ((pixels - closest) ** 2).sum(axis=-1)
        image = np.maximum(image, np.exp(-dist2 / (2.0 * stroke_width**2)))
    return image


@dataclass(frozen=True)
class DigitImages:
    """A generated set of digit images.

    Attributes
    ----------
    images:
        array of shape ``(count, side, side)`` with entries in [0, 1].
    labels:
        the digit (0..9) of each image.
    """

    images: np.ndarray
    labels: np.ndarray

    @property
    def side(self) -> int:
        """Edge length in pixels of the square digit images."""
        return self.images.shape[1]

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        digits=(4, 9),
        count_per_digit: int = 50,
        side: int = 16,
        *,
        jitter: float = 0.08,
        noise: float = 0.08,
        stroke_width: float = 0.045,
    ) -> "DigitImages":
        """Sample ``count_per_digit`` noisy renderings of each digit."""
        if side < 4:
            raise ValidationError("side must be at least 4 pixels")
        if count_per_digit < 1:
            raise ValidationError("count_per_digit must be positive")
        images, labels = [], []
        for digit in digits:
            strokes = _digit_strokes(int(digit))
            for _ in range(count_per_digit):
                sample = _rasterize(_jitter(rng, strokes, jitter), side, stroke_width)
                sample = np.clip(sample + rng.normal(0, noise, sample.shape), 0.0, 1.0)
                images.append(sample)
                labels.append(int(digit))
        return cls(images=np.array(images), labels=np.array(labels))

    def flattened(self) -> np.ndarray:
        """``(count, side*side)`` feature matrix."""
        return self.images.reshape(self.images.shape[0], -1)

    def to_dataset(self, positive_digit: int, *, binarized: bool = False) -> Dataset:
        """Binary task: *positive_digit* vs the rest (as the paper does).

        With ``binarized=True`` pixels are thresholded at 0.5, matching
        the paper's "binarized version to represent the discrete
        setting".
        """
        features = self.flattened()
        if binarized:
            features = (features >= 0.5).astype(float)
        labels = self.labels == int(positive_digit)
        if labels.all() or not labels.any():
            raise ValidationError(
                f"digit {positive_digit} must be present along with other digits"
            )
        return Dataset(features[labels], features[~labels], discrete=binarized)


def binarize_images(images: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Threshold grayscale images to {0, 1}."""
    return (np.asarray(images) >= float(threshold)).astype(float)


def scale_image(image: np.ndarray, side: int) -> np.ndarray:
    """Nearest-neighbor rescaling to ``side x side`` (the paper's sweeps)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValidationError("scale_image expects a single 2-D image")
    src = image.shape[0]
    idx = np.minimum((np.arange(side) * src) // side, src - 1)
    return image[np.ix_(idx, idx)]


def render_ascii(image: np.ndarray, *, charset: str = " .:-=+*#%@") -> str:
    """Terminal rendering of a grayscale or binary image."""
    image = np.asarray(image, dtype=float)
    if image.ndim == 1:
        side = int(round(np.sqrt(image.shape[0])))
        image = image.reshape(side, side)
    levels = len(charset) - 1
    quantized = np.clip((image * levels).round().astype(int), 0, levels)
    return "\n".join("".join(charset[v] for v in row) for row in quantized)
