"""Synthetic point-cloud generators.

:func:`random_boolean_dataset` reproduces the Section 9.1 workload:
"uniformly random vectors in {0,1}^n, labeled according to independent
Bernoulli variables of parameter p = 1/2".
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..knn import Dataset


def random_boolean_dataset(
    rng: np.random.Generator,
    n: int,
    size: int,
    *,
    label_probability: float = 0.5,
) -> Dataset:
    """Uniform random {0,1}^n points with Bernoulli labels (§9.1).

    ``size`` is the total ``|S+| + |S-|``.  Degenerate draws where one
    class is empty are re-balanced by flipping one label, so the result
    is always a usable two-class dataset.
    """
    if n < 1 or size < 2:
        raise ValidationError("need n >= 1 and size >= 2")
    if not 0 < label_probability < 1:
        raise ValidationError("label_probability must be in (0, 1)")
    points = rng.integers(0, 2, size=(size, n)).astype(float)
    labels = rng.random(size) < label_probability
    if labels.all():
        labels[0] = False
    elif not labels.any():
        labels[0] = True
    return Dataset(points[labels], points[~labels], discrete=True)


def gaussian_blobs(
    rng: np.random.Generator,
    n: int,
    size_per_class: int,
    *,
    separation: float = 3.0,
    scale: float = 1.0,
) -> Dataset:
    """Two Gaussian clusters, one per class, ``separation`` apart.

    The positive blob is centered at ``+separation/2`` on every axis and
    the negative blob at ``-separation/2`` — the classic linearly
    separable toy workload used for the Figure 2 style illustrations.
    """
    if size_per_class < 1:
        raise ValidationError("need at least one point per class")
    offset = np.full(n, separation / 2.0)
    pos = rng.normal(size=(size_per_class, n)) * scale + offset
    neg = rng.normal(size=(size_per_class, n)) * scale - offset
    return Dataset(pos, neg)
