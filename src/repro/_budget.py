"""Wall-clock budget bookkeeping shared by the budgeted pipelines.

The solver portfolio (:mod:`repro.portfolio`) and the ``time_limit``
arguments of the hard-instance pipelines all follow the same contract:
a budget is converted to an absolute deadline once at entry, every
checkpoint asks how much is left, and an exhausted budget surfaces as
:class:`~repro.exceptions.ResourceLimitError` — the signal the
portfolio racer catches to move on to the next method.

Process-level racing adds a second interrupt source: a *cancel event*.
Race worker processes install their ``multiprocessing.Event`` here once
at startup; every budget checkpoint then doubles as a cancellation
point, so a losing attempt unwinds through the exact same
``ResourceLimitError`` path a timeout would take — no new control flow
in the pipelines.  The parent process never installs an event, so
in-process callers pay a single ``is None`` check.
"""

from __future__ import annotations

import time
from typing import Any

from .exceptions import ResourceLimitError

# The cancel event of the current race attempt, if this process is a
# portfolio race worker (set once by repro.solvers.race._worker_main).
_cancel_event: Any = None


def install_cancel_event(event: Any) -> None:
    """Register *event* as this process's race-cancellation flag.

    Passing ``None`` uninstalls.  Intended for race worker processes;
    the event is shared with the parent, which sets it when another
    method wins so every budget checkpoint in this process aborts.
    """
    global _cancel_event
    _cancel_event = event


def cancel_requested() -> bool:
    """True when a cancel event is installed and has been set."""
    return _cancel_event is not None and _cancel_event.is_set()


def check_cancelled(what: str) -> None:
    """Raise :class:`ResourceLimitError` if the race cancelled *what*."""
    if _cancel_event is not None and _cancel_event.is_set():
        raise ResourceLimitError(f"{what} cancelled by the portfolio race")


def start_deadline(time_limit: float | None) -> float | None:
    """Absolute ``perf_counter`` deadline for *time_limit* seconds (None = no cap)."""
    return None if time_limit is None else time.perf_counter() + float(time_limit)


def remaining_budget(deadline: float | None, what: str) -> float | None:
    """Seconds left before *deadline*; raises once the budget is spent.

    Returns None for the uncapped case so callers can pass the result
    straight through as a nested ``time_limit``.  Also serves as a
    cancellation point for process-level races (see
    :func:`install_cancel_event`).
    """
    check_cancelled(what)
    if deadline is None:
        return None
    left = deadline - time.perf_counter()
    if left <= 0:
        raise ResourceLimitError(f"{what} exceeded its time budget")
    return left
