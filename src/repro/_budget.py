"""Wall-clock budget bookkeeping shared by the budgeted pipelines.

The solver portfolio (:mod:`repro.portfolio`) and the ``time_limit``
arguments of the hard-instance pipelines all follow the same contract:
a budget is converted to an absolute deadline once at entry, every
checkpoint asks how much is left, and an exhausted budget surfaces as
:class:`~repro.exceptions.ResourceLimitError` — the signal the
portfolio racer catches to move on to the next method.
"""

from __future__ import annotations

import time

from .exceptions import ResourceLimitError


def start_deadline(time_limit: float | None) -> float | None:
    """Absolute ``perf_counter`` deadline for *time_limit* seconds (None = no cap)."""
    return None if time_limit is None else time.perf_counter() + float(time_limit)


def remaining_budget(deadline: float | None, what: str) -> float | None:
    """Seconds left before *deadline*; raises once the budget is spent.

    Returns None for the uncapped case so callers can pass the result
    straight through as a nested ``time_limit``.
    """
    if deadline is None:
        return None
    left = deadline - time.perf_counter()
    if left <= 0:
        raise ResourceLimitError(f"{what} exceeded its time budget")
    return left
