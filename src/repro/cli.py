"""Command-line front end: ``python -m repro`` / ``repro-knn``.

Subcommands
-----------
``table1``
    print the complexity-results table (paper Table 1);
``figure <id>``
    regenerate one of the paper's runtime figures as a text table
    (``fig5a``, ``fig5b``, ``fig6a``, ``fig6b``), with optional
    ``--repeats``, ``--seed``, ``--workers`` (process-pool grid
    sharding) and ``--json`` (sweep rows as JSON);
``explain``
    run an explanation query on a randomly generated dataset — a smoke
    test showing the three pipelines end to end (``--backend`` selects
    the engine's index backend, ``--solver`` the Minimum-SR pipeline —
    including ``portfolio``, which races every applicable solver under
    the per-method ``--budget`` and falls back to the greedy anytime
    answer on all-timeout);
``bench``
    measure the headline benchmark workloads and optionally gate them
    against a committed baseline — the CI ``bench-baseline`` job runs
    ``bench --json BENCH_pr.json --baseline benchmarks/BENCH_baseline.json``;
``serve``
    start the long-lived explanation service (:mod:`repro.serve`) on a
    stdlib HTTP endpoint: datasets are registered over ``POST
    /v1/datasets``, explanations answered (micro-batched and cached)
    over ``POST /v1/explain``; ``--state-dir`` makes every dataset
    lineage durable (WAL + snapshots, restored on restart) and ``GET
    /metrics`` exposes Prometheus series — see the README's "Serving
    explanations" quickstart, ``docs/architecture.md``, and
    ``docs/operations.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from .abductive import minimal_sufficient_reason, minimum_sufficient_reason
from .counterfactual import closest_counterfactual
from .datasets import random_boolean_dataset
from .experiments import bench
from .experiments.figures import ALL_FIGURES, FigureSweepTask
from .experiments.runner import run_sweep
from .experiments.tables import render_results_table, render_table1
from .knn import QueryEngine
from .knn.engine import BACKENDS
from .portfolio import (
    portfolio_closest_counterfactual,
    portfolio_minimum_sufficient_reason,
)

#: Minimum-SR pipelines selectable with ``explain --solver``.
EXPLAIN_SOLVERS = ("auto", "milp", "sat", "brute", "portfolio")


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_figure(args) -> int:
    spec = ALL_FIGURES.get(args.figure_id)
    if spec is None:
        print(f"unknown figure {args.figure_id!r}; choose from {sorted(ALL_FIGURES)}")
        return 2
    result = run_sweep(
        f"{spec.figure_id}: {spec.description}",
        spec.grid(),
        FigureSweepTask(args.figure_id, args.seed),
        repeats=args.repeats,
        verbose=True,
        workers=args.workers,
        budget=args.budget,
    )
    print()
    print(render_results_table(result))
    if args.json:
        result.save_json(args.json)
        print(f"\nwrote sweep rows to {args.json}")
    return 0


def _explain_multiclass(args, rng) -> int:
    """The ``explain --classes C`` (C > 2) path: merge-based pipelines.

    Generates a random integer-labeled boolean dataset, classifies the
    query under both vote modes, and runs the one-vs-rest explanation
    pipelines through the shared multiclass engine — the CLI twin of
    the ``/v2`` multiclass serving surface.
    """
    from .knn import MultiClass1NN

    points = rng.integers(0, 2, size=(args.size, args.dimension)).astype(float)
    labels = rng.integers(0, args.classes, size=args.size)
    labels[: args.classes] = np.arange(args.classes)  # every class inhabited
    x = rng.integers(0, 2, size=args.dimension).astype(float)
    clf = MultiClass1NN(points, labels, "hamming", backend=args.backend)
    engine = clf.engine
    print(f"dataset: {clf!r}")
    print(f"engine backend: {engine.backend}")
    print(f"query x: {x.astype(int).tolist()}")
    label = clf.classify(x)
    print(f"predicted label (1-NN): {label}")
    for vote in ("uniform", "distance"):
        marker = " <- --vote" if vote == args.vote else ""
        print(f"k=3 {vote} vote: {engine.classify(x, 3, vote=vote)}{marker}")
    msr = clf.minimal_sufficient_reason(x)
    print(f"minimal sufficient reason for label {label} vs rest "
          f"({len(msr)} of {args.dimension} features): {sorted(msr)}")
    target = args.target_label
    if target is not None and target == label:
        print(f"x already has target label {target}; finding untargeted flip")
        target = None
    cf = clf.closest_counterfactual(x, target=target)
    if cf.found:
        flipped = sorted(int(i) for i in np.flatnonzero(cf.y != x))
        goal = f"label {target}" if target is not None else "any other label"
        print(f"closest counterfactual to {goal} flips "
              f"{int(cf.distance)} feature(s): {flipped}")
    else:
        print("no counterfactual exists")
    return 0


def _cmd_explain(args) -> int:
    rng = np.random.default_rng(args.seed)
    if args.classes > 2:
        return _explain_multiclass(args, rng)
    data = random_boolean_dataset(rng, args.dimension, args.size)
    x = rng.integers(0, 2, size=args.dimension).astype(float)
    engine = QueryEngine(data, "hamming", backend=args.backend)
    print(f"dataset: {data!r}")
    print(f"engine backend: {engine.backend}")
    print(f"query x: {x.astype(int).tolist()}")
    msr = minimal_sufficient_reason(data, 1, "hamming", x, engine=engine)
    print(f"minimal sufficient reason ({len(msr)} of {args.dimension} features): "
          f"{sorted(msr)}")
    if args.solver == "portfolio":
        race = portfolio_minimum_sufficient_reason(
            data, 1, "hamming", x, budget=args.budget, engine=engine
        )
        minimum = race.answer
        budget_desc = (
            "no budget" if args.budget is None else f"{args.budget:g}s/method"
        )
        print(
            f"minimum sufficient reason ({minimum.size} features, "
            f"method={race.method}, exact={race.exact}, "
            f"{race.elapsed_s * 1000:.0f} ms, {budget_desc}): "
            f"{sorted(minimum.X)}"
        )
        for attempt in race.attempts:
            print(f"  portfolio attempt {attempt.method}: {attempt.status} "
                  f"({attempt.elapsed_s * 1000:.0f} ms)")
        cf_race = portfolio_closest_counterfactual(
            data, 1, "hamming", x, budget=args.budget, query_engine=engine
        )
        cf = cf_race.answer
        print(f"counterfactual solver: {cf_race.method} (exact={cf_race.exact})")
    else:
        minimum = minimum_sufficient_reason(
            data, 1, "hamming", x, method=args.solver, engine=engine,
            time_limit=args.budget,
        )
        print(f"minimum sufficient reason ({minimum.size} features, "
              f"method={minimum.method}): {sorted(minimum.X)}")
        cf = closest_counterfactual(
            data, 1, "hamming", x, method="hamming-milp", query_engine=engine,
            time_limit=args.budget,
        )
    if cf.found:
        flipped = sorted(int(i) for i in np.flatnonzero(cf.y != x))
        print(f"closest counterfactual flips {int(cf.distance)} feature(s): {flipped}")
    else:
        print("no counterfactual exists (single-class data)")
    return 0


def _load_baseline(path: str) -> dict:
    """Read and structurally validate a committed ``BENCH_*.json`` baseline.

    Raises SystemExit-friendly ``ValueError`` with a one-line message on
    a missing, unreadable, or malformed file — the CLI turns that into
    exit code 2 instead of a traceback.
    """
    try:
        payload = bench.load_json(path)
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise ValueError(f"cannot read baseline {path}: {reason}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("workloads"), dict
    ):
        raise ValueError(
            f"baseline {path} is not a BENCH payload (no 'workloads' table); "
            "reseed it with: repro bench --json " + path
        )
    return payload


def _cmd_bench(args) -> int:
    baseline = None
    if args.baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    payload = bench.collect(
        seed=args.seed,
        repeats=args.repeats,
        workers=args.workers,
        workloads=args.workloads or None,
        train=args.train,
        dim=args.dim,
    )
    failures: list[str] = []
    if baseline is not None:
        # Best-of-3 re-measurement before a failure is final: the
        # committed baseline comes from another machine, so the gate
        # absorbs one-off shared-runner noise (updates payload in place,
        # so the saved artifact shows the gated numbers).
        failures = bench.compare_with_retry(
            payload, baseline, max_regression=args.max_regression
        )
    report = bench.render_report(payload, baseline=baseline)
    print(report)
    if args.json:
        bench.save_json(payload, args.json)
        print(f"\nwrote benchmark payload to {args.json}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write("### Benchmark headlines\n\n" + report + "\n")
    if baseline is not None:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"\nregression gate passed (headline within "
            f"{args.max_regression:.0%} of baseline)"
        )
    return 0


def _build_serve_service(args):
    """The serving target the ``serve`` flags describe.

    ``--workers 1`` (the default) builds exactly the single-process
    :class:`~repro.serve.ExplanationService` this command always built —
    bit-identical behavior, regression-tested — while ``--workers N``
    (N > 1) builds a sharded
    :class:`~repro.serve.ClusterService` with ``--replicas`` read
    replicas per dataset lineage and ``--queue-depth`` admission bounds
    per worker.
    """
    from .serve import ClusterService, ExplanationService

    log_stream = None if args.no_json_logs else sys.stderr
    if args.workers <= 1:
        return ExplanationService(
            backend=args.backend,
            cache_size=args.cache_size,
            cache_dir=args.cache_dir,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1000.0,
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every,
            log_stream=log_stream,
            solver_pool=args.solver_pool,
            parallel_portfolio=args.parallel_portfolio,
            race_workers=args.race_workers,
        )
    return ClusterService(
        workers=args.workers,
        replicas=args.replicas,
        queue_depth=args.queue_depth,
        backend=args.backend,
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        max_batch=args.max_batch,
        state_dir=args.state_dir,
        snapshot_every=args.snapshot_every,
        log_stream=log_stream,
        solver_pool=args.solver_pool,
        parallel_portfolio=args.parallel_portfolio,
        race_workers=args.race_workers,
    )


def _cmd_serve(args) -> int:
    """Run the explanation service until interrupted (``repro serve``)."""
    from .serve import serve_http

    service = _build_serve_service(args)
    if args.workers > 1:
        print(
            f"cluster topology: {args.workers} workers, "
            f"{args.replicas} replicas/dataset, queue depth {args.queue_depth}"
        )
    if args.state_dir:
        restored = getattr(service, "restored", {}) or {}
        recovered = sum(
            1 for info in restored.values() if info.get("recovered", True)
        )
        print(
            f"durable state dir: {args.state_dir} "
            f"(restored {recovered} dataset lineage(s))"
        )
        for base, info in sorted(restored.items()):
            print(f"  {base}... -> v{info['version']}")
    if args.demo_size:
        rng = np.random.default_rng(args.seed)
        data = random_boolean_dataset(rng, args.demo_dimension, args.demo_size)
        fingerprint = service.add_dataset(data)
        print(f"demo dataset registered: {data!r}")
        print(f"  fingerprint: {fingerprint}")
    server = serve_http(service, host=args.host, port=args.port)
    print(f"serving explanations on http://{args.host}:{server.port}")
    print(
        "  POST /v2/datasets | POST /v2/explain | GET /v2/stats "
        "| GET /v2/cluster | GET /metrics | GET /healthz (v1 aliases kept)"
    )
    if args.demo_size:
        instance = ", ".join(
            str(int(v)) for v in rng.integers(0, 2, size=args.demo_dimension)
        )
        print(
            f"  try: curl -s http://{args.host}:{server.port}/v1/explain "
            f"-d '{{\"fingerprint\": \"{fingerprint}\", \"method\": \"classify\", "
            f"\"instance\": [{instance}], \"params\": {{\"k\": 3}}}}'"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("\nshutting down")
    finally:
        server.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-knn",
        description="Abductive and counterfactual explanations for k-NN classifiers",
        epilog="Full docs: docs/architecture.md (module map and request flow) "
               "and docs/paper-map.md (theorem-to-code mapping).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the complexity landscape (Table 1)")

    fig = sub.add_parser("figure", help="regenerate a runtime figure as text")
    fig.add_argument("figure_id", help="fig5a | fig5b | fig6a | fig6b")
    fig.add_argument("--repeats", type=int, default=3)
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers sharding the sweep grid (default 1, serial)",
    )
    fig.add_argument("--json", metavar="PATH", help="also write sweep rows as JSON")
    fig.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="per-grid-point repeat budget; slow points run fewer repeats "
             "and are flagged 'truncated' (default: no budget)",
    )

    explain = sub.add_parser("explain", help="explain a random query end to end")
    explain.add_argument("--dimension", type=int, default=12)
    explain.add_argument("--size", type=int, default=30)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="QueryEngine index backend (default: auto)",
    )
    explain.add_argument(
        "--solver", choices=EXPLAIN_SOLVERS, default="auto",
        help="Minimum-SR pipeline; 'portfolio' races every applicable solver "
             "under the per-method --budget (default: auto)",
    )
    explain.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="per-method time budget for --solver portfolio / time limit for "
             "a single solver (default: none)",
    )
    explain.add_argument(
        "--classes", type=int, default=2, metavar="C",
        help="number of labels; C > 2 demonstrates the multiclass merge "
             "reduction on the shared engine (default 2: binary)",
    )
    explain.add_argument(
        "--target-label", type=int, default=None, metavar="L",
        help="counterfactual target label for --classes > 2 "
             "(default: flip to any other label)",
    )
    explain.add_argument(
        "--vote", choices=("uniform", "distance"), default="uniform",
        help="k-NN vote mode highlighted in the --classes > 2 demo "
             "(default: uniform)",
    )

    bench_p = sub.add_parser(
        "bench", help="measure benchmark headlines, optionally gate vs a baseline"
    )
    bench_p.add_argument("--json", metavar="PATH", help="write the BENCH payload here")
    bench_p.add_argument(
        "--baseline", metavar="PATH",
        help="gate the headline against this committed BENCH_*.json",
    )
    bench_p.add_argument(
        "--max-regression", type=float, default=bench.DEFAULT_MAX_REGRESSION,
        help="tolerated relative headline-speedup drop (default 0.25)",
    )
    bench_p.add_argument("--repeats", type=int, default=3)
    bench_p.add_argument("--seed", type=int, default=20250601)
    bench_p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers sharding the workloads (default 1, serial)",
    )
    bench_p.add_argument(
        "--workloads", nargs="*", metavar="NAME",
        help=f"subset of workloads to run (default: all of {sorted(bench.WORKLOADS)})",
    )
    bench_p.add_argument(
        "--train", type=int, default=None, metavar="N",
        help="training-set size override for scalable workloads (currently "
             "million_point; the nightly job passes 1000000)",
    )
    bench_p.add_argument(
        "--dim", type=int, default=None, metavar="D",
        help="dimensionality override for scalable workloads (see --train)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="start the batched explanation service on an HTTP endpoint",
        description="Long-lived explanation service: one warm QueryEngine per "
                    "registered dataset fingerprint, micro-batched requests, "
                    "LRU-cached answers (see docs/architecture.md).",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8000,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    serve_p.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="QueryEngine index backend for served datasets (default: auto)",
    )
    serve_p.add_argument(
        "--cache-size", type=int, default=2048,
        help="result-cache entries kept in memory (0 disables caching)",
    )
    serve_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist cached answers here (they survive restarts)",
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=256,
        help="largest micro-batch stacked into one vectorized engine call",
    )
    serve_p.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="batching window: how long concurrent requests accumulate "
             "before a flush (default 2 ms; single-process mode only)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding dataset lineages by fingerprint "
             "(default 1: the classic single-process service, unchanged)",
    )
    serve_p.add_argument(
        "--replicas", type=int, default=1,
        help="read replicas per dataset lineage when --workers > 1 "
             "(clamped to the worker count)",
    )
    serve_p.add_argument(
        "--queue-depth", type=int, default=64,
        help="admitted-but-unanswered requests each worker holds before "
             "shedding load with HTTP 429 (requires --workers > 1)",
    )
    serve_p.add_argument(
        "--solver-pool", type=int, default=32, metavar="N",
        help="warm cross-query SAT solvers kept per worker for the "
             "portfolio solver (0 disables pooling)",
    )
    serve_p.add_argument(
        "--parallel-portfolio", action="store_true",
        help="race the portfolio's exact methods concurrently in a "
             "process pool (first exact answer wins; answers stay "
             "bit-identical to the sequential race)",
    )
    serve_p.add_argument(
        "--race-workers", type=int, default=None, metavar="N",
        help="race worker processes when --parallel-portfolio is set "
             "(default: min(3, cpu count))",
    )
    serve_p.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable state root: every registration/mutation is WAL-logged "
             "and snapshotted there, and the service restores all dataset "
             "lineages from it on startup (see docs/operations.md)",
    )
    serve_p.add_argument(
        "--snapshot-every", type=int, default=64, metavar="N",
        help="mutations between dataset+engine snapshots per lineage "
             "(0 disables snapshots; the WAL alone still restores)",
    )
    serve_p.add_argument(
        "--no-json-logs", action="store_true",
        help="suppress the structured JSON log records written to stderr",
    )
    serve_p.add_argument(
        "--demo-size", type=int, default=0, metavar="N",
        help="preload a random boolean demo dataset with N points and "
             "print its fingerprint plus a ready-to-run curl example",
    )
    serve_p.add_argument("--demo-dimension", type=int, default=12)
    serve_p.add_argument("--seed", type=int, default=0)

    return parser


def main(argv=None) -> int:
    """CLI entry point: dispatch the parsed subcommand, return its exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure": _cmd_figure,
        "explain": _cmd_explain,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
