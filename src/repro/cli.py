"""Command-line front end: ``python -m repro`` / ``repro-knn``.

Subcommands
-----------
``table1``
    print the complexity-results table (paper Table 1);
``figure <id>``
    regenerate one of the paper's runtime figures as a text table
    (``fig5a``, ``fig5b``, ``fig6a``, ``fig6b``), with optional
    ``--repeats`` and ``--seed``;
``explain``
    run an explanation query on a randomly generated dataset — a smoke
    test showing the three pipelines end to end.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .abductive import minimal_sufficient_reason
from .counterfactual import closest_counterfactual
from .datasets import random_boolean_dataset
from .experiments.figures import ALL_FIGURES
from .experiments.runner import run_sweep
from .experiments.tables import render_results_table, render_table1
from .knn import QueryEngine


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_figure(args) -> int:
    spec = ALL_FIGURES.get(args.figure_id)
    if spec is None:
        print(f"unknown figure {args.figure_id!r}; choose from {sorted(ALL_FIGURES)}")
        return 2
    rng = np.random.default_rng(args.seed)
    result = run_sweep(
        f"{spec.figure_id}: {spec.description}",
        spec.grid(),
        lambda params: spec.make_task(rng, params["n"], params["N"]),
        repeats=args.repeats,
        verbose=True,
    )
    print()
    print(render_results_table(result))
    return 0


def _cmd_explain(args) -> int:
    rng = np.random.default_rng(args.seed)
    data = random_boolean_dataset(rng, args.dimension, args.size)
    x = rng.integers(0, 2, size=args.dimension).astype(float)
    engine = QueryEngine(data, "hamming")
    print(f"dataset: {data!r}")
    print(f"query x: {x.astype(int).tolist()}")
    msr = minimal_sufficient_reason(data, 1, "hamming", x, engine=engine)
    print(f"minimal sufficient reason ({len(msr)} of {args.dimension} features): "
          f"{sorted(msr)}")
    cf = closest_counterfactual(
        data, 1, "hamming", x, method="hamming-milp", query_engine=engine
    )
    if cf.found:
        flipped = sorted(int(i) for i in np.flatnonzero(cf.y != x))
        print(f"closest counterfactual flips {int(cf.distance)} feature(s): {flipped}")
    else:
        print("no counterfactual exists (single-class data)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-knn",
        description="Abductive and counterfactual explanations for k-NN classifiers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the complexity landscape (Table 1)")

    fig = sub.add_parser("figure", help="regenerate a runtime figure as text")
    fig.add_argument("figure_id", help="fig5a | fig5b | fig6a | fig6b")
    fig.add_argument("--repeats", type=int, default=3)
    fig.add_argument("--seed", type=int, default=0)

    explain = sub.add_parser("explain", help="explain a random query end to end")
    explain.add_argument("--dimension", type=int, default=12)
    explain.add_argument("--size", type=int, default=30)
    explain.add_argument("--seed", type=int, default=0)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"table1": _cmd_table1, "figure": _cmd_figure, "explain": _cmd_explain}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
