"""H-polyhedra with mixed strict/non-strict constraints.

The decision regions of an l2 k-NN classifier decompose into polyhedra
(label 1) and *open* polyhedra, i.e. solution sets of strict systems
(label 0); see Proposition 1 and the discussion opening Section 5.
:class:`Polyhedron` represents both at once:

    { x : A x <= b,  A_strict x < b_strict }

Feasibility checks use the max-epsilon LP reduction from the proof of
Proposition 3 (implemented in :mod:`repro.solvers.lp`).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..solvers.lp import feasible_point_strict
from .halfspace import Halfspace


class Polyhedron:
    """An intersection of (possibly strict) halfspaces in R^n."""

    def __init__(self, dimension: int, halfspaces: Iterable[Halfspace] = ()):
        self.dimension = int(dimension)
        weak_w, weak_b, strict_w, strict_b = [], [], [], []
        for h in halfspaces:
            if h.w.shape != (self.dimension,):
                raise ValueError(
                    f"halfspace dimension {h.w.shape} does not match R^{self.dimension}"
                )
            if h.strict:
                strict_w.append(h.w)
                strict_b.append(h.b)
            else:
                weak_w.append(h.w)
                weak_b.append(h.b)
        self.A = np.array(weak_w).reshape(-1, self.dimension)
        self.b = np.array(weak_b, dtype=float)
        self.A_strict = np.array(strict_w).reshape(-1, self.dimension)
        self.b_strict = np.array(strict_b, dtype=float)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_systems(cls, A=None, b=None, A_strict=None, b_strict=None, *, dimension=None):
        """Build from the systems ``A x <= b`` and ``A_strict x < b_strict``."""
        halfspaces = []
        if A is not None and len(A):
            A = np.asarray(A, dtype=float)
            dimension = A.shape[1]
            halfspaces += [Halfspace(row, bb) for row, bb in zip(A, np.atleast_1d(b))]
        if A_strict is not None and len(A_strict):
            A_strict = np.asarray(A_strict, dtype=float)
            dimension = A_strict.shape[1]
            halfspaces += [
                Halfspace(row, bb, strict=True)
                for row, bb in zip(A_strict, np.atleast_1d(b_strict))
            ]
        if dimension is None:
            raise ValueError("dimension required for an unconstrained polyhedron")
        return cls(dimension, halfspaces)

    # -- structure -------------------------------------------------------

    @property
    def n_constraints(self) -> int:
        """Total number of weak plus strict constraints."""
        return self.A.shape[0] + self.A_strict.shape[0]

    @property
    def has_strict(self) -> bool:
        """Whether any constraint is strict."""
        return self.A_strict.shape[0] > 0

    def closure(self) -> "Polyhedron":
        """The closed polyhedron obtained by weakening strict constraints."""
        halfspaces = [Halfspace(w, b) for w, b in zip(self.A, self.b)]
        halfspaces += [Halfspace(w, b) for w, b in zip(self.A_strict, self.b_strict)]
        return Polyhedron(self.dimension, halfspaces)

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """The polyhedron satisfying both constraint systems."""
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch")
        return Polyhedron(
            self.dimension,
            list(self.iter_halfspaces()) + list(other.iter_halfspaces()),
        )

    def iter_halfspaces(self):
        """Yield every constraint as a :class:`Halfspace`."""
        for w, b in zip(self.A, self.b):
            yield Halfspace(w, b)
        for w, b in zip(self.A_strict, self.b_strict):
            yield Halfspace(w, b, strict=True)

    # -- predicates --------------------------------------------------------

    def contains(self, x, *, tol: float = 1e-9) -> bool:
        """Whether *x* satisfies every constraint up to *tol*."""
        xv = np.asarray(x, dtype=float)
        if self.A.shape[0] and np.any(self.A @ xv > self.b + tol):
            return False
        if self.A_strict.shape[0] and np.any(self.A_strict @ xv >= self.b_strict - tol):
            return False
        return True

    def find_point(self, A_eq=None, b_eq=None) -> np.ndarray | None:
        """A point of the polyhedron (optionally restricted to ``A_eq x = b_eq``).

        Strict constraints are honored: the returned point satisfies them
        strictly, via the max-epsilon LP.  Returns None when empty.
        """
        return feasible_point_strict(
            self.A,
            self.b,
            self.A_strict,
            self.b_strict,
            A_eq,
            b_eq,
            n=self.dimension,
        )

    def is_empty(self, A_eq=None, b_eq=None) -> bool:
        """LP emptiness test (optionally restricted to ``A_eq x = b_eq``)."""
        return self.find_point(A_eq, b_eq) is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Polyhedron(R^{self.dimension}, {self.A.shape[0]} weak + "
            f"{self.A_strict.shape[0]} strict constraints)"
        )
