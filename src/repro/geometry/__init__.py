"""Polyhedral geometry for the continuous l2 setting (Section 5).

The key fact the paper exploits is that under the l2-norm the set of
points equidistant from two references ``a`` and ``c`` is a *hyperplane*
(Figure 3), so every distance comparison ``d(x,a) <= d(x,c)`` is a
halfspace in ``x``.  Combined with the Proposition-1 witness sets, the
decision regions of the classifier decompose into polynomially many
(possibly open) polyhedra — the structure every Section-5 algorithm
walks over.
"""

from __future__ import annotations

from .affine import AffineSubspace
from .halfspace import Halfspace, bisector_halfspace
from .polyhedron import Polyhedron
from .regions import decision_region_polyhedra

__all__ = [
    "Halfspace",
    "bisector_halfspace",
    "Polyhedron",
    "AffineSubspace",
    "decision_region_polyhedra",
]
