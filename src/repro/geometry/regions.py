"""Decision regions of an l2 k-NN classifier as unions of polyhedra.

By Proposition 1, ``{ x : f(x) = 1 }`` is the union, over witness pairs
``(A, B)`` with ``A ⊆ S+`` of size ``(k+1)/2`` and ``B ⊆ S-`` of size at
most ``(k-1)/2``, of the polyhedra

    P(A, B) = { x : d2(x, a) <= d2(x, c)  for all a in A, c in S- \\ B }

and ``{ x : f(x) = 0 }`` is the analogous union with the classes swapped
and *strict* inequalities.  Each distance comparison is a halfspace
(:func:`~repro.geometry.halfspace.bisector_halfspace`), so the union has
at most ``|S|^(2k)`` members — polynomially many for fixed k.  This is
the enumeration driving Proposition 3 and Theorem 2.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

import numpy as np

from .._validation import check_odd_k
from ..knn.dataset import Dataset
from .halfspace import bisector_halfspace
from .polyhedron import Polyhedron


def decision_region_polyhedra(
    dataset: Dataset, k: int, label: int
) -> Iterator[Polyhedron]:
    """Yield the Proposition-1 polyhedra covering ``{x : f^k(x) = label}``.

    For ``label == 1`` the pieces are closed; for ``label == 0`` they are
    open (strict constraints), reflecting the optimistic tie-breaking.
    Multiplicities are expanded first.
    """
    check_odd_k(k)
    if label not in (0, 1):
        raise ValueError(f"label must be 0 or 1, got {label}")
    expanded = dataset.expanded()
    if label == 1:
        winning, losing = expanded.positives, expanded.negatives
        strict = False
    else:
        winning, losing = expanded.negatives, expanded.positives
        strict = True
    need = (k + 1) // 2
    slack = (k - 1) // 2
    n = dataset.dimension
    n_win = winning.shape[0]
    n_lose = losing.shape[0]
    if n_win < need:
        # The winning class can never reach a majority: empty region.
        return
    for A_idx in combinations(range(n_win), need):
        A_pts = winning[list(A_idx)]
        for b_size in range(min(slack, n_lose) + 1):
            for B_idx in combinations(range(n_lose), b_size):
                keep = np.ones(n_lose, dtype=bool)
                keep[list(B_idx)] = False
                rest = losing[keep]
                halfspaces = [
                    bisector_halfspace(a, c, strict=strict)
                    for a in A_pts
                    for c in rest
                ]
                yield Polyhedron(n, halfspaces)


def count_region_polyhedra(dataset: Dataset, k: int, label: int) -> int:
    """Number of pieces :func:`decision_region_polyhedra` will yield."""
    from math import comb

    check_odd_k(k)
    expanded = dataset.expanded()
    if label == 1:
        n_win, n_lose = expanded.positives.shape[0], expanded.negatives.shape[0]
    else:
        n_win, n_lose = expanded.negatives.shape[0], expanded.positives.shape[0]
    need = (k + 1) // 2
    slack = (k - 1) // 2
    if n_win < need:
        return 0
    return comb(n_win, need) * sum(
        comb(n_lose, b) for b in range(min(slack, n_lose) + 1)
    )
