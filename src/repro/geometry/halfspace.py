"""Halfspaces and l2 bisector halfspaces.

Section 5 of the paper: with the l2-norm, ``d(x, a) <= d(x, c)`` is the
linear inequality ``(a - c)^T x >= 1/2 (a - c)^T (a + c)``, because the
set of equidistant points is the hyperplane through the midpoint
``(a + c)/2`` orthogonal to ``a - c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_vector


@dataclass(frozen=True)
class Halfspace:
    """The constraint ``w . x <= b`` (strict when ``strict`` is True)."""

    w: np.ndarray
    b: float
    strict: bool = False

    def __post_init__(self):
        object.__setattr__(self, "w", np.asarray(self.w, dtype=np.float64))
        object.__setattr__(self, "b", float(self.b))

    def contains(self, x, *, tol: float = 1e-9) -> bool:
        """Whether *x* satisfies the (possibly strict) inequality up to *tol*."""
        value = float(np.dot(self.w, np.asarray(x, dtype=np.float64)))
        if self.strict:
            return value < self.b - tol
        return value <= self.b + tol

    def flipped(self) -> "Halfspace":
        """The complementary halfspace ``w . x >= b`` as ``-w . x <= -b``.

        The complement of a non-strict halfspace is strict and vice
        versa.
        """
        return Halfspace(-self.w, -self.b, strict=not self.strict)


def bisector_halfspace(a, c, *, strict: bool = False) -> Halfspace:
    """Halfspace of points (weakly) l2-closer to *a* than to *c*.

    Returns the constraint for ``d2(x, a) <= d2(x, c)`` (or ``<`` when
    *strict*), in the ``w . x <= b`` convention:
    ``(c - a)^T x <= 1/2 (c - a)^T (c + a)``.
    """
    av = as_vector(a, name="a")
    cv = as_vector(c, name="c")
    if av.shape != cv.shape:
        raise ValueError(f"shape mismatch: {av.shape} vs {cv.shape}")
    w = cv - av
    b = 0.5 * float(np.dot(cv - av, cv + av))
    return Halfspace(w, b, strict=strict)
