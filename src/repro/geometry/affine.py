"""Axis-aligned affine subspaces ``U(X, x)``.

The sufficient-reason machinery works with the subspace of inputs that
agree with a reference vector ``x`` on a component set ``X``:

    U(X, x) = { y in R^n : y[i] = x[i] for every i in X }

(Proposition 3).  The class exposes both representations used by the
algorithms: equality constraints (to hand to an LP) and substitution
(eliminating the pinned coordinates to shrink a system).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_index_set, as_vector


class AffineSubspace:
    """``{ y : y[i] = anchor[i] for i in fixed }`` over R^n."""

    def __init__(self, anchor, fixed):
        self.anchor = as_vector(anchor, name="anchor")
        self.fixed = as_index_set(fixed, dimension=self.anchor.shape[0], name="fixed")
        self.dimension = self.anchor.shape[0]
        self.free = tuple(i for i in range(self.dimension) if i not in self.fixed)

    @property
    def codimension(self) -> int:
        """Number of independent equality constraints."""
        return len(self.fixed)

    def equality_system(self) -> tuple[np.ndarray, np.ndarray]:
        """``(A_eq, b_eq)`` with one row per fixed coordinate."""
        rows = sorted(self.fixed)
        A = np.zeros((len(rows), self.dimension))
        for r, i in enumerate(rows):
            A[r, i] = 1.0
        b = self.anchor[rows]
        return A, b

    def substitute(self, A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Eliminate the fixed coordinates from ``A y <= b``.

        Returns ``(A', b')`` over the free coordinates only, such that
        ``A' z <= b'`` iff ``A y <= b`` for the y obtained by embedding z.
        """
        A = np.asarray(A, dtype=float).reshape(-1, self.dimension)
        b = np.asarray(b, dtype=float).ravel()
        fixed = sorted(self.fixed)
        shift = A[:, fixed] @ self.anchor[fixed] if fixed else np.zeros(A.shape[0])
        return A[:, list(self.free)], b - shift

    def embed(self, z) -> np.ndarray:
        """Lift a free-coordinate vector back into R^n."""
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != len(self.free):
            raise ValueError(
                f"expected {len(self.free)} free coordinates, got {z.shape[0]}"
            )
        y = self.anchor.copy()
        y[list(self.free)] = z
        return y

    def contains(self, y, *, tol: float = 1e-12) -> bool:
        """Whether *y* satisfies every equality up to *tol*."""
        yv = as_vector(y, name="y")
        fixed = sorted(self.fixed)
        return bool(np.all(np.abs(yv[fixed] - self.anchor[fixed]) <= tol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AffineSubspace(R^{self.dimension}, fixed={sorted(self.fixed)})"
