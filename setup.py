"""Setup shim.

All project metadata lives in ``pyproject.toml``.  This file exists so
that ``pip install -e .`` works on offline machines whose environments
lack the ``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
