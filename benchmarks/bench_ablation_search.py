"""Ablation: linear vs binary search over the SAT distance bound.

Section 9.2 closes with "by doing a binary search over the parameter k
(or a linear search if the answer is expected to be small) we obtain a
closest counterfactual".  This ablation measures both strategies on the
random-boolean workload, where optimal counterfactual distances are
small — the regime where linear search wins by solving fewer (and
easier, mostly-SAT) instances.
"""

from __future__ import annotations

import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import random_boolean_dataset


@pytest.mark.parametrize("strategy", ["linear", "binary"])
@pytest.mark.parametrize("n", [20, 40])
def test_sat_bound_search_strategy(benchmark, rng, strategy, n):
    data = random_boolean_dataset(rng, n, 30)
    x = rng.integers(0, 2, size=n).astype(float)

    def task():
        return closest_counterfactual(
            data, 1, "hamming", x, method="hamming-sat", strategy=strategy
        )

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.found
