"""Acceptance gate: micro-batched serving vs a sequential request loop.

The pre-serve repo answered every explanation with a one-shot
library/CLI call: engine construction, validation and one kernel call
per request.  The :mod:`repro.serve` layer keeps one warm
:class:`~repro.knn.QueryEngine` per dataset fingerprint and
micro-batches compatible requests through the engine's vectorized
paths.  This gate requires the batched service to be at least
``MIN_SPEEDUP``x faster than the sequential per-request loop on the
headline workload (400 classify requests over a 5000-point binary
Hamming dataset; answers are asserted identical inside the measurement
before any timing happens, and the result cache is disabled on both
sides so batching — not memoization — is what's measured).

The measurement core lives in
:func:`repro.experiments.bench.measure_serve_throughput` — the same
numbers the ``bench-baseline`` CI job and the nightly trend artifact
track.  Shared runners are noisy, so the gate takes the best of up to
``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratio in the GitHub job summary when one is
available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets import random_boolean_dataset
from repro.experiments.bench import gated_best, measure_serve_throughput
from repro.serve import ExplanationService

MIN_SPEEDUP = 3.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 3x gate."""
    return gated_best(
        measure_serve_throughput, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Serve-throughput gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); sequential "
            f"{stats['requests_per_s_sequential']:.0f} req/s, batched "
            f"{stats['requests_per_s_batched']:.0f} req/s)\n"
        )


def test_serve_throughput_speedup():
    """The >= 3x batched-over-sequential serving gate (best-of-3)."""
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"the batched service path is only {stats['speedup']:.1f}x faster than "
        f"the sequential per-request loop after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_serve_batched_matches_sequential(rng):
    """Batched and per-request serving answer every method identically."""
    data = random_boolean_dataset(rng, 10, 40)
    service = ExplanationService(cache_size=0)
    fingerprint = service.add_dataset(data)
    queries = [rng.integers(0, 2, size=10).astype(float) for _ in range(16)]
    for method in ("classify", "margin", "radii"):
        sequential = [
            service.submit(fingerprint, method, x, k=3).payload for x in queries
        ]
        batched = [
            r.payload
            for r in service.submit_many(
                [(fingerprint, method, x, {"k": 3}) for x in queries]
            )
        ]
        assert sequential == batched


def test_serve_throughput_workload_is_deterministic():
    """Same seed, same workload shape — the baseline gate's precondition."""
    rng = np.random.default_rng(20250601)
    first = rng.integers(0, 2, size=(3, 4))
    rng = np.random.default_rng(20250601)
    second = rng.integers(0, 2, size=(3, 4))
    np.testing.assert_array_equal(first, second)


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"Explanation service on {stats['queries']} classify requests x "
        f"{stats['train']} train points x {stats['dim']} dims (hamming, k=3):\n"
        f"  sequential loop : {stats['sequential_s'] * 1000:9.1f} ms "
        f"({stats['requests_per_s_sequential']:8.0f} req/s)\n"
        f"  batched service : {stats['batched_s'] * 1000:9.1f} ms "
        f"({stats['requests_per_s_batched']:8.0f} req/s)\n"
        f"  speedup         : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s))"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate after {stats['attempts']} attempts"
        )
