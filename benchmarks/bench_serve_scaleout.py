"""Acceptance gate: sharded multi-process serving vs one process.

The single-process :class:`~repro.serve.ExplanationService` serializes
a lineage's traffic on one engine lock (and one GIL): a cheap
``classify`` arriving while a pure-Python SAT solve is in flight waits
for the whole solve.  The sharded
:class:`~repro.serve.ClusterService` gives every lineage read replicas
in separate worker processes, so the classify runs elsewhere.  This
gate requires the cluster's **classify-class p99 latency** under the
deterministic open-loop mixed workload to beat the single process by at
least ``MIN_SPEEDUP``x — after the measurement has asserted, request
for request, that both targets return bit-identical payloads.

**Aggregate throughput** (a saturating bulk of concurrent SAT solves)
is gated at ``MIN_SPEEDUP``x too, but only where the machine can
physically show it: the cluster's throughput edge is parallelism across
cores, so the throughput half of the gate applies when
``os.cpu_count() >= MIN_CPUS_FOR_THROUGHPUT_GATE`` (CI-scale runners)
and is reported informationally below that.

The measurement core lives in
:func:`repro.experiments.bench.measure_serve_scaleout` — the same
numbers the ``bench-baseline`` CI job gates against the committed
baseline.  Shared runners are noisy, so the gate takes the best of up
to ``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratios in the GitHub job summary when available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_serve_scaleout.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_scaleout.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets import random_boolean_dataset
from repro.experiments.bench import gated_best, measure_serve_scaleout
from repro.serve import ClusterService, ExplanationService

MIN_SPEEDUP = 3.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3
#: the throughput half of the gate needs real parallelism to measure;
#: below this core count the ratio is scheduler arithmetic (~1x on one
#: core no matter how good the topology is) and is only reported.
MIN_CPUS_FOR_THROUGHPUT_GATE = 4


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 3x tail-latency gate."""
    return gated_best(
        measure_serve_scaleout, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _throughput_gated(stats: dict) -> bool:
    """Whether this machine has enough cores to gate the throughput half."""
    return (stats.get("cpus") or 0) >= MIN_CPUS_FOR_THROUGHPUT_GATE


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratios to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    latency_ok = stats["speedup"] >= MIN_SPEEDUP
    throughput_line = (
        f"throughput ratio **{stats['throughput_ratio']:.1f}x** "
        + (
            f"(gated at {MIN_SPEEDUP:.0f}x, {stats['cpus']} cpus)"
            if _throughput_gated(stats)
            else f"(informational: {stats['cpus']} cpu(s) < "
            f"{MIN_CPUS_FOR_THROUGHPUT_GATE} needed to gate)"
        )
    )
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Serve-scaleout gate: {'pass' if latency_ok else 'FAIL'}\n\n"
            f"classify p99: single {stats['single_p99_ms']:.1f} ms vs cluster "
            f"{stats['cluster_p99_ms']:.1f} ms — ratio "
            f"**{stats['p99_ratio']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); "
            f"{stats['workers']} workers x {stats['replicas']} replicas); "
            f"{throughput_line}\n"
        )


def test_serve_scaleout_p99_speedup():
    """The >= 3x cluster-over-single classify-p99 gate (best-of-3)."""
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"cluster classify p99 is only {stats['p99_ratio']:.1f}x better than "
        f"single-process after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
    if _throughput_gated(stats):
        assert stats["throughput_ratio"] >= MIN_SPEEDUP, (
            f"cluster aggregate throughput is only "
            f"{stats['throughput_ratio']:.1f}x the single process on "
            f"{stats['cpus']} cpus (required: {MIN_SPEEDUP:.0f}x at CI scale)"
        )


def test_cluster_matches_single_process(rng):
    """Cluster and single-process answers are identical across methods."""
    data = random_boolean_dataset(rng, 10, 40)
    single = ExplanationService(cache_size=0)
    fingerprint = single.add_dataset(data)
    queries = [rng.integers(0, 2, size=10).astype(float) for _ in range(8)]
    with ClusterService(workers=2, replicas=2, cache_size=0) as cluster:
        cluster.add_dataset(data)
        for method, params in (
            ("classify", {"k": 3}),
            ("margin", {"k": 3}),
            ("minimum_sr", {"k": 1, "solver": "sat"}),
        ):
            expected = single.explain(fingerprint, method, queries, params)
            actual = cluster.explain(fingerprint, method, queries, params)
            assert [a["result"] for a in actual] == [e["result"] for e in expected]


def test_serve_scaleout_workload_is_deterministic():
    """Same seed, same schedule — the parity phase's precondition."""
    from repro.serve import LoadSpec, build_workload

    fingerprints = ["f" * 64, "0" * 64]
    spec = LoadSpec(requests=20, seed=7)
    first = build_workload(fingerprints, 6, spec)
    second = build_workload(fingerprints, 6, spec)
    assert [i.arrival_s for i in first] == [i.arrival_s for i in second]
    assert [i.method for i in first] == [i.method for i in second]
    assert [i.fingerprint for i in first] == [i.fingerprint for i in second]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.instance, b.instance)


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    throughput_note = (
        "gated" if _throughput_gated(stats)
        else f"informational on {stats['cpus']} cpu(s)"
    )
    print(
        f"Serve scale-out on {stats['queries']} mixed open-loop requests "
        f"({stats['workers']} workers x {stats['replicas']} replicas, "
        f"hamming, dim {stats['dim']}):\n"
        f"  classify p99 single  : {stats['single_p99_ms']:9.1f} ms\n"
        f"  classify p99 cluster : {stats['cluster_p99_ms']:9.1f} ms\n"
        f"  p99 ratio            : {stats['p99_ratio']:9.1f}x "
        f"(gated {stats['speedup']:.1f}x, best of {stats['attempts']} attempt(s))\n"
        f"  bulk solve throughput: {stats['throughput_ratio']:9.1f}x "
        f"({throughput_note})"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: p99 ratio {stats['p99_ratio']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate after {stats['attempts']} attempts"
        )
    if _throughput_gated(stats) and stats["throughput_ratio"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: throughput ratio {stats['throughput_ratio']:.1f}x is below "
            f"the {MIN_SPEEDUP:.0f}x CI-scale gate on {stats['cpus']} cpus"
        )
