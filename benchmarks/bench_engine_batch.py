"""Micro-benchmark: QueryEngine batch classification vs the per-point loop.

The seed computed ``classify_batch`` as ``[classify(p) for p in points]``,
re-deriving two distance vectors (one per class) per query through a
Python-level loop.  The :class:`~repro.knn.QueryEngine` replaces that
with one broadcast surrogate matrix plus a row-wise partial sort.  This
benchmark measures both implementations on the acceptance workload —
5,000 training points x 64 dimensions under l2 — and records the
speedup; the engine must win by at least 10x.

The measurement core lives in :mod:`repro.experiments.bench` (the same
numbers the ``bench-baseline`` CI job tracks); this file adds the
pytest-benchmark entry points and the CI gate.  Shared runners are
noisy, so the gate takes the best of up to ``MAX_ATTEMPTS`` full
measurements before declaring failure, and reports the measured ratio
in the GitHub job summary when one is available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

or through pytest-benchmark for statistics::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.bench import classify_batch_loop, gated_best, measure_engine_batch
from repro.knn import Dataset, QueryEngine

N_TRAIN = 5_000
N_DIM = 64
N_QUERIES = 200
MIN_SPEEDUP = 10.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry: one noisy neighbor on a shared runner must not
#: fail the job when a clean rerun clears the bar).
MAX_ATTEMPTS = 3


def _workload(rng: np.random.Generator):
    points = rng.normal(size=(N_TRAIN, N_DIM))
    labels = rng.integers(0, 2, size=N_TRAIN).astype(bool)
    data = Dataset(points[labels], points[~labels])
    queries = rng.normal(size=(N_QUERIES, N_DIM))
    return data, queries


def report_speedup(seed: int = 20250601) -> dict:
    """Time both paths once and return the measurements."""
    return measure_engine_batch(seed=seed, repeats=3)


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 10x gate."""
    return gated_best(
        measure_engine_batch, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Batch-engine speedup gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); looped "
            f"{stats['looped_s'] * 1000:.1f} ms, batched "
            f"{stats['batched_s'] * 1000:.1f} ms)\n"
        )


def test_engine_batch_speedup(benchmark, rng):
    """pytest-benchmark entry: batched timing + the >= 10x acceptance gate."""
    data, queries = _workload(rng)
    engine = QueryEngine(data, "l2")
    benchmark(lambda: engine.classify_batch(queries, 3))
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"batched classification is only {stats['speedup']:.1f}x faster than the "
        f"per-point loop after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_engine_batch_matches_loop(rng):
    data, queries = _workload(rng)
    engine = QueryEngine(data, "l2")
    np.testing.assert_array_equal(
        engine.classify_batch(queries, 3),
        classify_batch_loop(data, engine.metric, queries, 3),
    )


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"classify_batch on {stats['queries']} queries x "
        f"{stats['train']} train points x {stats['dim']} dims (l2, k=3):\n"
        f"  per-point loop : {stats['looped_s'] * 1000:9.1f} ms\n"
        f"  QueryEngine    : {stats['batched_s'] * 1000:9.1f} ms\n"
        f"  speedup        : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s))"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate after {stats['attempts']} attempts"
        )
