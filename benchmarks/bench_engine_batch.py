"""Micro-benchmark: QueryEngine batch classification vs the per-point loop.

The seed computed ``classify_batch`` as ``[classify(p) for p in points]``,
re-deriving two distance vectors (one per class) per query through a
Python-level loop.  The :class:`~repro.knn.QueryEngine` replaces that
with one broadcast surrogate matrix plus a row-wise partial sort.  This
benchmark measures both implementations on the acceptance workload —
5,000 training points x 64 dimensions under l2 — and records the
speedup; the engine must win by at least 10x.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

or through pytest-benchmark for statistics::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py -q
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.knn import Dataset, QueryEngine
from repro.knn.engine import _kth_smallest_with_multiplicity

N_TRAIN = 5_000
N_DIM = 64
N_QUERIES = 200
MIN_SPEEDUP = 10.0


def _workload(rng: np.random.Generator):
    points = rng.normal(size=(N_TRAIN, N_DIM))
    labels = rng.integers(0, 2, size=N_TRAIN).astype(bool)
    data = Dataset(points[labels], points[~labels])
    queries = rng.normal(size=(N_QUERIES, N_DIM))
    return data, queries


def _classify_batch_seed_loop(data: Dataset, metric, queries: np.ndarray, k: int) -> np.ndarray:
    """The seed's per-point path: one Python iteration (and two distance
    vectors) per query — kept here verbatim as the baseline."""
    need = (k + 1) // 2
    out = np.empty(queries.shape[0], dtype=np.int64)
    for i, x in enumerate(queries):
        pos_d = metric.powers_to(data.positives, x)
        neg_d = metric.powers_to(data.negatives, x)
        r_pos = _kth_smallest_with_multiplicity(pos_d, data.positive_multiplicities, need)
        r_neg = _kth_smallest_with_multiplicity(neg_d, data.negative_multiplicities, need)
        out[i] = 1 if r_pos <= r_neg else 0
    return out


def _measure(fn, *, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def report_speedup(seed: int = 20250601) -> dict:
    """Time both paths once and return the measurements."""
    rng = np.random.default_rng(seed)
    data, queries = _workload(rng)
    engine = QueryEngine(data, "l2")
    looped = _measure(lambda: _classify_batch_seed_loop(data, engine.metric, queries, 3))
    batched = _measure(lambda: engine.classify_batch(queries, 3))
    expected = _classify_batch_seed_loop(data, engine.metric, queries, 3)
    np.testing.assert_array_equal(engine.classify_batch(queries, 3), expected)
    return {
        "looped_s": looped,
        "batched_s": batched,
        "speedup": looped / batched,
        "queries": N_QUERIES,
        "train": N_TRAIN,
        "dim": N_DIM,
    }


def test_engine_batch_speedup(benchmark, rng):
    """pytest-benchmark entry: batched timing + the >= 10x acceptance gate."""
    data, queries = _workload(rng)
    engine = QueryEngine(data, "l2")
    benchmark(lambda: engine.classify_batch(queries, 3))
    looped = _measure(lambda: _classify_batch_seed_loop(data, engine.metric, queries, 3))
    batched = _measure(lambda: engine.classify_batch(queries, 3))
    speedup = looped / batched
    assert speedup >= MIN_SPEEDUP, (
        f"batched classification is only {speedup:.1f}x faster than the "
        f"per-point loop (required: {MIN_SPEEDUP:.0f}x)"
    )


def test_engine_batch_matches_loop(rng):
    data, queries = _workload(rng)
    engine = QueryEngine(data, "l2")
    np.testing.assert_array_equal(
        engine.classify_batch(queries, 3),
        _classify_batch_seed_loop(data, engine.metric, queries, 3),
    )


if __name__ == "__main__":
    import sys

    stats = report_speedup()
    print(
        f"classify_batch on {stats['queries']} queries x "
        f"{stats['train']} train points x {stats['dim']} dims (l2, k=3):\n"
        f"  per-point loop : {stats['looped_s'] * 1000:9.1f} ms\n"
        f"  QueryEngine    : {stats['batched_s'] * 1000:9.1f} ms\n"
        f"  speedup        : {stats['speedup']:9.1f}x"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate"
        )
