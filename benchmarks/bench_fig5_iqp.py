"""Figure 5a: IQP (linearized MILP) runtimes for Hamming counterfactuals.

Paper workload: uniformly random {0,1}^n points, Bernoulli(1/2) labels,
closest counterfactual for a random query via the IQP formulation
(Gurobi in the paper, our linearized MILP on HiGHS here), sweeping
n in 50..350 and N in 500..2000.  Scaled grid: n in {20..80},
N in {40, 80, 120}.  Expected shape (as in the paper): runtime grows
mildly in n and steeply in N (the model has |S+| x |S-| comparison
constraints).
"""

from __future__ import annotations

import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import random_boolean_dataset

DIMENSIONS = [20, 40, 60, 80]
SIZES = [40, 80, 120]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("n", DIMENSIONS)
def test_fig5a_iqp_counterfactual(benchmark, rng, n, size):
    data = random_boolean_dataset(rng, n, size)
    x = rng.integers(0, 2, size=n).astype(float)

    def task():
        return closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.found
    assert result.distance >= 1
