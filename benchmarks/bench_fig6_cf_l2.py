"""Figure 6b: counterfactual (l2) runtimes on digit images.

Paper workload: MNIST rescaled to side lengths 12..28, N in 250..1000,
closest l2 counterfactual via the Theorem 2 convex program (cvxpy in the
paper, our active-set QP here).  Scaled grid: sides {8, 12, 16}, N in
{50, 100, 150}.  Expected shape: roughly linear in N (one projection
per opposite-class point for k = 1) with a mild dimension dependence —
the same shape as the paper's Figure 6b, where this task is the cheaper
of the two panels.
"""

from __future__ import annotations

import pytest

from repro.counterfactual import closest_counterfactual
from repro.datasets import DigitImages

SIDES = [8, 12, 16]
SIZES = [50, 100, 150]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("side", SIDES)
def test_fig6b_counterfactual_l2(benchmark, rng, side, size):
    images = DigitImages.generate(rng, digits=(4, 9), count_per_digit=size // 2, side=side)
    data = images.to_dataset(positive_digit=4)
    query = DigitImages.generate(rng, digits=(4,), count_per_digit=1, side=side)
    x = query.flattened()[0]

    def task():
        return closest_counterfactual(data, 1, "l2", x)

    result = benchmark.pedantic(task, rounds=2, iterations=1, warmup_rounds=0)
    assert result.found
