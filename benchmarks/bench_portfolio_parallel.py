"""Acceptance gate: parallel-race + warm-pool portfolio vs sequential-cold.

The sequential portfolio tries exact methods one after another and
re-encodes every query from scratch.  The parallel portfolio races the
methods concurrently in a process pool (first exact answer cancels the
losers) and reuses warm pooled SAT solvers across queries of a dataset
lineage.  This gate requires the mixed ``minimum_sr`` +
``counterfactual`` serving drain to beat the sequential-cold baseline
by at least ``MIN_SPEEDUP``x — after the measurement has asserted,
request for request, that both sides return **bit-identical canonical
payloads** (the race and the pool may only change when answers arrive,
never what they are).

The speedup is parallelism across cores plus warm-pool reuse; on a
single core the race degenerates to sequential-in-child and the ratio
is IPC arithmetic, so the throughput half of the gate applies when
``os.cpu_count() >= MIN_CPUS_FOR_THROUGHPUT_GATE`` (CI-scale runners)
and is reported informationally below that.  The **parity half always
gates**: every measurement attempt replays the whole schedule on both
sides and raises on the first divergent answer, whatever the core
count.

The measurement core lives in
:func:`repro.experiments.bench.measure_portfolio_parallel` — the same
numbers the ``bench-baseline`` CI job gates against the committed
baseline.  Shared runners are noisy, so the gate takes the best of up
to ``MAX_ATTEMPTS`` full measurements before declaring failure.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_portfolio_parallel.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_portfolio_parallel.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.bench import gated_best, measure_portfolio_parallel
from repro.knn import Dataset
from repro.portfolio import (
    portfolio_closest_counterfactual,
    portfolio_minimum_sufficient_reason,
)
from repro.solvers import ProcessRacer, SATSolverPool

MIN_SPEEDUP = 2.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3
#: below this core count the throughput ratio is scheduler arithmetic
#: (~1x on one core no matter how good the racer is) and is only
#: reported; the parity assertions inside the measurement still gate.
MIN_CPUS_FOR_THROUGHPUT_GATE = 4


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 2x throughput gate."""
    return gated_best(
        measure_portfolio_parallel, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _throughput_gated(stats: dict) -> bool:
    """Whether this machine has enough cores to gate the throughput half."""
    return (stats.get("cpus") or 0) >= MIN_CPUS_FOR_THROUGHPUT_GATE


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratios to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    gated = _throughput_gated(stats)
    ok = (not gated) or stats["speedup"] >= MIN_SPEEDUP
    throughput_line = (
        f"(gated at {MIN_SPEEDUP:.0f}x, {stats['cpus']} cpus)"
        if gated
        else f"(informational: {stats['cpus']} cpu(s) < "
        f"{MIN_CPUS_FOR_THROUGHPUT_GATE} needed to gate)"
    )
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Portfolio-parallel gate: {'pass' if ok else 'FAIL'}\n\n"
            f"mixed MSR+CF drain: sequential-cold {stats['baseline_s']:.2f} s vs "
            f"parallel+pool {stats['contest_s']:.2f} s — ratio "
            f"**{stats['speedup']:.1f}x** {throughput_line}; "
            f"parity checked on {stats['parity_checked']} requests "
            f"(best of {stats['attempts']} attempt(s); "
            f"{stats['race_workers']} race workers, pool "
            f"{stats['pool_hits']} hits / {stats['pool_misses']} misses)\n"
        )


def test_portfolio_parallel_speedup_and_parity():
    """The >= 2x parallel-over-sequential gate where cores allow; parity always."""
    # A single attempt already runs the full phase-0 parity sweep and
    # raises on divergence — that part gates on every machine.
    stats = (
        gated_speedup()
        if (os.cpu_count() or 0) >= MIN_CPUS_FOR_THROUGHPUT_GATE
        else {**measure_portfolio_parallel(repeats=2), "attempts": 1}
    )
    assert stats["parity_checked"] == stats["requests"]
    if _throughput_gated(stats):
        assert stats["speedup"] >= MIN_SPEEDUP, (
            f"parallel+pool portfolio is only {stats['speedup']:.1f}x the "
            f"sequential-cold baseline on {stats['cpus']} cpus after "
            f"{stats['attempts']} attempts (required: {MIN_SPEEDUP:.0f}x)"
        )


def test_race_answers_match_sequential(rng):
    """Direct bit-parity: raced answers equal sequential canonical answers."""
    racer = ProcessRacer(max_workers=2)
    pool = SATSolverPool()
    try:
        for trial in range(3):
            n = int(rng.integers(6, 10))
            pos = rng.integers(0, 2, size=(7, n)).astype(float)
            neg = rng.integers(0, 2, size=(7, n)).astype(float)
            data = Dataset(pos, neg)
            x = rng.integers(0, 2, size=n).astype(float)
            stagger = {"milp": 0.03 * (trial % 2), "sat": 0.03 * ((trial + 1) % 2)}
            seq = portfolio_minimum_sufficient_reason(data, 1, "hamming", x)
            par = portfolio_minimum_sufficient_reason(
                data, 1, "hamming", x,
                parallel=True, racer=racer, solver_pool=pool, stagger=stagger,
            )
            assert par.mode == "parallel" and par.canonical
            assert par.answer.X == seq.answer.X
            assert par.answer.size == seq.answer.size
            cs = portfolio_closest_counterfactual(data, 1, "hamming", x)
            cp = portfolio_closest_counterfactual(
                data, 1, "hamming", x, parallel=True, racer=racer, solver_pool=pool,
            )
            assert cp.canonical
            if cs.answer.y is None:
                assert cp.answer.y is None
            else:
                np.testing.assert_array_equal(cp.answer.y, cs.answer.y)
    finally:
        racer.close()


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    throughput_note = (
        "gated" if _throughput_gated(stats)
        else f"informational on {stats['cpus']} cpu(s)"
    )
    print(
        f"Parallel portfolio on {stats['requests']} mixed MSR+CF requests "
        f"({stats['lineages']} lineages, hamming, dim {stats['dim']}, "
        f"{stats['race_workers']} race workers):\n"
        f"  sequential-cold drain: {stats['baseline_s']:9.2f} s\n"
        f"  parallel+pool drain  : {stats['contest_s']:9.2f} s\n"
        f"  ratio                : {stats['speedup']:9.1f}x ({throughput_note}, "
        f"best of {stats['attempts']} attempt(s))\n"
        f"  parity               : {stats['parity_checked']} requests bit-identical\n"
        f"  warm pool            : {stats['pool_hits']} hits / "
        f"{stats['pool_misses']} misses; races {stats['races']}, "
        f"cancelled {stats['race_cancelled']}, "
        f"hard kills {stats['race_hard_kills']}"
    )
    if _throughput_gated(stats) and stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: drain ratio {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate on {stats['cpus']} cpus "
            f"after {stats['attempts']} attempts"
        )
