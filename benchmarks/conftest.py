"""Shared benchmark fixtures.

The paper's figures sweep feature count n against training-set size N.
The grids here are scaled down from the paper's Gurobi-on-M1 sizes to
pure-Python-friendly ones; the *shape* of each curve (growth in n,
growth in N, which pipeline wins) is what the suite reproduces.  See
EXPERIMENTS.md for paper-vs-measured notes per figure.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20250601)
