"""Acceptance gate: shared multiclass engine vs naive per-class rebuild.

Before the multiclass tentpole, every one-vs-rest question about a
C-class dataset cost a merged-dataset materialization plus a fresh
binary index: explaining or classifying against all classes meant C
full engine builds per batch.  :class:`~repro.knn.MultiClassEngine`
serves the same questions from **one** shared index — a single distance
pass feeds the per-class order statistics of
:meth:`~repro.knn.MultiClassEngine.class_radii_batch`, and merged
binary views are derived lazily without copying points.

This gate runs a 5-class, 3000-point binary Hamming workload (300
queries, k=3 per-class radii plus nearest-class labels) both ways and
requires the shared engine to be at least ``MIN_SPEEDUP``x faster than
rebuilding a merged binary engine per class.  Per-class radii and the
derived labels are asserted bit-identical inside the measurement before
any timing happens — the same merged-binary oracle invariant
``tests/test_multiclass_parity.py`` enforces across backends, metrics
and solver methods.

The measurement core lives in
:func:`repro.experiments.bench.measure_scenario_multiclass` — the same
numbers the ``bench-baseline`` CI job and the nightly trend artifact
track.  Shared runners are noisy, so the gate takes the best of up to
``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratio in the GitHub job summary when one is
available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_scenario_multiclass.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenario_multiclass.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.bench import gated_best, measure_scenario_multiclass
from repro.knn import MultiClassDataset, MultiClassEngine, QueryEngine

MIN_SPEEDUP = 1.5
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 1.5x gate."""
    return gated_best(
        measure_scenario_multiclass,
        threshold=MIN_SPEEDUP,
        attempts=attempts,
        seed=seed,
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Multiclass-scenario gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.1f}x, "
            f"best of {stats['attempts']} attempt(s); {stats['classes']} classes x "
            f"{stats['queries']} queries over {stats['train']} points)\n"
        )


def test_scenario_multiclass_speedup():
    """The >= 1.5x shared-engine-over-per-class-rebuild gate (best-of-3)."""
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"the shared multiclass engine is only {stats['speedup']:.1f}x faster "
        f"than per-class rebuilds after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.1f}x)"
    )


def test_shared_engine_matches_per_class_rebuild(rng):
    """The parity precondition the gate asserts, at pytest scale."""
    points = rng.integers(0, 2, size=(40, 8)).astype(float)
    labels = rng.integers(0, 4, size=40)
    labels[:4] = np.arange(4)
    data = MultiClassDataset(points, labels, discrete=True)
    queries = rng.integers(0, 2, size=(12, 8)).astype(float)
    for backend in ("dense", "bitpack", "kdtree"):
        engine = MultiClassEngine(data, "hamming", backend=backend)
        radii, rest = engine.class_radii_batch(queries, 3)
        for j, label in enumerate(data.classes):
            merged = QueryEngine(data.merged(label), "hamming", backend=backend)
            r_pos, r_neg = merged.radii_batch(queries, 3)
            np.testing.assert_array_equal(radii[:, j], r_pos)
            np.testing.assert_array_equal(rest[:, j], r_neg)


def test_multiclass_workload_is_deterministic():
    """Same seed, same workload — the baseline gate's precondition."""
    first = np.random.default_rng(20250601).integers(0, 3, size=12)
    second = np.random.default_rng(20250601).integers(0, 3, size=12)
    np.testing.assert_array_equal(first, second)


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"Multiclass scenario: {stats['classes']} classes, {stats['train']} train "
        f"points x {stats['dim']} dims, {stats['queries']} queries (hamming, "
        f"k={stats['k']}):\n"
        f"  per-class rebuilds : {stats['naive_s'] * 1000:9.1f} ms\n"
        f"  shared engine      : {stats['merged_s'] * 1000:9.1f} ms\n"
        f"  speedup            : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s))"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.1f}x acceptance gate after {stats['attempts']} attempts"
        )
