"""Acceptance gate: incremental index updates vs rebuild-per-mutation.

Before mutable datasets, a single inserted or deleted training point
forced a full engine rebuild (and a full cache flush) — the opposite of
the ROADMAP's streaming north star.  :meth:`QueryEngine.add_points` /
:meth:`~repro.knn.QueryEngine.remove_points` absorb mutations into the
live index instead: the bit-packed backend appends freshly packed
words and tombstones removals, the dense stores grow in
amortized-doubling blocks, and the KD-trees overlay deltas until a
staleness threshold triggers a lazy rebuild.

This gate replays an interleaved insert/query stream (30 rounds of
4 inserts + 25 classify queries over a 4000-point binary Hamming
dataset) both ways and requires the incremental engine to be at least
``MIN_SPEEDUP``x faster than rebuilding the engine after every
mutation.  Labels are asserted identical inside the measurement before
any timing happens — the same "mutated engine ≡ freshly rebuilt
engine" invariant the randomized differential harness
(``tests/test_fuzz_parity.py``) enforces across backends and metrics.

The measurement core lives in
:func:`repro.experiments.bench.measure_streaming_updates` — the same
numbers the ``bench-baseline`` CI job and the nightly trend artifact
track.  Shared runners are noisy, so the gate takes the best of up to
``MAX_ATTEMPTS`` full measurements before declaring failure, and
reports the measured ratio in the GitHub job summary when one is
available.

Run directly for a quick report::

    PYTHONPATH=src python benchmarks/bench_streaming_updates.py

or through pytest for the parity checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_updates.py -q
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.bench import gated_best, measure_streaming_updates
from repro.knn import Dataset, QueryEngine

MIN_SPEEDUP = 3.0
#: full re-measurements allowed before the gate declares failure
#: (best-of-3 retry, same rationale as the other headline gates).
MAX_ATTEMPTS = 3


def gated_speedup(seed: int = 20250601, *, attempts: int = MAX_ATTEMPTS) -> dict:
    """Best-of-*attempts* measurement against the 3x gate."""
    return gated_best(
        measure_streaming_updates, threshold=MIN_SPEEDUP, attempts=attempts, seed=seed
    )


def _write_job_summary(stats: dict) -> None:
    """Append the measured ratio to the GitHub job summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    verdict = "pass" if stats["speedup"] >= MIN_SPEEDUP else "FAIL"
    with open(summary_path, "a") as handle:
        handle.write(
            f"### Streaming-updates gate: {verdict}\n\n"
            f"measured **{stats['speedup']:.1f}x** (required {MIN_SPEEDUP:.0f}x, "
            f"best of {stats['attempts']} attempt(s); {stats['rounds']} rounds of "
            f"{stats['inserts_per_round']} inserts + "
            f"{stats['queries'] // stats['rounds']} queries)\n"
        )


def test_streaming_updates_speedup():
    """The >= 3x incremental-over-rebuild streaming gate (best-of-3)."""
    stats = gated_speedup()
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"the incremental mutation path is only {stats['speedup']:.1f}x faster "
        f"than rebuild-per-mutation after {stats['attempts']} attempts "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )


def test_streaming_mutated_engine_matches_rebuilt(rng):
    """A mutated engine answers an insert/remove stream like a rebuilt one."""
    n = 12
    pos = rng.integers(0, 2, size=(20, n)).astype(float)
    neg = rng.integers(0, 2, size=(20, n)).astype(float)
    data = Dataset(pos, neg)
    for backend in ("dense", "bitpack", "kdtree"):
        engine = QueryEngine(data, "hamming", backend=backend)
        current = data
        for _ in range(6):
            points = rng.integers(0, 2, size=(3, n)).astype(float)
            labels = rng.integers(0, 2, size=3)
            engine.add_points(points, labels)
            current = current.with_added(points, labels)
            drop = points[:1]
            engine.remove_points(drop, labels[:1])
            current = current.with_removed(drop, labels[:1])
            queries = rng.integers(0, 2, size=(10, n)).astype(float)
            fresh = QueryEngine(current, "hamming", backend=backend)
            np.testing.assert_array_equal(
                engine.classify_batch(queries, 3), fresh.classify_batch(queries, 3)
            )


def test_streaming_workload_is_deterministic():
    """Same seed, same stream shape — the baseline gate's precondition."""
    first = np.random.default_rng(20250601).integers(0, 2, size=(3, 4))
    second = np.random.default_rng(20250601).integers(0, 2, size=(3, 4))
    np.testing.assert_array_equal(first, second)


if __name__ == "__main__":
    import sys

    stats = gated_speedup()
    _write_job_summary(stats)
    print(
        f"Streaming stream of {stats['rounds']} rounds x "
        f"({stats['inserts_per_round']} inserts + "
        f"{stats['queries'] // stats['rounds']} queries) over "
        f"{stats['train']} train points x {stats['dim']} dims (hamming, k=3):\n"
        f"  rebuild per mutation : {stats['rebuild_s'] * 1000:9.1f} ms\n"
        f"  incremental engine   : {stats['incremental_s'] * 1000:9.1f} ms\n"
        f"  speedup              : {stats['speedup']:9.1f}x "
        f"(best of {stats['attempts']} attempt(s))"
    )
    if stats["speedup"] < MIN_SPEEDUP:
        sys.exit(
            f"FAIL: speedup {stats['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x acceptance gate after {stats['attempts']} attempts"
        )
