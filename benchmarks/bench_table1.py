"""Table 1: one benchmark per cell of the complexity landscape.

Table 1 is a complexity summary, not a runtime table, so it is
"regenerated" in two parts: ``repro.complexity.render_table()`` prints
the table itself (checked against the paper in the test suite), and the
benchmarks here give each cell an empirical runtime footprint —
polynomial cells run their polynomial algorithm at moderate size, hard
cells run the practical solver (MILP/SAT/brute) at small size.  The
qualitative expectation: the P-cell benches stay flat-ish as inputs
grow, while the hard-cell benches are the ones needing solver engines
at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abductive import (
    check_sufficient_reason,
    minimal_sufficient_reason,
    minimum_sufficient_reason,
)
from repro.counterfactual import closest_counterfactual
from repro.datasets import gaussian_blobs, random_boolean_dataset


def _continuous(rng, n, per_class):
    return gaussian_blobs(rng, n, per_class, separation=2.0)


# -- Counterfactual row ------------------------------------------------------


@pytest.mark.parametrize("k", [1, 3])
def test_cell_cf_l2_polynomial(benchmark, rng, k):
    # n^O(k) witness pairs: keep the k = 3 instance small so the cell
    # stays a milliseconds-scale data point rather than a stress test.
    per_class = 30 if k == 1 else 6
    data = _continuous(rng, 12, per_class)
    x = rng.normal(size=12)
    result = benchmark.pedantic(
        lambda: closest_counterfactual(data, k, "l2", x),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.found


def test_cell_cf_l1_npc_milp(benchmark, rng):
    data = _continuous(rng, 8, 8)
    x = rng.normal(size=8)
    result = benchmark(lambda: closest_counterfactual(data, 1, "l1", x))
    assert result.found


def test_cell_cf_hamming_npc_milp(benchmark, rng):
    data = random_boolean_dataset(rng, 30, 40)
    x = rng.integers(0, 2, size=30).astype(float)
    result = benchmark(
        lambda: closest_counterfactual(data, 1, "hamming", x, method="hamming-milp")
    )
    assert result.found


# -- Check-SR row ------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 3])
def test_cell_check_sr_l2_polynomial(benchmark, rng, k):
    data = _continuous(rng, 10, 12)
    x = rng.normal(size=10)
    X = set(range(5))
    benchmark(lambda: check_sufficient_reason(data, k, "l2", x, X))


def test_cell_check_sr_l1_k1_polynomial(benchmark, rng):
    data = _continuous(rng, 40, 100)
    x = rng.normal(size=40)
    X = set(range(20))
    benchmark(lambda: check_sufficient_reason(data, 1, "l1", x, X))


def test_cell_check_sr_hamming_k1_polynomial(benchmark, rng):
    data = random_boolean_dataset(rng, 40, 200)
    x = rng.integers(0, 2, size=40).astype(float)
    X = set(range(20))
    benchmark(lambda: check_sufficient_reason(data, 1, "hamming", x, X))


def test_cell_check_sr_hamming_k3_conp_brute(benchmark, rng):
    # The coNP-complete cell: exact answer by hypercube enumeration.
    data = random_boolean_dataset(rng, 12, 14)
    x = rng.integers(0, 2, size=12).astype(float)
    X = set(range(8))  # 2^4 free coordinates
    benchmark(lambda: check_sufficient_reason(data, 3, "hamming", x, X, method="brute"))


# -- Minimum-SR row ----------------------------------------------------------


def test_cell_minimum_sr_hamming_k1_npc_milp(benchmark, rng):
    data = random_boolean_dataset(rng, 14, 16)
    x = rng.integers(0, 2, size=14).astype(float)
    result = benchmark(
        lambda: minimum_sufficient_reason(data, 1, "hamming", x, method="milp")
    )
    assert result.size <= 14


def test_cell_minimum_sr_l2_npc_brute(benchmark, rng):
    data = _continuous(rng, 8, 6)
    x = rng.normal(size=8)
    result = benchmark(
        lambda: minimum_sufficient_reason(data, 1, "l2", x, method="brute")
    )
    assert result.size <= 8


def test_cell_minimum_sr_hamming_k3_sigma2p_brute(benchmark, rng):
    # The Sigma2p-complete cell: subset enumeration over a brute checker.
    data = random_boolean_dataset(rng, 8, 10)
    x = rng.integers(0, 2, size=8).astype(float)
    result = benchmark(
        lambda: minimum_sufficient_reason(data, 3, "hamming", x, method="brute")
    )
    assert result.size <= 8


# -- Minimal-SR column (Proposition 2 greedy over each P checker) ------------


@pytest.mark.parametrize(
    "metric, k",
    [("l2", 1), ("l2", 3), ("l1", 1), ("hamming", 1)],
)
def test_cell_minimal_sr_polynomial(benchmark, rng, metric, k):
    if metric == "hamming":
        data = random_boolean_dataset(rng, 16, 30)
        x = rng.integers(0, 2, size=16).astype(float)
    else:
        data = _continuous(rng, 8, 10)
        x = rng.normal(size=8)
    X = benchmark(lambda: minimal_sufficient_reason(data, k, metric, x))
    assert len(X) <= data.dimension
